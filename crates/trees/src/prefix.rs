//! Prefix trees over `G ∪ {⊥, ⊤}` and the largest-common-prefix operation `⊔`.
//!
//! Section 3 of the paper defines, for trees `t, t' ∈ T_G`, the largest common
//! prefix `t ⊔ t' ∈ T_G({⊥})`, and the *maximal output* of a transduction at a
//! path, `out_τ(u) = ⊔ {τ(s) | u ⊨ s}`. [`PTree`] represents such trees:
//! ordinary `G`-labeled nodes plus `⊥` leaves ("outputs disagree here /
//! unknown below") — and, additionally, `⊤` leaves, which are the *identity*
//! of `⊔`. `⊤` never occurs in any `out` value exposed by the library; it
//! exists so that the earliest-normal-form fixpoint (crate `xtt-transducer`)
//! can start its Kleene iteration from the top element.
//!
//! `⊔` is associative, commutative, and idempotent with identity `⊤` and
//! absorbing element `⊥` (property-tested below).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use crate::path::{FPath, NodePath};
use crate::symbol::Symbol;
use crate::tree::Tree;

/// The label of a prefix-tree node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PLabel {
    /// An ordinary output symbol.
    Sym(Symbol),
    /// `⊥`: the outputs disagree at (or below) this position.
    Bottom,
    /// `⊤`: no information yet; identity of `⊔`. Only used transiently.
    Top,
}

#[derive(Debug)]
struct PInner {
    label: PLabel,
    children: Vec<PTree>,
    hash: u64,
    size: u64,
}

/// An immutable prefix tree (tree over `G ∪ {⊥, ⊤}`).
#[derive(Clone)]
pub struct PTree(Rc<PInner>);

impl Drop for PInner {
    fn drop(&mut self) {
        // Iterative drop; see `Tree`'s drop for rationale.
        let mut stack = std::mem::take(&mut self.children);
        while let Some(PTree(rc)) = stack.pop() {
            if let Ok(mut inner) = Rc::try_unwrap(rc) {
                stack.append(&mut inner.children);
            }
        }
    }
}

fn mix(mut h: u64, v: u64) -> u64 {
    h ^= v;
    h = h.wrapping_mul(0x100_0000_01b3);
    h ^ (h >> 29)
}

impl PTree {
    /// The `⊥` leaf.
    pub fn bottom() -> PTree {
        PTree::build(PLabel::Bottom, Vec::new())
    }

    /// The `⊤` leaf.
    pub fn top() -> PTree {
        PTree::build(PLabel::Top, Vec::new())
    }

    /// A symbol-labeled node.
    pub fn sym(symbol: Symbol, children: Vec<PTree>) -> PTree {
        PTree::build(PLabel::Sym(symbol), children)
    }

    fn build(label: PLabel, children: Vec<PTree>) -> PTree {
        debug_assert!(
            matches!(label, PLabel::Sym(_)) || children.is_empty(),
            "⊥/⊤ must be leaves"
        );
        let seed = match label {
            PLabel::Sym(s) => u64::from(s.id()).wrapping_add(0x9e37_79b9_7f4a_7c15),
            PLabel::Bottom => 0x0b07_70a1,
            PLabel::Top => 0x7072_70b2,
        };
        let mut hash = mix(0xcbf2_9ce4_8422_2325, seed);
        let mut size = 1u64;
        for c in &children {
            hash = mix(hash, c.0.hash);
            size += c.0.size;
        }
        PTree(Rc::new(PInner {
            label,
            children,
            hash,
            size,
        }))
    }

    /// Embeds a complete tree (no `⊥`, no `⊤`).
    pub fn from_tree(t: &Tree) -> PTree {
        let children = t.children().iter().map(PTree::from_tree).collect();
        PTree::sym(t.symbol(), children)
    }

    /// The node label.
    pub fn label(&self) -> PLabel {
        self.0.label
    }

    /// The symbol, if this node is symbol-labeled.
    pub fn symbol(&self) -> Option<Symbol> {
        match self.0.label {
            PLabel::Sym(s) => Some(s),
            _ => None,
        }
    }

    pub fn children(&self) -> &[PTree] {
        &self.0.children
    }

    pub fn is_bottom(&self) -> bool {
        self.0.label == PLabel::Bottom
    }

    pub fn is_top(&self) -> bool {
        self.0.label == PLabel::Top
    }

    pub fn size(&self) -> u64 {
        self.0.size
    }

    pub fn ptr_eq(&self, other: &PTree) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }

    /// A stable address for memoization.
    pub fn addr(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// The largest common prefix `self ⊔ other` (Section 3). `⊤` is the
    /// identity, `⊥` is absorbing, distinct symbols yield `⊥`.
    pub fn lcp(&self, other: &PTree) -> PTree {
        if self.ptr_eq(other) {
            return self.clone();
        }
        match (self.0.label, other.0.label) {
            (PLabel::Top, _) => other.clone(),
            (_, PLabel::Top) => self.clone(),
            (PLabel::Bottom, _) | (_, PLabel::Bottom) => PTree::bottom(),
            (PLabel::Sym(a), PLabel::Sym(b)) => {
                if a != b || self.0.children.len() != other.0.children.len() {
                    return PTree::bottom();
                }
                if self == other {
                    return self.clone();
                }
                let children = self
                    .0
                    .children
                    .iter()
                    .zip(&other.0.children)
                    .map(|(x, y)| x.lcp(y))
                    .collect();
                PTree::sym(a, children)
            }
        }
    }

    /// `⊔` over a set of trees; `⊤` for the empty set (undefined in the
    /// paper; callers that need "undefined" check emptiness first).
    pub fn lcp_many<I: IntoIterator<Item = PTree>>(items: I) -> PTree {
        let mut acc = PTree::top();
        for t in items {
            if acc.is_bottom() {
                return acc; // absorbing: no need to look further
            }
            acc = acc.lcp(&t);
        }
        acc
    }

    /// Positions of all `⊥` leaves, in pre-order.
    pub fn holes(&self) -> Vec<NodePath> {
        let mut out = Vec::new();
        self.collect_label_positions(PLabel::Bottom, &NodePath::root(), &mut out);
        out
    }

    /// Positions of all `⊤` leaves, in pre-order.
    pub fn top_positions(&self) -> Vec<NodePath> {
        let mut out = Vec::new();
        self.collect_label_positions(PLabel::Top, &NodePath::root(), &mut out);
        out
    }

    fn collect_label_positions(&self, want: PLabel, at: &NodePath, out: &mut Vec<NodePath>) {
        if self.0.label == want {
            out.push(at.clone());
        }
        for (i, c) in self.0.children.iter().enumerate() {
            c.collect_label_positions(want, &at.child(i as u32), out);
        }
    }

    pub fn contains_bottom(&self) -> bool {
        self.contains_label(PLabel::Bottom)
    }

    pub fn contains_top(&self) -> bool {
        self.contains_label(PLabel::Top)
    }

    fn contains_label(&self, want: PLabel) -> bool {
        self.0.label == want || self.0.children.iter().any(|c| c.contains_label(want))
    }

    /// The sub-prefix-tree at a node path, if it exists.
    pub fn at(&self, path: &NodePath) -> Option<PTree> {
        let mut cur = self;
        for &i in path.indices() {
            cur = cur.0.children.get(i as usize)?;
        }
        Some(cur.clone())
    }

    /// Resolves a labeled output path `v` (the paper's `v ⊨ out`): each step
    /// must pass through a node carrying the step's symbol. Returns the
    /// subtree after the path.
    pub fn resolve_fpath(&self, v: &FPath) -> Option<PTree> {
        let mut cur = self.clone();
        for step in v.steps() {
            if cur.symbol() != Some(step.symbol) {
                return None;
            }
            cur = cur.0.children.get(step.child as usize)?.clone();
        }
        Some(cur)
    }

    /// The paper's `out[v] = ⊥` test: the path `v` belongs to the tree and
    /// ends in a `⊥` node.
    pub fn is_hole_at(&self, v: &FPath) -> bool {
        matches!(self.resolve_fpath(v), Some(t) if t.is_bottom())
    }

    /// Converts to a complete tree if there is no `⊥`/`⊤`.
    pub fn to_tree(&self) -> Option<Tree> {
        match self.0.label {
            PLabel::Sym(s) => {
                let mut children = Vec::with_capacity(self.0.children.len());
                for c in &self.0.children {
                    children.push(c.to_tree()?);
                }
                Some(Tree::new(s, children))
            }
            _ => None,
        }
    }

    /// The prefix order `self ⊑ t`: `self` is obtained from `t` by replacing
    /// some subtrees with `⊥`. (`⊤` is never ⊑ anything except via equality
    /// of the whole subtree, since `⊤` carries *more* information than any
    /// tree; a `⊤` node makes this return `false`.)
    pub fn is_prefix_of_tree(&self, t: &Tree) -> bool {
        match self.0.label {
            PLabel::Bottom => true,
            PLabel::Top => false,
            PLabel::Sym(s) => {
                s == t.symbol()
                    && self.0.children.len() == t.children().len()
                    && self
                        .0
                        .children
                        .iter()
                        .zip(t.children())
                        .all(|(p, c)| p.is_prefix_of_tree(c))
            }
        }
    }

    /// Replaces each `⊥` leaf with `f(position)`. Used to build axioms and
    /// right-hand sides (the substitutions `Ψ` of Definition 24).
    pub fn map_holes(&self, f: &mut impl FnMut(&NodePath) -> PTree) -> PTree {
        fn go(t: &PTree, at: &NodePath, f: &mut impl FnMut(&NodePath) -> PTree) -> PTree {
            match t.label() {
                PLabel::Bottom => f(at),
                PLabel::Top => t.clone(),
                PLabel::Sym(s) => {
                    if !t.contains_bottom() {
                        return t.clone();
                    }
                    let children = t
                        .children()
                        .iter()
                        .enumerate()
                        .map(|(i, c)| go(c, &at.child(i as u32), f))
                        .collect();
                    PTree::sym(s, children)
                }
            }
        }
        go(self, &NodePath::root(), f)
    }
}

impl PartialEq for PTree {
    fn eq(&self, other: &PTree) -> bool {
        if self.ptr_eq(other) {
            return true;
        }
        if self.0.hash != other.0.hash || self.0.size != other.0.size {
            return false;
        }
        self.0.label == other.0.label && self.0.children == other.0.children
    }
}

impl Eq for PTree {}

impl Hash for PTree {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl fmt::Display for PTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.label {
            PLabel::Bottom => write!(f, "⊥"),
            PLabel::Top => write!(f, "⊤"),
            PLabel::Sym(s) => {
                write!(f, "{s}")?;
                if !self.0.children.is_empty() {
                    write!(f, "(")?;
                    for (i, c) in self.0.children.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Debug for PTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<&Tree> for PTree {
    fn from(t: &Tree) -> PTree {
        PTree::from_tree(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Tree {
        crate::parse::parse_tree(s).unwrap()
    }

    fn p(s: &str) -> PTree {
        PTree::from_tree(&t(s))
    }

    #[test]
    fn lcp_of_equal_trees_is_the_tree() {
        let a = p("f(a,b)");
        assert_eq!(a.lcp(&p("f(a,b)")), a);
    }

    #[test]
    fn lcp_mismatched_roots_is_bottom() {
        assert!(p("a").lcp(&p("b")).is_bottom());
    }

    #[test]
    fn lcp_recurses_per_child() {
        // paper: g(t1,…) ⊔ g(t1',…) = g(t1⊔t1', …)
        let r = p("f(a,b)").lcp(&p("f(a,c)"));
        assert_eq!(r.to_string(), "f(a,⊥)");
        assert_eq!(r.holes(), vec![NodePath::from_indices(&[1])]);
    }

    #[test]
    fn top_is_identity_bottom_absorbing() {
        let a = p("f(a,b)");
        assert_eq!(PTree::top().lcp(&a), a);
        assert_eq!(a.lcp(&PTree::top()), a);
        assert!(PTree::bottom().lcp(&a).is_bottom());
        assert!(a.lcp(&PTree::bottom()).is_bottom());
    }

    #[test]
    fn lcp_many_over_outputs() {
        // out_τ(ε) for the constant-to-b example: all outputs b ⇒ prefix b.
        let r = PTree::lcp_many([p("b"), p("b"), p("b")]);
        assert_eq!(r.to_string(), "b");
        let r2 = PTree::lcp_many([p("f(a,b)"), p("f(c,b)"), p("f(a,b)")]);
        assert_eq!(r2.to_string(), "f(⊥,b)");
        assert!(PTree::lcp_many(std::iter::empty()).is_top());
    }

    #[test]
    fn resolve_fpath_checks_labels() {
        let r = p("f(a,g(b))");
        let v = FPath::parse_pairs(&[("f", 2), ("g", 1)]);
        assert_eq!(r.resolve_fpath(&v).unwrap().to_string(), "b");
        let bad = FPath::parse_pairs(&[("g", 1)]);
        assert!(r.resolve_fpath(&bad).is_none());
    }

    #[test]
    fn hole_test_matches_paper_notation() {
        // out[v] = ⊥ with v = (f,1)
        let out = p("f(a,b)").lcp(&p("f(c,b)"));
        assert!(out.is_hole_at(&FPath::parse_pairs(&[("f", 1)])));
        assert!(!out.is_hole_at(&FPath::parse_pairs(&[("f", 2)])));
        assert!(!out.is_hole_at(&FPath::empty()));
    }

    #[test]
    fn to_tree_requires_completeness() {
        assert_eq!(p("f(a,b)").to_tree().unwrap(), t("f(a,b)"));
        assert!(p("f(a,b)").lcp(&p("f(a,c)")).to_tree().is_none());
        assert!(PTree::top().to_tree().is_none());
    }

    #[test]
    fn prefix_order() {
        let pre = p("f(a,b)").lcp(&p("f(a,c)")); // f(a,⊥)
        assert!(pre.is_prefix_of_tree(&t("f(a,b)")));
        assert!(pre.is_prefix_of_tree(&t("f(a,g(c))")));
        assert!(!pre.is_prefix_of_tree(&t("g(a,b)")));
        assert!(!PTree::top().is_prefix_of_tree(&t("a")));
    }

    #[test]
    fn map_holes_substitutes_by_position() {
        let pre = p("f(a,b)").lcp(&p("f(c,b)")); // f(⊥,b)
        let mapped = pre.map_holes(&mut |path| {
            assert_eq!(*path, NodePath::from_indices(&[0]));
            p("z")
        });
        assert_eq!(mapped.to_string(), "f(z,b)");
    }

    #[test]
    fn holes_are_preorder() {
        let pre = p("f(f(a,b),b)").lcp(&p("f(f(c,b),c)"));
        assert_eq!(
            pre.holes(),
            vec![
                NodePath::from_indices(&[0, 0]),
                NodePath::from_indices(&[1])
            ]
        );
    }
}
