//! Node paths, labeled paths (F-paths), and node paths with labels (npaths).
//!
//! Section 2 of the paper distinguishes three kinds of addresses into trees:
//!
//! * a **node path** `π ∈ ℕ*` (here [`NodePath`], with 0-based indices);
//! * an **F-path** `u = (f₁,i₁)…(fₙ,iₙ)` over labeled positions
//!   `F# = {(f,i) | f ∈ F^(k), 1 ≤ i ≤ k}` (here [`FPath`] with 0-based
//!   `child` indices; `Display` prints 1-based to match the paper);
//! * an **npath** `U = u·f` which additionally fixes the label of the node it
//!   addresses (here [`NPath`]).
//!
//! The paper's order `<` on paths — shorter first, then lexicographic by
//! letters — is implemented by [`PathOrder`], parameterized by a
//! [`RankedAlphabet`] so the letter order is the declaration order.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::alphabet::RankedAlphabet;
use crate::symbol::Symbol;
use crate::tree::Tree;

/// A node address: the sequence of 0-based child indices from the root.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodePath(Vec<u32>);

impl NodePath {
    /// The root path `ε`.
    pub fn root() -> NodePath {
        NodePath(Vec::new())
    }

    /// Builds a path from explicit indices.
    pub fn from_indices(indices: &[u32]) -> NodePath {
        NodePath(indices.to_vec())
    }

    /// The underlying indices.
    pub fn indices(&self) -> &[u32] {
        &self.0
    }

    /// Length of the path (depth of the addressed node).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the root path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The path of the `i`-th child of this node.
    pub fn child(&self, i: u32) -> NodePath {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(i);
        NodePath(v)
    }

    /// The parent path, or `None` for the root.
    pub fn parent(&self) -> Option<NodePath> {
        if self.0.is_empty() {
            return None;
        }
        Some(NodePath(self.0[..self.0.len() - 1].to_vec()))
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &NodePath) -> NodePath {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        NodePath(v)
    }

    /// True if `self` is a (not necessarily proper) prefix of `other`.
    pub fn is_prefix_of(&self, other: &NodePath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// If `self = prefix · rest`, returns `rest`.
    pub fn strip_prefix(&self, prefix: &NodePath) -> Option<NodePath> {
        if prefix.is_prefix_of(self) {
            Some(NodePath(self.0[prefix.len()..].to_vec()))
        } else {
            None
        }
    }
}

impl fmt::Display for NodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        for (k, i) in self.0.iter().enumerate() {
            if k > 0 {
                write!(f, ".")?;
            }
            write!(f, "{}", i + 1)?; // 1-based, as in the paper
        }
        Ok(())
    }
}

/// A labeled position `(f, i)`: symbol `f` together with a 0-based child
/// index `i < rank(f)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Step {
    pub symbol: Symbol,
    pub child: u32,
}

impl Step {
    pub fn new(symbol: Symbol, child: u32) -> Step {
        Step { symbol, child }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.symbol, self.child + 1)
    }
}

/// A labeled path `u = (f₁,i₁)…(fₙ,iₙ)` — an "F-path" / "edge path".
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FPath(Vec<Step>);

impl FPath {
    /// The empty path `ε`.
    pub fn empty() -> FPath {
        FPath(Vec::new())
    }

    pub fn from_steps(steps: Vec<Step>) -> FPath {
        FPath(steps)
    }

    /// Convenience constructor from `(name, 1-based index)` pairs, matching
    /// how the paper writes paths like `(root, 2)(a, 2)`.
    pub fn parse_pairs(pairs: &[(&str, u32)]) -> FPath {
        FPath(
            pairs
                .iter()
                .map(|&(n, i)| {
                    assert!(i >= 1, "paper-style path indices are 1-based");
                    Step::new(Symbol::new(n), i - 1)
                })
                .collect(),
        )
    }

    pub fn steps(&self) -> &[Step] {
        &self.0
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// `self · step`.
    pub fn push(&self, step: Step) -> FPath {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(step);
        FPath(v)
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &FPath) -> FPath {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        FPath(v)
    }

    /// The npath `self · f`.
    pub fn with_label(&self, label: Symbol) -> NPath {
        NPath {
            steps: self.clone(),
            label,
        }
    }

    /// True if `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &FPath) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }

    /// If `self = prefix · rest`, returns `rest`.
    pub fn strip_prefix(&self, prefix: &FPath) -> Option<FPath> {
        if prefix.is_prefix_of(self) {
            Some(FPath(self.0[prefix.len()..].to_vec()))
        } else {
            None
        }
    }

    /// The paper's `u ⊨ s`: the path belongs to tree `s` (every step's symbol
    /// matches the node it passes through).
    pub fn belongs_to(&self, s: &Tree) -> bool {
        self.resolve(s).is_some()
    }

    /// The subtree `u⁻¹(s)` if `u ⊨ s`.
    pub fn resolve(&self, s: &Tree) -> Option<Tree> {
        let mut cur = s.clone();
        for step in &self.0 {
            if cur.symbol() != step.symbol {
                return None;
            }
            cur = cur.child(step.child as usize)?.clone();
        }
        Some(cur)
    }

    /// The node path addressed by this F-path (forgetting labels).
    pub fn node_path(&self) -> NodePath {
        NodePath(self.0.iter().map(|s| s.child).collect())
    }

    /// Reads the F-path of `node_path` inside `s`, labeling each step.
    pub fn of_node_path(s: &Tree, node_path: &NodePath) -> Option<FPath> {
        let mut steps = Vec::with_capacity(node_path.len());
        let mut cur = s;
        for &i in node_path.indices() {
            steps.push(Step::new(cur.symbol(), i));
            cur = cur.child(i as usize)?;
        }
        Some(FPath(steps))
    }
}

impl fmt::Display for FPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        for step in &self.0 {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

/// An npath `U = u · f`: an F-path plus the label of the addressed node.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NPath {
    pub steps: FPath,
    pub label: Symbol,
}

impl NPath {
    pub fn new(steps: FPath, label: Symbol) -> NPath {
        NPath { steps, label }
    }

    /// The paper's `U ⊨ s`: `u ⊨ s` and the node at `u` is labeled `f`.
    pub fn belongs_to(&self, s: &Tree) -> bool {
        match self.steps.resolve(s) {
            Some(sub) => sub.symbol() == self.label,
            None => false,
        }
    }

    /// The subtree addressed by this npath, if it belongs to `s`.
    pub fn resolve(&self, s: &Tree) -> Option<Tree> {
        let sub = self.steps.resolve(s)?;
        (sub.symbol() == self.label).then_some(sub)
    }

    /// The paper's `parent`: `parent(u·(f,i)·f') = u·f`, `parent(ε·f) = ε`.
    /// Returns `None` for the root npath (whose parent is the empty path,
    /// which carries no label).
    pub fn parent(&self) -> Option<NPath> {
        let steps = self.steps.steps();
        let last = steps.last()?;
        Some(NPath {
            steps: FPath(steps[..steps.len() - 1].to_vec()),
            label: last.symbol,
        })
    }
}

impl fmt::Display for NPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            write!(f, "ε·{}", self.label)
        } else {
            write!(f, "{}·{}", self.steps, self.label)
        }
    }
}

/// The paper's total order `<` on paths and pairs of paths (Section 8):
/// fewer letters first, then lexicographic, with the letter order given by
/// the alphabet declaration order (then child index).
///
/// Pairs are ordered `(u,v) < (u',v') ⇔ u < u' ∨ (u = u' ∧ v < v')`, where
/// `u` is compared with the input-alphabet order and `v` with the output
/// order.
pub struct PathOrder<'a> {
    input: &'a RankedAlphabet,
    output: &'a RankedAlphabet,
}

impl<'a> PathOrder<'a> {
    pub fn new(input: &'a RankedAlphabet, output: &'a RankedAlphabet) -> Self {
        PathOrder { input, output }
    }

    fn cmp_with(alpha: &RankedAlphabet, a: &FPath, b: &FPath) -> Ordering {
        a.len().cmp(&b.len()).then_with(|| {
            for (x, y) in a.steps().iter().zip(b.steps()) {
                let c = alpha
                    .cmp_symbols(x.symbol, y.symbol)
                    .then(x.child.cmp(&y.child));
                if c != Ordering::Equal {
                    return c;
                }
            }
            Ordering::Equal
        })
    }

    /// Compares two input paths.
    pub fn cmp_input(&self, a: &FPath, b: &FPath) -> Ordering {
        Self::cmp_with(self.input, a, b)
    }

    /// Compares two output paths.
    pub fn cmp_output(&self, a: &FPath, b: &FPath) -> Ordering {
        Self::cmp_with(self.output, a, b)
    }

    /// Compares two (input path, output path) pairs lexicographically.
    pub fn cmp_pair(&self, a: &(FPath, FPath), b: &(FPath, FPath)) -> Ordering {
        self.cmp_input(&a.0, &b.0)
            .then_with(|| self.cmp_output(&a.1, &b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Tree {
        // root(a(#,#), b(#, b(#,#)))
        let h = || Tree::leaf_named("#");
        Tree::node(
            "root",
            vec![
                Tree::node("a", vec![h(), h()]),
                Tree::node("b", vec![h(), Tree::node("b", vec![h(), h()])]),
            ],
        )
    }

    #[test]
    fn node_path_basics() {
        let p = NodePath::from_indices(&[1, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.parent().unwrap(), NodePath::from_indices(&[1]));
        assert!(NodePath::root().parent().is_none());
        assert!(NodePath::from_indices(&[1]).is_prefix_of(&p));
        assert!(!p.is_prefix_of(&NodePath::from_indices(&[1])));
        assert_eq!(
            p.strip_prefix(&NodePath::from_indices(&[1])).unwrap(),
            NodePath::from_indices(&[0])
        );
        assert_eq!(p.to_string(), "2.1");
        assert_eq!(NodePath::root().to_string(), "ε");
    }

    #[test]
    fn fpath_belongs_and_resolves() {
        let t = sample_tree();
        let u = FPath::parse_pairs(&[("root", 2), ("b", 2)]);
        assert!(u.belongs_to(&t));
        assert_eq!(u.resolve(&t).unwrap().to_string(), "b(#,#)");
        let bad = FPath::parse_pairs(&[("root", 1), ("b", 1)]);
        assert!(!bad.belongs_to(&t)); // node 1 is labeled a, not b
        let too_deep = FPath::parse_pairs(&[("root", 1), ("a", 1), ("#", 1)]);
        assert!(!too_deep.belongs_to(&t));
        assert!(FPath::empty().belongs_to(&t));
    }

    #[test]
    fn npath_belongs_checks_label() {
        let t = sample_tree();
        let u = FPath::parse_pairs(&[("root", 2)]);
        assert!(u.with_label(Symbol::new("b")).belongs_to(&t));
        assert!(!u.with_label(Symbol::new("a")).belongs_to(&t));
        // root npath
        assert!(FPath::empty()
            .with_label(Symbol::new("root"))
            .belongs_to(&t));
    }

    #[test]
    fn npath_parent_matches_paper() {
        // parent(u·(f,i)·f') = u·f
        let u = FPath::parse_pairs(&[("root", 2), ("b", 2)]).with_label(Symbol::new("b"));
        let p = u.parent().unwrap();
        assert_eq!(p.steps, FPath::parse_pairs(&[("root", 2)]));
        assert_eq!(p.label.name(), "b");
        let root = FPath::empty().with_label(Symbol::new("root"));
        assert!(root.parent().is_none());
    }

    #[test]
    fn fpath_of_node_path_labels_steps() {
        let t = sample_tree();
        let np = NodePath::from_indices(&[1, 1]);
        let u = FPath::of_node_path(&t, &np).unwrap();
        assert_eq!(u, FPath::parse_pairs(&[("root", 2), ("b", 2)]));
        assert_eq!(u.node_path(), np);
    }

    #[test]
    fn path_order_is_length_then_lex() {
        let input = RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("#", 0)]);
        let output = input.clone();
        let ord = PathOrder::new(&input, &output);
        let e = FPath::empty();
        let r1 = FPath::parse_pairs(&[("root", 1)]);
        let r2 = FPath::parse_pairs(&[("root", 2)]);
        let r1a2 = FPath::parse_pairs(&[("root", 1), ("a", 2)]);
        let r1b1 = FPath::parse_pairs(&[("root", 1), ("b", 1)]);
        assert_eq!(ord.cmp_input(&e, &r1), Ordering::Less);
        assert_eq!(ord.cmp_input(&r1, &r2), Ordering::Less);
        assert_eq!(ord.cmp_input(&r2, &r1a2), Ordering::Less); // shorter first
        assert_eq!(ord.cmp_input(&r1a2, &r1b1), Ordering::Less); // a before b
        assert_eq!(ord.cmp_input(&r1a2, &r1a2), Ordering::Equal);
    }

    #[test]
    fn pair_order_is_lexicographic() {
        let input = RankedAlphabet::from_pairs([("root", 2), ("#", 0)]);
        let output = input.clone();
        let ord = PathOrder::new(&input, &output);
        let e = FPath::empty();
        let r1 = FPath::parse_pairs(&[("root", 1)]);
        let r2 = FPath::parse_pairs(&[("root", 2)]);
        let p1 = (e.clone(), r1.clone());
        let p2 = (e.clone(), r2.clone());
        let p3 = (r1.clone(), e.clone());
        assert_eq!(ord.cmp_pair(&p1, &p2), Ordering::Less);
        assert_eq!(ord.cmp_pair(&p2, &p3), Ordering::Less); // u dominates
        assert_eq!(ord.cmp_pair(&p3, &p3), Ordering::Equal);
    }
}
