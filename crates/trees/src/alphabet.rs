//! Ranked alphabets.
//!
//! A ranked alphabet `F` assigns every symbol a fixed arity (Section 2 of the
//! paper). The declaration order of symbols is significant: the learning
//! algorithm's total order `<` on labeled paths (Section 8) breaks ties
//! lexicographically, and we define the letter order as the order in which
//! symbols were added to the alphabet. All algorithms in the workspace that
//! need a deterministic symbol order take it from here.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::symbol::Symbol;

/// A finite set of symbols, each with a fixed rank (arity), in a fixed
/// declaration order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedAlphabet {
    symbols: Vec<Symbol>,
    ranks: Vec<usize>,
    #[serde(skip)]
    index: HashMap<Symbol, usize>,
}

impl RankedAlphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        RankedAlphabet::default()
    }

    /// Creates an alphabet from `(name, rank)` pairs, in declaration order.
    pub fn from_pairs<'a, I: IntoIterator<Item = (&'a str, usize)>>(pairs: I) -> Self {
        let mut alphabet = RankedAlphabet::new();
        for (name, rank) in pairs {
            alphabet.add(Symbol::new(name), rank);
        }
        alphabet
    }

    /// Adds `symbol` with the given `rank`. Re-adding with the same rank is a
    /// no-op; re-adding with a different rank panics (ranks are fixed).
    pub fn add(&mut self, symbol: Symbol, rank: usize) -> Symbol {
        match self.index.get(&symbol) {
            Some(&i) => {
                assert_eq!(
                    self.ranks[i], rank,
                    "symbol {symbol} re-declared with different rank ({} vs {rank})",
                    self.ranks[i]
                );
            }
            None => {
                self.index.insert(symbol, self.symbols.len());
                self.symbols.push(symbol);
                self.ranks.push(rank);
            }
        }
        symbol
    }

    /// Interns `name` and adds it with `rank`.
    pub fn add_named(&mut self, name: &str, rank: usize) -> Symbol {
        self.add(Symbol::new(name), rank)
    }

    /// The rank of `symbol`, or `None` if it is not in the alphabet.
    pub fn rank(&self, symbol: Symbol) -> Option<usize> {
        self.index.get(&symbol).map(|&i| self.ranks[i])
    }

    /// True if the alphabet contains `symbol`.
    pub fn contains(&self, symbol: Symbol) -> bool {
        self.index.contains_key(&symbol)
    }

    /// Declaration index of `symbol`; this is the letter order used by the
    /// paper's path order `<`.
    pub fn symbol_index(&self, symbol: Symbol) -> Option<usize> {
        self.index.get(&symbol).copied()
    }

    /// All symbols in declaration order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// All symbols of the given rank, in declaration order.
    pub fn symbols_of_rank(&self, rank: usize) -> impl Iterator<Item = Symbol> + '_ {
        self.symbols
            .iter()
            .zip(&self.ranks)
            .filter(move |&(_, &r)| r == rank)
            .map(|(&s, _)| s)
    }

    /// Symbols of rank zero (constants), in declaration order.
    pub fn constants(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.symbols_of_rank(0)
    }

    /// The largest rank in the alphabet (0 for an empty alphabet).
    pub fn max_rank(&self) -> usize {
        self.ranks.iter().copied().max().unwrap_or(0)
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True if the alphabet has no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Compares two symbols by declaration order. Symbols missing from the
    /// alphabet sort after all declared symbols (by global id, for totality).
    pub fn cmp_symbols(&self, a: Symbol, b: Symbol) -> std::cmp::Ordering {
        match (self.symbol_index(a), self.symbol_index(b)) {
            (Some(x), Some(y)) => x.cmp(&y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.id().cmp(&b.id()),
        }
    }

    /// Merges another alphabet into this one (used to form `F ∪ G`).
    /// Panics on rank conflicts.
    pub fn union_with(&mut self, other: &RankedAlphabet) {
        for (&s, &r) in other.symbols.iter().zip(&other.ranks) {
            self.add(s, r);
        }
    }

    /// Rebuilds the internal index; needed after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .symbols
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
    }
}

impl fmt::Display for RankedAlphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (&s, &r)) in self.symbols.iter().zip(&self.ranks).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}^{r}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> FromIterator<(&'a str, usize)> for RankedAlphabet {
    fn from_iter<I: IntoIterator<Item = (&'a str, usize)>>(iter: I) -> Self {
        RankedAlphabet::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RankedAlphabet {
        RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("#", 0)])
    }

    #[test]
    fn ranks_and_membership() {
        let alpha = sample();
        assert_eq!(alpha.rank(Symbol::new("root")), Some(2));
        assert_eq!(alpha.rank(Symbol::new("#")), Some(0));
        assert_eq!(alpha.rank(Symbol::new("zzz")), None);
        assert!(alpha.contains(Symbol::new("a")));
        assert_eq!(alpha.len(), 4);
        assert_eq!(alpha.max_rank(), 2);
    }

    #[test]
    fn declaration_order_is_preserved() {
        let alpha = sample();
        let names: Vec<&str> = alpha.symbols().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["root", "a", "b", "#"]);
        assert!(
            alpha.symbol_index(Symbol::new("root")).unwrap()
                < alpha.symbol_index(Symbol::new("b")).unwrap()
        );
    }

    #[test]
    fn readding_same_rank_is_noop() {
        let mut alpha = sample();
        alpha.add_named("a", 2);
        assert_eq!(alpha.len(), 4);
    }

    #[test]
    #[should_panic(expected = "re-declared")]
    fn readding_different_rank_panics() {
        let mut alpha = sample();
        alpha.add_named("a", 3);
    }

    #[test]
    fn symbols_of_rank_filters() {
        let alpha = sample();
        let constants: Vec<&str> = alpha.constants().map(|s| s.name()).collect();
        assert_eq!(constants, vec!["#"]);
        let binary: Vec<&str> = alpha.symbols_of_rank(2).map(|s| s.name()).collect();
        assert_eq!(binary, vec!["root", "a", "b"]);
    }

    #[test]
    fn union_merges_without_duplicates() {
        let mut alpha = sample();
        let other = RankedAlphabet::from_pairs([("a", 2), ("c", 1)]);
        alpha.union_with(&other);
        assert_eq!(alpha.len(), 5);
        assert_eq!(alpha.rank(Symbol::new("c")), Some(1));
    }

    #[test]
    fn cmp_symbols_uses_declaration_order() {
        let alpha = sample();
        use std::cmp::Ordering;
        assert_eq!(
            alpha.cmp_symbols(Symbol::new("root"), Symbol::new("a")),
            Ordering::Less
        );
        assert_eq!(
            alpha.cmp_symbols(Symbol::new("#"), Symbol::new("a")),
            Ordering::Greater
        );
        assert_eq!(
            alpha.cmp_symbols(Symbol::new("b"), Symbol::new("b")),
            Ordering::Equal
        );
    }
}
