//! Property-based tests for the tree substrate.

use proptest::prelude::*;
use xtt_trees::{parse_tree, FPath, NodePath, PTree, RankedAlphabet, Symbol, Tree, TreeDag};

fn alpha() -> RankedAlphabet {
    RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("h", 3), ("a", 0), ("b", 0), ("c", 0)])
}

/// Strategy producing arbitrary well-ranked trees over `alpha()`.
fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        Just(Tree::leaf_named("a")),
        Just(Tree::leaf_named("b")),
        Just(Tree::leaf_named("c")),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Tree::node("f", vec![x, y])),
            inner.clone().prop_map(|x| Tree::node("g", vec![x])),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(x, y, z)| Tree::node("h", vec![x, y, z])),
        ]
    })
}

proptest! {
    #[test]
    fn display_parse_roundtrip(t in arb_tree()) {
        let printed = t.to_string();
        let reparsed = parse_tree(&printed).unwrap();
        prop_assert_eq!(reparsed, t);
    }

    #[test]
    fn size_is_node_count(t in arb_tree()) {
        prop_assert_eq!(t.size() as usize, t.preorder().count());
        prop_assert_eq!(t.node_paths().len(), t.size() as usize);
    }

    #[test]
    fn well_ranked(t in arb_tree()) {
        let alpha = alpha();
        for node in t.preorder() {
            prop_assert_eq!(alpha.rank(node.symbol()).unwrap(), node.arity());
        }
    }

    #[test]
    fn subtree_concat_law(t in arb_tree()) {
        // (π1·π2)⁻¹ s = π2⁻¹ (π1⁻¹ s) for all node paths
        for p in t.node_paths() {
            if let Some(parent) = p.parent() {
                let rest = p.strip_prefix(&parent).unwrap();
                let via_parent = t
                    .subtree_at(&parent)
                    .unwrap()
                    .subtree_at(&rest)
                    .unwrap();
                prop_assert_eq!(t.subtree_at(&p).unwrap(), via_parent);
            }
        }
    }

    #[test]
    fn fpath_resolution_agrees_with_node_path(t in arb_tree()) {
        for p in t.node_paths() {
            let u = FPath::of_node_path(&t, &p).unwrap();
            prop_assert!(u.belongs_to(&t));
            prop_assert_eq!(u.resolve(&t).unwrap(), t.subtree_at(&p).unwrap());
        }
    }

    #[test]
    fn replace_then_read_back(t in arb_tree(), r in arb_tree()) {
        for p in t.node_paths() {
            let replaced = t.replace_at(&p, r.clone()).unwrap();
            prop_assert_eq!(replaced.subtree_at(&p).unwrap(), r.clone());
            // all disjoint positions unchanged: check siblings of the spine
            if p.is_empty() {
                prop_assert_eq!(replaced, r.clone());
            }
        }
    }

    #[test]
    fn lcp_commutative(x in arb_tree(), y in arb_tree()) {
        let a = PTree::from_tree(&x);
        let b = PTree::from_tree(&y);
        prop_assert_eq!(a.lcp(&b), b.lcp(&a));
    }

    #[test]
    fn lcp_associative(x in arb_tree(), y in arb_tree(), z in arb_tree()) {
        let a = PTree::from_tree(&x);
        let b = PTree::from_tree(&y);
        let c = PTree::from_tree(&z);
        prop_assert_eq!(a.lcp(&b).lcp(&c), a.lcp(&b.lcp(&c)));
    }

    #[test]
    fn lcp_idempotent_and_identity(x in arb_tree()) {
        let a = PTree::from_tree(&x);
        prop_assert_eq!(a.lcp(&a), a.clone());
        prop_assert_eq!(a.lcp(&PTree::top()), a.clone());
        prop_assert!(a.lcp(&PTree::bottom()).is_bottom());
    }

    #[test]
    fn lcp_is_prefix_of_both(x in arb_tree(), y in arb_tree()) {
        let p = PTree::from_tree(&x).lcp(&PTree::from_tree(&y));
        prop_assert!(p.is_prefix_of_tree(&x));
        prop_assert!(p.is_prefix_of_tree(&y));
    }

    #[test]
    fn dag_roundtrip_and_compression(t in arb_tree()) {
        let mut dag = TreeDag::new();
        let id = dag.insert(&t);
        prop_assert_eq!(dag.extract(id), t.clone());
        let stats = dag.stats(id);
        prop_assert_eq!(stats.tree_size, t.size());
        prop_assert!(stats.dag_size <= stats.tree_size);
    }

    #[test]
    fn substitution_removes_all_mapped_leaves(t in arb_tree()) {
        let mut map = std::collections::HashMap::new();
        map.insert(Symbol::new("a"), Tree::leaf_named("b"));
        let t2 = t.substitute_leaves(&map);
        prop_assert_eq!(t2.count_leaves(Symbol::new("a")), 0);
        prop_assert_eq!(t2.size(), t.size());
    }

    #[test]
    fn structural_hash_agrees_with_eq(x in arb_tree(), y in arb_tree()) {
        if x == y {
            prop_assert_eq!(x.structural_hash(), y.structural_hash());
        }
        // and re-built trees hash identically
        let rebuilt = parse_tree(&x.to_string()).unwrap();
        prop_assert_eq!(rebuilt.structural_hash(), x.structural_hash());
    }
}

#[test]
fn node_path_display_is_one_based() {
    let p = NodePath::from_indices(&[0, 1]);
    assert_eq!(p.to_string(), "1.2");
}
