//! Canonical forms and equivalence of dtops (Theorem 28 + [EMS 2009]).
//!
//! `canonical_form` chains domain construction → earliest normal form →
//! minimization → canonical BFS numbering. By the uniqueness half of the
//! paper's Myhill–Nerode theorem (Theorem 28(3)), two transducers define
//! the same partial function on the same domain iff their canonical forms
//! are byte-identical and their domain automata accept the same language —
//! which is how [`equivalent`] decides equivalence in polynomial time.

use xtt_automata::{language_equal, Dtta};

use crate::dtop::Dtop;
use crate::earliest::{to_earliest, Canonical, NormError};
use crate::minimize::{canonical_number, minimize};

/// Computes the unique minimal earliest compatible transducer `min(τ)` for
/// `τ = ⟦M⟧` restricted to `inspection` (or to `dom(⟦M⟧)` if `None`), with
/// canonical state numbering.
pub fn canonical_form(m: &Dtop, inspection: Option<&Dtta>) -> Result<Canonical, NormError> {
    let earliest = to_earliest(m, inspection)?;
    let minimal = minimize(&earliest)?;
    canonical_number(&minimal)
}

/// Structural identity of two canonical forms (states must already be
/// canonically numbered): same axiom, same rules, same domain language.
pub fn same_canonical(a: &Canonical, b: &Canonical) -> bool {
    a.dtop.state_count() == b.dtop.state_count()
        && a.dtop.axiom() == b.dtop.axiom()
        && a.dtop.rules() == b.dtop.rules()
        && language_equal(&a.domain, &b.domain)
}

/// Decides `⟦M₁⟧|_{L(A₁)} = ⟦M₂⟧|_{L(A₂)}`.
///
/// Both sides must be nonempty transductions (an [`NormError::EmptyDomain`]
/// is returned otherwise); emptiness can be checked upfront with
/// [`crate::domain::domain_dtta`] + [`xtt_automata::is_empty`].
pub fn equivalent(
    m1: &Dtop,
    i1: Option<&Dtta>,
    m2: &Dtop,
    i2: Option<&Dtta>,
) -> Result<bool, NormError> {
    let c1 = canonical_form(m1, i1)?;
    let c2 = canonical_form(m2, i2)?;
    Ok(same_canonical(&c1, &c2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn constant_transducers_all_equivalent() {
        // Example 1: M1, M2, M3 define the same transduction.
        let m1 = examples::constant_m1();
        let m2 = examples::constant_m2();
        let m3 = examples::constant_m3();
        assert!(equivalent(&m1.dtop, Some(&m1.domain), &m2.dtop, Some(&m2.domain)).unwrap());
        assert!(equivalent(&m2.dtop, Some(&m2.domain), &m3.dtop, Some(&m3.domain)).unwrap());
        assert!(equivalent(&m1.dtop, Some(&m1.domain), &m3.dtop, Some(&m3.domain)).unwrap());
    }

    #[test]
    fn example6_variants_equivalent_on_domain() {
        // M0–M3 all define the restricted identity on D = {f(c,a), f(c,b)};
        // Theorem 28 says they share one canonical form.
        let variants = [
            examples::example6_m0(),
            examples::example6_m1(),
            examples::example6_m2(),
            examples::example6_m3(),
        ];
        let canon: Vec<_> = variants
            .iter()
            .map(|f| canonical_form(&f.dtop, Some(&f.domain)).unwrap())
            .collect();
        for c in &canon[1..] {
            assert!(same_canonical(&canon[0], c));
        }
        // ... and the canonical form is M1, with two states.
        assert_eq!(canon[0].dtop.state_count(), 2);
        let ax = canon[0].dtop.show_rhs(canon[0].dtop.axiom(), true);
        assert_eq!(ax, "f(c,<q0,x0>)");
    }

    #[test]
    fn flip_canonical_form_is_mflip() {
        let fix = examples::flip();
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        assert_eq!(c.dtop.state_count(), 4);
        assert_eq!(c.dtop.rule_count(), 6);
        assert_eq!(
            c.dtop.show_rhs(c.dtop.axiom(), true),
            "root(<q0,x0>,<q1,x0>)"
        );
    }

    #[test]
    fn inequivalent_when_outputs_differ() {
        let flip = examples::flip();
        // identity on the same domain: copy both lists without swapping
        let alpha = flip.dtop.input().clone();
        let mut b = crate::dtop::DtopBuilder::new(alpha.clone(), alpha);
        for s in ["l", "r", "ca", "cb"] {
            b.add_state(s);
        }
        b.set_axiom_str("root(<l,x0>,<r,x0>)").unwrap();
        b.add_rule_str("l", "root", "<ca,x1>").unwrap();
        b.add_rule_str("r", "root", "<cb,x2>").unwrap();
        b.add_rule_str("ca", "a", "a(#,<ca,x2>)").unwrap();
        b.add_rule_str("ca", "#", "#").unwrap();
        b.add_rule_str("cb", "b", "b(#,<cb,x2>)").unwrap();
        b.add_rule_str("cb", "#", "#").unwrap();
        let ident = b.build().unwrap();
        assert!(!equivalent(&flip.dtop, Some(&flip.domain), &ident, Some(&flip.domain)).unwrap());
    }

    #[test]
    fn inequivalent_when_domains_differ() {
        let m1 = examples::constant_m1();
        // same constant transduction but restricted to single-node trees
        let mut d = xtt_automata::DttaBuilder::new(m1.dtop.input().clone());
        let p = d.add_state("leaf-only");
        d.add_transition(p, xtt_trees::Symbol::new("a"), vec![])
            .unwrap();
        let leaf_only = d.build().unwrap();
        assert!(!equivalent(&m1.dtop, Some(&m1.domain), &m1.dtop, Some(&leaf_only)).unwrap());
    }

    #[test]
    fn library_equivalent_to_itself_restricted() {
        let fix = examples::library();
        assert!(equivalent(&fix.dtop, None, &fix.dtop, Some(&fix.domain)).unwrap());
    }
}
