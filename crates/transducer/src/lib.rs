//! # xtt-transducer
//!
//! Deterministic top-down tree transducers (dtops) with the full normal-form
//! toolchain of *"A Learning Algorithm for Top-Down XML Transformations"*
//! (Lemay, Maneth, Niehren; PODS 2010):
//!
//! * [`dtop::Dtop`] + [`rhs::Rhs`] — Definition 1, with a builder that
//!   accepts the paper's textual rule syntax;
//! * [`eval`] — the semantics `⟦M⟧` / `⟦M⟧_q` and the stopped computation
//!   `⟦Mx⟧(s[u←x])` (Definition 3, Proposition 4), memoized so copying
//!   transducers stay polynomial;
//! * [`domain::domain_dtta`] — the subset-construction domain automaton
//!   (Proposition 2);
//! * [`earliest`] — the earliest normal form (Section 3 / Definition 8);
//! * [`minimize`] — merging of equivalent states and canonical numbering,
//!   yielding the paper's unique `min(τ)` (Definition 24, Theorem 28);
//! * [`equiv`] — polynomial equivalence checking via canonical forms;
//! * [`iopaths`] — state- and trans-io-paths under the order `<` of
//!   Section 8 (Definition 29);
//! * [`outputs`] — symbolic maximal outputs `out_τ(u·f)` with hole
//!   provenance, the backbone of characteristic-sample generation;
//! * [`witness`] — two-valuedness witnesses per state (Lemma 21);
//! * [`examples`] — every transducer exhibited in the paper plus scalable
//!   families for the benchmarks.

pub mod compose;
pub mod domain;
pub mod dtop;
pub mod earliest;
pub mod equiv;
pub mod eval;
pub mod examples;
pub mod iopaths;
pub mod minimize;
pub mod outputs;
pub mod parse;
pub mod random;
pub mod rhs;
pub mod witness;

pub use compose::{compose, identity};
pub use domain::{chain_domain_dtta, chain_domain_raw, domain_dtta, domain_dtta_raw, RawDomain};
pub use dtop::{Dtop, DtopBuilder, DtopError};
pub use earliest::{is_earliest, to_earliest, Canonical, NormError};
pub use equiv::{canonical_form, equivalent, same_canonical};
pub use eval::{eval, eval_cut, eval_naive, eval_state, Evaluator};
pub use iopaths::{sort_io_paths, state_io_paths, trans_io_paths, IoPath, TransIoPath};
pub use minimize::{canonical_number, minimize};
pub use outputs::{out_at, Hole, OutAt};
pub use parse::parse_dtop;
pub use random::{random_partial_dtop, random_total_dtop, RandomDtopConfig};
pub use rhs::{parse_rhs, QId, Rhs, RhsError};
pub use witness::{root_output_witnesses, root_symbol_witnesses};
