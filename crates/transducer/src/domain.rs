//! The domain automaton of a dtop.
//!
//! The domain of a dtop is accepted by a deterministic top-down tree
//! automaton (Proposition 2 via [Engelfriet, Maneth & Seidl 2009,
//! Prop. 2(1)]). The classic construction is a *subset construction*: the
//! automaton state at a node is the **set** of transducer states that
//! process the node (the "state sequence" of Definition 3), optionally
//! paired with the state of an external inspection DTTA.
//!
//! `s ∈ dom(⟦M⟧|_{L(A)})` iff at every node of `s`, every transducer state
//! in the node's set has a rule for the node's symbol, and `A` accepts `s`.
//! The returned automaton is trimmed: every state has a nonempty language
//! and every transition is live.

use std::collections::{BTreeSet, HashMap};

use xtt_automata::{trim, Dtta, DttaBuilder, StateId};

use crate::dtop::Dtop;
use crate::rhs::QId;

/// One subset-construction state: for each machine run in parallel, the
/// set of its transducer states processing the node, plus the inspection
/// state (if any). [`domain_dtta_raw`] runs one machine; the chain
/// variants run every composed prefix of a pipeline at once.
type SubsetState = (Vec<BTreeSet<QId>>, Option<StateId>);

/// The untrimmed subset automaton of [`domain_dtta_raw`], with the
/// bookkeeping a runtime guard needs: `skip_state` is the `∅` subset
/// state — the node is *deleted* by the run, no transducer state ever
/// inspects it, so a guard may accept the whole subtree without looking
/// (even at symbols outside the declared alphabet, which is exactly what
/// evaluation does).
pub struct RawDomain {
    pub dtta: Dtta,
    pub skip_state: Option<StateId>,
}

/// Builds a trimmed DTTA recognizing `dom(⟦M⟧) ∩ L(inspection)`
/// (or `dom(⟦M⟧)` if no inspection automaton is given).
pub fn domain_dtta(m: &Dtop, inspection: Option<&Dtta>) -> Dtta {
    trim(&domain_dtta_raw(m, inspection).dtta)
}

/// The *untrimmed* subset automaton. Same language as [`domain_dtta`],
/// but every reachable subset state is kept, so a run over a tree fails
/// exactly at the first (pre-order) node where some transducer state
/// lacks a rule — the property the fail-fast typecheck guard needs for
/// its diagnostics. (Trimming would reject earlier: a transition into an
/// empty-language state is removed, moving the failure up the tree.)
pub fn domain_dtta_raw(m: &Dtop, inspection: Option<&Dtta>) -> RawDomain {
    chain_domain_raw(&[m], inspection)
}

/// Trimmed DTTA recognizing `⋂ᵢ dom(⟦Mᵢ⟧) ∩ L(inspection)` for machines
/// sharing one input alphabet. See [`chain_domain_raw`] for why a
/// pipeline needs the intersection over its composed prefixes.
pub fn chain_domain_dtta(ms: &[&Dtop], inspection: Option<&Dtta>) -> Dtta {
    trim(&chain_domain_raw(ms, inspection).dtta)
}

/// The untrimmed subset automaton of `⋂ᵢ dom(⟦Mᵢ⟧) ∩ L(inspection)`,
/// running every machine's subset construction in lockstep.
///
/// This is the exact domain of a *pipeline chain* when `ms` are the
/// composed prefixes `C₁ = τ₁, C₂ = τ₂∘τ₁, …`: stage-by-stage execution
/// needs every intermediate value **fully** defined, while the final
/// composed product alone evaluates earlier stages lazily — when a later
/// stage deletes part of an earlier stage's output, `dom(Cₙ)` never
/// checks the earlier stage's partiality there and can strictly exceed
/// the chain's domain. Intersecting `dom(Cᵢ)` for every prefix closes
/// that gap: given `t ∈ ⋂_{i<k} dom(Cᵢ)`, the value `C_{k-1}(t)` is fully
/// defined, so `t ∈ dom(C_k)` iff `τ_k` is defined on it.
///
/// The `∅`-everywhere subset is the skip state: no machine ever inspects
/// the node (for prefix chains that is exactly where stage 1 deletes, and
/// later prefixes read subsets of stage 1's positions), so a guard may
/// accept the whole subtree without looking — matching evaluation.
pub fn chain_domain_raw(ms: &[&Dtop], inspection: Option<&Dtta>) -> RawDomain {
    assert!(!ms.is_empty(), "chain domain of zero machines");
    let alphabet = ms[0].input().clone();
    for m in ms {
        assert!(
            *m.input() == alphabet,
            "chain domain machines must share one input alphabet"
        );
    }
    let mut builder = DttaBuilder::new(alphabet.clone());
    let mut ids: HashMap<SubsetState, StateId> = HashMap::new();
    let mut queue: Vec<SubsetState> = Vec::new();

    let initial_sets: Vec<BTreeSet<QId>> = ms
        .iter()
        .map(|m| m.axiom().called_states().into_iter().collect())
        .collect();
    let initial: SubsetState = (initial_sets, inspection.map(Dtta::initial));
    let id0 = builder.add_state(subset_name(ms, inspection, &initial));
    ids.insert(initial.clone(), id0);
    queue.push(initial);

    while let Some(state) = queue.pop() {
        let id = ids[&state];
        let (ref qsets, insp) = state;
        'symbols: for &f in alphabet.symbols() {
            let rank = alphabet.rank(f).unwrap();
            // Inspection must allow f here.
            let insp_children: Option<&[StateId]> = match (inspection, insp) {
                (Some(a), Some(p)) => match a.transition(p, f) {
                    Some(cs) => Some(cs),
                    None => continue 'symbols,
                },
                _ => None,
            };
            // Every state of every machine in the set needs an f-rule.
            let mut child_sets: Vec<Vec<BTreeSet<QId>>> =
                vec![vec![BTreeSet::new(); rank]; ms.len()];
            for (k, m) in ms.iter().enumerate() {
                for &q in &qsets[k] {
                    let Some(rhs) = m.rule(q, f) else {
                        continue 'symbols;
                    };
                    for (_, q2, child) in rhs.calls() {
                        child_sets[k][child].insert(q2);
                    }
                }
            }
            let mut children = Vec::with_capacity(rank);
            for i in 0..rank {
                let sets: Vec<BTreeSet<QId>> = child_sets
                    .iter_mut()
                    .map(|per_m| std::mem::take(&mut per_m[i]))
                    .collect();
                let child_insp = insp_children.map(|cs| cs[i]);
                let child_state: SubsetState = (sets, child_insp);
                let child_id = *ids.entry(child_state.clone()).or_insert_with(|| {
                    queue.push(child_state.clone());
                    builder.add_state(subset_name(ms, inspection, &child_state))
                });
                children.push(child_id);
            }
            builder
                .add_transition(id, f, children)
                .expect("ranks agree by construction");
        }
        assert!(
            ids.len() <= 1_000_000,
            "domain subset construction exceeded 1e6 states"
        );
    }
    let skip_key: SubsetState = (vec![BTreeSet::new(); ms.len()], None);
    let skip_state = ids.get(&skip_key).copied();
    RawDomain {
        dtta: builder.build().expect("has initial state"),
        skip_state,
    }
}

fn subset_name(ms: &[&Dtop], inspection: Option<&Dtta>, s: &SubsetState) -> String {
    let mut name = String::new();
    for (k, (m, set)) in ms.iter().zip(&s.0).enumerate() {
        if k > 0 {
            name.push('|');
        }
        name.push('{');
        for (i, q) in set.iter().enumerate() {
            if i > 0 {
                name.push(',');
            }
            name.push_str(m.state_name(*q));
        }
        name.push('}');
    }
    if let (Some(a), Some(p)) = (inspection, s.1) {
        name.push('@');
        name.push_str(a.state_name(p));
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::examples;
    use xtt_automata::enumerate_language;
    use xtt_trees::parse_tree;

    #[test]
    fn flip_domain_without_inspection_is_larger() {
        // (q4, a) deletes its first subtree, so without inspection the
        // domain accepts junk in deleted positions (paper's remark on Mflip).
        let fix = examples::flip();
        let d = domain_dtta(&fix.dtop, None);
        let junk = parse_tree("root(a(b(#,#),#),#)").unwrap();
        assert!(d.accepts(&junk));
        assert!(!fix.domain.accepts(&junk));
        // with inspection, the domain is the intended one
        let di = domain_dtta(&fix.dtop, Some(&fix.domain));
        assert!(!di.accepts(&junk));
        assert!(di.accepts(&parse_tree("root(a(#,#),b(#,#))").unwrap()));
    }

    #[test]
    fn domain_matches_evaluation_on_enumerated_trees() {
        let fix = examples::flip();
        let d = domain_dtta(&fix.dtop, None);
        // dom(⟦M⟧) membership must coincide with eval success
        let all = xtt_trees::gen::enumerate_trees(fix.dtop.input(), 400, 9);
        for t in all {
            assert_eq!(
                d.accepts(&t),
                eval(&fix.dtop, &t).is_some(),
                "domain mismatch on {t}"
            );
        }
    }

    #[test]
    fn domain_with_inspection_matches_restricted_evaluation() {
        let fix = examples::flip();
        let d = domain_dtta(&fix.dtop, Some(&fix.domain));
        let all = xtt_trees::gen::enumerate_trees(fix.dtop.input(), 400, 9);
        for t in all {
            let expected = fix.domain.accepts(&t) && eval(&fix.dtop, &t).is_some();
            assert_eq!(d.accepts(&t), expected, "restricted domain mismatch on {t}");
        }
    }

    #[test]
    fn copying_transducer_intersects_child_constraints() {
        // q(f(x1)) -> g(<qa,x1>,<qb,x1>) where qa wants a, qb wants b:
        // the child is processed by both states, so the domain is empty
        // beyond... actually the child must satisfy both: only trees where
        // both rules exist. qa accepts only "a", qb only "b" ⇒ dom = ∅.
        let input = xtt_trees::RankedAlphabet::from_pairs([("f", 1), ("a", 0), ("b", 0)]);
        let output = xtt_trees::RankedAlphabet::from_pairs([("g", 2), ("a", 0), ("b", 0)]);
        let mut b = crate::dtop::DtopBuilder::new(input, output);
        b.add_state("q");
        b.add_state("qa");
        b.add_state("qb");
        b.set_axiom_str("<q,x0>").unwrap();
        b.add_rule_str("q", "f", "g(<qa,x1>,<qb,x1>)").unwrap();
        b.add_rule_str("qa", "a", "a").unwrap();
        b.add_rule_str("qb", "b", "b").unwrap();
        let m = b.build().unwrap();
        let d = domain_dtta(&m, None);
        assert!(xtt_automata::is_empty(&d));
    }

    #[test]
    fn raw_domain_keeps_language_and_marks_skip_state() {
        let fix = examples::flip();
        let raw = domain_dtta_raw(&fix.dtop, None);
        let trimmed = domain_dtta(&fix.dtop, None);
        assert!(xtt_automata::language_equal(&raw.dtta, &trimmed));
        // (q4, a) deletes its first subtree, so the ∅ subset state is
        // reachable and marked.
        let skip = raw.skip_state.expect("flip deletes subtrees");
        assert_eq!(raw.dtta.state_name(skip), "{}");
        // With inspection there is no uninspected position.
        let insp = domain_dtta_raw(&fix.dtop, Some(&fix.domain));
        assert!(insp.skip_state.is_none());
    }

    #[test]
    fn library_domain_accepts_encodings() {
        let fix = examples::library();
        for n in 0..4 {
            assert!(fix.domain.accepts(&examples::library_input(n)));
        }
        // path-closure member that is not an encoding is still in dom(⟦M⟧):
        // B*(#, B*(#,#)) — junk tail after empty head
        let odd = parse_tree("L(\"B*\"(#,\"B*\"(#,#)))").unwrap();
        assert!(fix.domain.accepts(&odd));
        assert!(eval(&fix.dtop, &odd).is_some());
    }

    #[test]
    fn enumerated_domain_trees_all_evaluate() {
        let fix = examples::library();
        let trees = enumerate_language(&fix.domain, fix.domain.initial(), 60, 24);
        assert!(!trees.is_empty());
        for t in trees {
            assert!(eval(&fix.dtop, &t).is_some(), "in-domain tree failed: {t}");
        }
    }
}
