//! Symbolic computation of maximal outputs `out_τ(u)` / `out_τ(u·f)` with
//! hole provenance.
//!
//! For an *earliest uniform* transducer the maximal output at a path can be
//! read off the rules: walk the path from the axiom, expanding the states
//! that process each node; a call into an off-path child is a `⊥`-hole of
//! the maximal output (earliest ⇒ `out` of the called state is `⊥` at its
//! root), and so is every call left at the end of the path. Each hole
//! therefore comes with *provenance*: the canonical state that produces
//! there and the input node whose subtree it depends on — exactly the data
//! the characteristic-sample generator (conditions (A), (T), (O) of
//! Definition 31) needs.

use xtt_automata::StateId;
use xtt_trees::{FPath, PTree, Step, Symbol};

use crate::earliest::Canonical;
use crate::rhs::{QId, Rhs};

/// One `⊥`-hole of a maximal output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hole {
    /// Labeled output path `v'` of the hole (relative to the output root).
    pub output: FPath,
    /// The canonical state producing output at this hole.
    pub state: QId,
    /// Labeled input path of the node whose subtree the hole depends on.
    pub input: FPath,
}

/// A maximal output with provenance.
#[derive(Clone, Debug)]
pub struct OutAt {
    /// `out_τ(u)` resp. `out_τ(u·f)`, with `⊥` at the holes.
    pub ptree: PTree,
    /// All holes, in pre-order of output position.
    pub holes: Vec<Hole>,
}

enum OT {
    Sym(Symbol, Vec<OT>),
    /// A state still processing the current path node.
    Marker(QId),
    /// A resolved hole.
    Hole(QId, FPath),
}

/// Computes `out_τ(u)` (if `label` is `None`) or `out_τ(u·f)` (if `label`
/// is `Some(f)`) for the transduction of a canonical (earliest uniform)
/// transducer. Returns `None` when the (n)path belongs to no tree of the
/// domain.
pub fn out_at(c: &Canonical, u: &FPath, label: Option<Symbol>) -> Option<OutAt> {
    // Follow the domain automaton to validate the path.
    let mut d: StateId = c.domain.initial();

    let mut tree = rhs_to_ot(c.dtop.axiom(), &mut |q, _| OT::Marker(q));
    let mut prefix = FPath::empty();
    for step in u.steps() {
        let children = c.domain.transition(d, step.symbol)?;
        d = *children.get(step.child as usize)?;
        let here = prefix.clone();
        tree = expand_markers(&tree, &mut |q| {
            let rhs = c
                .dtop
                .rule(q, step.symbol)
                .expect("uniformity: live domain transition implies rule");
            Some(rhs_to_ot(rhs, &mut |q2, child| {
                if child == step.child as usize {
                    OT::Marker(q2)
                } else {
                    OT::Hole(q2, here.push(Step::new(step.symbol, child as u32)))
                }
            }))
        })?;
        prefix = prefix.push(*step);
    }
    if let Some(f) = label {
        c.domain.transition(d, f)?;
        let here = prefix.clone();
        tree = expand_markers(&tree, &mut |q| {
            let rhs = c.dtop.rule(q, f)?;
            Some(rhs_to_ot(rhs, &mut |q2, child| {
                OT::Hole(q2, here.push(Step::new(f, child as u32)))
            }))
        })?;
    } else {
        // Remaining markers depend on the whole subtree at `u`.
        let here = prefix;
        tree = expand_markers(&tree, &mut |q| Some(OT::Hole(q, here.clone())))?;
    }

    let mut holes = Vec::new();
    let ptree = finish(&tree, &FPath::empty(), &mut holes);
    Some(OutAt { ptree, holes })
}

fn rhs_to_ot(rhs: &Rhs, on_call: &mut impl FnMut(QId, usize) -> OT) -> OT {
    match rhs {
        Rhs::Call { state, child } => on_call(*state, *child),
        Rhs::Out(sym, kids) => OT::Sym(*sym, kids.iter().map(|k| rhs_to_ot(k, on_call)).collect()),
    }
}

/// Replaces every `Marker` through `f`; `None` from `f` aborts (missing
/// rule ⇒ the path leaves the domain).
fn expand_markers(t: &OT, f: &mut impl FnMut(QId) -> Option<OT>) -> Option<OT> {
    match t {
        OT::Marker(q) => f(*q),
        OT::Hole(q, input) => Some(OT::Hole(*q, input.clone())),
        OT::Sym(sym, kids) => {
            let mut out = Vec::with_capacity(kids.len());
            for k in kids {
                out.push(expand_markers(k, f)?);
            }
            Some(OT::Sym(*sym, out))
        }
    }
}

fn finish(t: &OT, at: &FPath, holes: &mut Vec<Hole>) -> PTree {
    match t {
        OT::Marker(_) => unreachable!("markers were all expanded"),
        OT::Hole(q, input) => {
            holes.push(Hole {
                output: at.clone(),
                state: *q,
                input: input.clone(),
            });
            PTree::bottom()
        }
        OT::Sym(sym, kids) => PTree::sym(
            *sym,
            kids.iter()
                .enumerate()
                .map(|(i, k)| finish(k, &at.push(Step::new(*sym, i as u32)), holes))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::canonical_form;
    use crate::eval::eval;
    use crate::examples;
    use xtt_automata::enumerate_language;

    /// Brute-force out_τ(U) from enumerated domain trees, for validation.
    fn brute_out(
        fix: &examples::Fixture,
        u: &FPath,
        label: Option<Symbol>,
        n: usize,
    ) -> Option<PTree> {
        let trees = enumerate_language(&fix.domain, fix.domain.initial(), n, 40);
        let outputs: Vec<PTree> = trees
            .iter()
            .filter(|s| match label {
                Some(f) => u.with_label(f).belongs_to(s),
                None => u.belongs_to(s),
            })
            .filter_map(|s| eval(&fix.dtop, s))
            .map(|t| PTree::from_tree(&t))
            .collect();
        if outputs.is_empty() {
            return None;
        }
        Some(PTree::lcp_many(outputs))
    }

    #[test]
    fn flip_out_at_root_matches_brute_force() {
        let fix = examples::flip();
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let got = out_at(&c, &FPath::empty(), None).unwrap();
        assert_eq!(got.ptree.to_string(), "root(⊥,⊥)");
        assert_eq!(got.holes.len(), 2);
        assert_eq!(got.holes[0].input, FPath::empty());
        let brute = brute_out(&fix, &FPath::empty(), None, 500).unwrap();
        assert_eq!(got.ptree, brute);
    }

    #[test]
    fn flip_out_at_npaths_matches_brute_force() {
        let fix = examples::flip();
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let root = Symbol::new("root");
        let a = Symbol::new("a");
        let b = Symbol::new("b");
        let cases: Vec<(FPath, Symbol)> = vec![
            (FPath::empty(), root),
            (FPath::parse_pairs(&[("root", 1)]), a),
            (FPath::parse_pairs(&[("root", 2)]), b),
            (FPath::parse_pairs(&[("root", 1)]), Symbol::new("#")),
            (FPath::parse_pairs(&[("root", 1), ("a", 2)]), a),
        ];
        for (u, f) in cases {
            let got = out_at(&c, &u, Some(f)).unwrap();
            let brute = brute_out(&fix, &u, Some(f), 2000).unwrap();
            assert_eq!(got.ptree, brute, "out mismatch at {u}·{f}");
        }
    }

    #[test]
    fn out_at_invalid_path_is_none() {
        let fix = examples::flip();
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        // b's cannot appear under (root,1)
        let u = FPath::parse_pairs(&[("root", 1)]);
        assert!(out_at(&c, &u, Some(Symbol::new("b"))).is_none());
        let bad = FPath::parse_pairs(&[("a", 1)]);
        assert!(out_at(&c, &bad, None).is_none());
    }

    #[test]
    fn holes_carry_provenance() {
        // For u·f = ε·root, rhs holes come from the axiom's two calls whose
        // rules consume the root: holes depend on the root's children.
        let fix = examples::flip();
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let got = out_at(&c, &FPath::empty(), Some(Symbol::new("root"))).unwrap();
        assert_eq!(got.ptree.to_string(), "root(⊥,⊥)");
        assert_eq!(got.holes.len(), 2);
        // first hole: output (root,1), produced by the state reading (root,2)
        assert_eq!(got.holes[0].output, FPath::parse_pairs(&[("root", 1)]));
        assert_eq!(got.holes[0].input, FPath::parse_pairs(&[("root", 2)]));
        assert_eq!(got.holes[1].output, FPath::parse_pairs(&[("root", 2)]));
        assert_eq!(got.holes[1].input, FPath::parse_pairs(&[("root", 1)]));
    }

    #[test]
    fn library_out_at_axiom() {
        let fix = examples::library();
        let c = canonical_form(&fix.dtop, None).unwrap();
        let got = out_at(&c, &FPath::empty(), None).unwrap();
        assert_eq!(got.ptree.to_string(), "L(S(T*(⊥,⊥)),B*(⊥,⊥))");
        assert_eq!(got.holes.len(), 4);
        for h in &got.holes {
            assert_eq!(h.input, FPath::empty());
        }
    }
}
