//! Deterministic top-down tree transducers (Definition 1).
//!
//! A dtop is `M = (Q, F, G, ax, rhs)` with a finite state set `Q`, input and
//! output ranked alphabets, an axiom `ax ∈ T_G(Q × {x₀})`, and a partial
//! rule function `rhs(q, f) ∈ T_G(Q × X_k)` for `f ∈ F^(k)`. The induced
//! transduction `⟦M⟧` is the partial function evaluated by
//! [`crate::eval`].

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use xtt_trees::{RankedAlphabet, Symbol};

use crate::rhs::{display_rhs, parse_rhs, QId, Rhs, RhsError};

/// A deterministic top-down tree transducer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dtop {
    input: RankedAlphabet,
    output: RankedAlphabet,
    state_names: Vec<String>,
    axiom: Rhs,
    rules: HashMap<(QId, Symbol), Rhs>,
}

/// Errors raised when assembling an ill-formed transducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtopError {
    Rhs(RhsError),
    UnknownInputSymbol(Symbol),
    UnknownState(QId),
    BadStateName(String),
    Parse(String),
    /// Composition alphabet mismatch, positioned: while building the pair
    /// state `q2∘q1`, `m1`'s right-hand side emitted `symbol`, which is
    /// not in `m2`'s input alphabet at all. (An in-alphabet symbol that
    /// merely lacks a rule is *not* an error — it soundly shrinks the
    /// composed domain, see `compose`'s module docs.)
    Compose {
        q2: String,
        q1: String,
        symbol: Symbol,
    },
}

impl fmt::Display for DtopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtopError::Rhs(e) => write!(f, "{e}"),
            DtopError::UnknownInputSymbol(s) => write!(f, "input symbol {s} not in alphabet"),
            DtopError::UnknownState(q) => write!(f, "unknown state {q}"),
            DtopError::BadStateName(n) => write!(f, "unknown state name '{n}'"),
            DtopError::Parse(e) => write!(f, "rhs parse error: {e}"),
            DtopError::Compose { q2, q1, symbol } => write!(
                f,
                "composition pair {q2}\u{2218}{q1}: m1 emits '{symbol}', \
                 which is outside m2's input alphabet"
            ),
        }
    }
}

impl std::error::Error for DtopError {}

impl From<RhsError> for DtopError {
    fn from(e: RhsError) -> Self {
        DtopError::Rhs(e)
    }
}

/// Incremental construction of a [`Dtop`].
#[derive(Clone, Debug)]
pub struct DtopBuilder {
    input: RankedAlphabet,
    output: RankedAlphabet,
    state_names: Vec<String>,
    name_index: HashMap<String, QId>,
    axiom: Option<Rhs>,
    rules: HashMap<(QId, Symbol), Rhs>,
}

impl DtopBuilder {
    pub fn new(input: RankedAlphabet, output: RankedAlphabet) -> Self {
        DtopBuilder {
            input,
            output,
            state_names: Vec::new(),
            name_index: HashMap::new(),
            axiom: None,
            rules: HashMap::new(),
        }
    }

    /// Adds a fresh state with the given display name.
    pub fn add_state(&mut self, name: impl Into<String>) -> QId {
        let name = name.into();
        let id = QId(u32::try_from(self.state_names.len()).expect("too many states"));
        self.name_index.insert(name.clone(), id);
        self.state_names.push(name);
        id
    }

    /// Looks up a state by display name.
    pub fn state(&self, name: &str) -> Option<QId> {
        self.name_index.get(name).copied()
    }

    /// Sets the axiom (calls must use variable `x0`).
    pub fn set_axiom(&mut self, axiom: Rhs) {
        self.axiom = Some(axiom);
    }

    /// Parses and sets the axiom from text like `root(<q1,x0>,<q2,x0>)`.
    pub fn set_axiom_str(&mut self, text: &str) -> Result<(), DtopError> {
        let idx = self.name_index.clone();
        let axiom = parse_rhs(text, &|n| idx.get(n).copied(), true).map_err(DtopError::Parse)?;
        self.axiom = Some(axiom);
        Ok(())
    }

    /// Defines the `(q, f)`-rule. Overwrites any previous rule (determinism
    /// by construction).
    pub fn add_rule(&mut self, q: QId, f: Symbol, rhs: Rhs) -> Result<(), DtopError> {
        if !self.input.contains(f) {
            return Err(DtopError::UnknownInputSymbol(f));
        }
        if q.index() >= self.state_names.len() {
            return Err(DtopError::UnknownState(q));
        }
        self.rules.insert((q, f), rhs);
        Ok(())
    }

    /// Parses and adds a rule, e.g. `add_rule_str("q3", "b", "b(#,<q3,x2>)")`.
    pub fn add_rule_str(&mut self, state: &str, symbol: &str, rhs: &str) -> Result<(), DtopError> {
        let q = self
            .state(state)
            .ok_or_else(|| DtopError::BadStateName(state.to_owned()))?;
        let f = Symbol::new(symbol);
        let idx = self.name_index.clone();
        let rhs = parse_rhs(rhs, &|n| idx.get(n).copied(), false).map_err(DtopError::Parse)?;
        self.add_rule(q, f, rhs)
    }

    /// Validates everything and builds the transducer. If no axiom was set,
    /// the default is `⟨q0, x0⟩`.
    pub fn build(self) -> Result<Dtop, DtopError> {
        let axiom = self.axiom.unwrap_or(Rhs::Call {
            state: QId(0),
            child: 0,
        });
        axiom.validate(&self.output, 1, self.state_names.len())?;
        for (&(q, f), rhs) in &self.rules {
            let arity = self.input.rank(f).ok_or(DtopError::UnknownInputSymbol(f))?;
            rhs.validate(&self.output, arity, self.state_names.len())?;
            debug_assert!(q.index() < self.state_names.len());
        }
        Ok(Dtop {
            input: self.input,
            output: self.output,
            state_names: self.state_names,
            axiom,
            rules: self.rules,
        })
    }
}

impl Dtop {
    pub fn builder(input: RankedAlphabet, output: RankedAlphabet) -> DtopBuilder {
        DtopBuilder::new(input, output)
    }

    /// A transducer with a constant axiom and no states (Example 1's `M₁`).
    pub fn constant(input: RankedAlphabet, output: RankedAlphabet, axiom: Rhs) -> Dtop {
        assert!(
            axiom.calls().is_empty(),
            "constant axiom must not call states"
        );
        Dtop {
            input,
            output,
            state_names: Vec::new(),
            axiom,
            rules: HashMap::new(),
        }
    }

    pub fn input(&self) -> &RankedAlphabet {
        &self.input
    }

    pub fn output(&self) -> &RankedAlphabet {
        &self.output
    }

    pub fn axiom(&self) -> &Rhs {
        &self.axiom
    }

    pub fn state_count(&self) -> usize {
        self.state_names.len()
    }

    pub fn states(&self) -> impl Iterator<Item = QId> {
        (0..self.state_names.len() as u32).map(QId)
    }

    pub fn state_name(&self, q: QId) -> &str {
        &self.state_names[q.index()]
    }

    pub fn state_by_name(&self, name: &str) -> Option<QId> {
        self.state_names
            .iter()
            .position(|n| n == name)
            .map(|i| QId(i as u32))
    }

    /// `rhs(q, f)`, if defined.
    pub fn rule(&self, q: QId, f: Symbol) -> Option<&Rhs> {
        self.rules.get(&(q, f))
    }

    /// All rules in deterministic (state, symbol-declaration) order.
    pub fn rules(&self) -> Vec<(QId, Symbol, &Rhs)> {
        let mut out: Vec<_> = self
            .rules
            .iter()
            .map(|(&(q, f), rhs)| (q, f, rhs))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| self.input.cmp_symbols(a.1, b.1)));
        out
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Input symbols with a rule for `q`, in declaration order.
    pub fn enabled_symbols(&self, q: QId) -> Vec<Symbol> {
        let mut syms: Vec<Symbol> = self
            .rules
            .keys()
            .filter(|&&(q2, _)| q2 == q)
            .map(|&(_, f)| f)
            .collect();
        syms.sort_by(|&a, &b| self.input.cmp_symbols(a, b));
        syms
    }

    /// Total size: axiom size plus the sizes of all right-hand sides.
    /// This is the size measure `|M|` for the complexity claims.
    pub fn size(&self) -> usize {
        self.axiom.size() + self.rules.values().map(Rhs::size).sum::<usize>()
    }

    /// Renders a rhs with this transducer's state names.
    pub fn show_rhs(&self, rhs: &Rhs, axiom: bool) -> String {
        display_rhs(rhs, &|q| self.state_names[q.index()].clone(), axiom)
    }
}

impl fmt::Display for Dtop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ax = {}", self.show_rhs(&self.axiom, true))?;
        for (q, sym, rhs) in self.rules() {
            let arity = self.input.rank(sym).unwrap_or(0);
            write!(f, "{}({}", self.state_name(q), sym)?;
            if arity > 0 {
                write!(f, "(")?;
                for i in 0..arity {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "x{}", i + 1)?;
                }
                write!(f, ")")?;
            }
            writeln!(f, ") -> {}", self.show_rhs(rhs, false))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;

    #[test]
    fn flip_transducer_shape() {
        let m = examples::flip().dtop;
        assert_eq!(m.state_count(), 4);
        assert_eq!(m.rule_count(), 6);
        let text = m.to_string();
        assert!(text.contains("ax = root(<q1,x0>,<q2,x0>)"));
        assert!(text.contains("q1(root(x1,x2)) -> <q3,x2>"));
        assert!(text.contains("q3(b(x1,x2)) -> b(#,<q3,x2>)"));
    }

    #[test]
    fn builder_rejects_bad_rules() {
        let alpha = RankedAlphabet::from_pairs([("f", 2), ("a", 0)]);
        let mut b = DtopBuilder::new(alpha.clone(), alpha);
        let q = b.add_state("q");
        // unknown input symbol
        assert!(b.add_rule(q, Symbol::new("zzz"), Rhs::leaf("a")).is_err());
        // rank-mismatched rhs is caught at build time
        b.add_rule(q, Symbol::new("f"), Rhs::out("f", vec![Rhs::leaf("a")]))
            .unwrap();
        assert!(b.build().is_err());
    }

    #[test]
    fn constant_transducer_m1() {
        // Example 1: axiom b, no states or rules.
        let f = RankedAlphabet::from_pairs([("f", 2), ("a", 0)]);
        let g = RankedAlphabet::from_pairs([("b", 0)]);
        let m1 = Dtop::constant(f, g, Rhs::leaf("b"));
        assert_eq!(m1.state_count(), 0);
        assert_eq!(m1.rule_count(), 0);
        assert_eq!(m1.size(), 1);
    }

    #[test]
    fn enabled_symbols_in_declaration_order() {
        let m = examples::flip().dtop;
        let q3 = m.state_by_name("q3").unwrap();
        let names: Vec<&str> = m.enabled_symbols(q3).iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["b", "#"]);
    }

    #[test]
    fn size_counts_axiom_and_rhs_nodes() {
        let m = examples::flip().dtop;
        // axiom root(<q1,x0>,<q2,x0>) = 3 nodes; rules: <q3,x2>=1, <q4,x1>=1,
        // #=1, b(#,<q3,x2>)=3, #=1, a(#,<q4,x2>)=3
        assert_eq!(m.size(), 3 + 1 + 1 + 1 + 3 + 1 + 3);
    }
}
