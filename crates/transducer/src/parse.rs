//! Parsing a [`Dtop`] back from its [`Display`] rendering.
//!
//! The textual format is exactly what `Dtop`'s `Display` impl writes —
//! one axiom line and one line per rule:
//!
//! ```text
//! ax = root(<q1,x0>,<q2,x0>)
//! q1(root(x1,x2)) -> <q3,x2>
//! q3(#) -> #
//! q3(b(x1,x2)) -> b(#,<q3,x2>)
//! ```
//!
//! Alphabets and states are *inferred*: input symbols (with ranks) from
//! the rule left-hand sides, output symbols from the right-hand sides,
//! states from every name that appears as a rule head or inside a
//! `<state,xi>` call. This makes the rendering a complete wire format for
//! transducers — the serving layer (`xtt-serve`) accepts uploads in it and
//! the golden-corpus tests store transducers in it.
//!
//! [`Display`]: std::fmt::Display

use std::collections::{HashMap, HashSet};

use xtt_trees::{RankedAlphabet, Symbol};

use crate::dtop::{Dtop, DtopBuilder, DtopError};
use crate::rhs::{parse_rhs, QId, Rhs};

/// One parsed rule line, before states and alphabets are assembled.
struct RuleLine {
    state: String,
    symbol: String,
    arity: usize,
    rhs_text: String,
}

/// Parses a transducer from its `Display` rendering (see the module docs).
///
/// Lines that are empty or start with `//` are skipped. The axiom line
/// (`ax = …`) is mandatory; rule lines may come in any order. Duplicate
/// `(state, symbol)` rules are rejected rather than silently overwritten.
pub fn parse_dtop(text: &str) -> Result<Dtop, DtopError> {
    let mut axiom_text: Option<String> = None;
    let mut rules: Vec<RuleLine> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("ax") {
            let rest = rest.trim_start();
            if let Some(body) = rest.strip_prefix('=') {
                if axiom_text.is_some() {
                    return Err(err(lineno, "duplicate axiom line"));
                }
                axiom_text = Some(body.trim().to_owned());
                continue;
            }
        }
        rules.push(parse_rule_line(line, lineno)?);
    }
    let Some(axiom_text) = axiom_text else {
        return Err(DtopError::Parse("missing axiom line `ax = …`".into()));
    };

    // States: rule heads first (in line order), then call targets found in
    // the axiom and the rule bodies.
    let mut state_order: Vec<String> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut add_state = |order: &mut Vec<String>, name: &str| {
        if !name.is_empty() && seen.insert(name.to_owned()) {
            order.push(name.to_owned());
        }
    };
    for name in call_targets(&axiom_text) {
        add_state(&mut state_order, &name);
    }
    for rule in &rules {
        add_state(&mut state_order, &rule.state);
        for name in call_targets(&rule.rhs_text) {
            add_state(&mut state_order, &name);
        }
    }
    let index: HashMap<String, QId> = state_order
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), QId(i as u32)))
        .collect();
    let resolve = |n: &str| index.get(n).copied();

    // Parse every rhs; infer the output alphabet from the parsed trees.
    let axiom = parse_rhs(&axiom_text, &resolve, true).map_err(DtopError::Parse)?;
    let mut parsed_rules: Vec<(QId, Symbol, Rhs)> = Vec::new();
    let mut input_pairs: Vec<(String, usize)> = Vec::new();
    for rule in &rules {
        record_rank(&mut input_pairs, &rule.symbol, rule.arity)
            .map_err(|e| DtopError::Parse(format!("input symbol {e}")))?;
        let rhs = parse_rhs(&rule.rhs_text, &resolve, false).map_err(DtopError::Parse)?;
        let q = index[&rule.state];
        let f = Symbol::new(&rule.symbol);
        if parsed_rules.iter().any(|&(q2, f2, _)| q2 == q && f2 == f) {
            return Err(DtopError::Parse(format!(
                "duplicate rule for ({}, {})",
                rule.state, rule.symbol
            )));
        }
        parsed_rules.push((q, f, rhs));
    }
    let mut output_pairs: Vec<(String, usize)> = Vec::new();
    collect_output_ranks(&axiom, &mut output_pairs)
        .map_err(|e| DtopError::Parse(format!("output symbol {e}")))?;
    for (_, _, rhs) in &parsed_rules {
        collect_output_ranks(rhs, &mut output_pairs)
            .map_err(|e| DtopError::Parse(format!("output symbol {e}")))?;
    }

    let input: RankedAlphabet = input_pairs.iter().map(|(n, r)| (n.as_str(), *r)).collect();
    let output: RankedAlphabet = output_pairs.iter().map(|(n, r)| (n.as_str(), *r)).collect();
    let mut builder = DtopBuilder::new(input, output);
    for name in &state_order {
        builder.add_state(name.clone());
    }
    builder.set_axiom(axiom);
    for (q, f, rhs) in parsed_rules {
        builder.add_rule(q, f, rhs)?;
    }
    builder.build()
}

fn err(lineno: usize, message: impl std::fmt::Display) -> DtopError {
    DtopError::Parse(format!("line {}: {message}", lineno + 1))
}

/// Splits `state(symbol(x1,…,xk)) -> rhs` (or `state(symbol) -> rhs` for
/// constants) into its parts. Quote-aware throughout: the input symbol
/// may be a quoted name containing `->`, parentheses, or commas.
fn parse_rule_line(line: &str, lineno: usize) -> Result<RuleLine, DtopError> {
    let arrow = find_arrow(line).ok_or_else(|| err(lineno, "expected `lhs -> rhs`"))?;
    let lhs = line[..arrow].trim();
    let rhs_text = line[arrow + 2..].trim();
    // State names are never quoted, so the first `(` ends the state.
    let open = lhs
        .find('(')
        .ok_or_else(|| err(lineno, "expected `state(symbol…)` on the left"))?;
    let state = lhs[..open].trim();
    if state.is_empty() {
        return Err(err(lineno, "empty state name"));
    }
    let rest = lhs[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| err(lineno, "unbalanced `)` in the rule head"))?
        .trim();
    // `rest` is now `symbol` or `symbol(x1,…,xk)`, symbol possibly quoted.
    let (symbol, after) = read_symbol(rest).map_err(|m| err(lineno, m))?;
    let after = after.trim();
    let arity = if after.is_empty() {
        0
    } else {
        let vars = after
            .strip_prefix('(')
            .and_then(|v| v.strip_suffix(')'))
            .ok_or_else(|| err(lineno, "expected `(x1,…,xk)` after the input symbol"))?;
        let mut arity = 0usize;
        for (i, v) in vars.split(',').enumerate() {
            let v = v.trim();
            if v != format!("x{}", i + 1) {
                return Err(err(
                    lineno,
                    format!("expected variable x{} in the rule head, got `{v}`", i + 1),
                ));
            }
            arity += 1;
        }
        arity
    };
    if symbol.is_empty() {
        return Err(err(lineno, "empty input symbol"));
    }
    Ok(RuleLine {
        state: state.to_owned(),
        symbol,
        arity,
        rhs_text: rhs_text.to_owned(),
    })
}

/// Byte offset of the first `->` outside double quotes.
fn find_arrow(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_quotes => i += 1, // skip the escaped byte
            b'"' => in_quotes = !in_quotes,
            b'-' if !in_quotes && bytes.get(i + 1) == Some(&b'>') => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Reads one symbol (bare or quoted, reversing the `Display` escaping)
/// from the start of `s`; returns the name and the remaining text.
fn read_symbol(s: &str) -> Result<(String, &str), String> {
    if let Some(rest) = s.strip_prefix('"') {
        let bytes = rest.as_bytes();
        let mut name = String::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => return Ok((name, &rest[i + 1..])),
                b'\\' => {
                    let (c, used) = unescape_at(rest, i + 1)?;
                    name.push(c);
                    i += 1 + used;
                }
                _ => {
                    let c = rest[i..].chars().next().expect("in-bounds char");
                    name.push(c);
                    i += c.len_utf8();
                }
            }
        }
        Err("unterminated quoted symbol".into())
    } else {
        let end = s.find('(').unwrap_or(s.len());
        Ok((s[..end].trim().to_owned(), &s[end..]))
    }
}

/// Decodes one `Debug`-style escape starting after the backslash at byte
/// `at`; returns the character and how many bytes the escape body used.
fn unescape_at(s: &str, at: usize) -> Result<(char, usize), String> {
    match s.as_bytes().get(at) {
        Some(b'"') => Ok(('"', 1)),
        Some(b'\\') => Ok(('\\', 1)),
        Some(b'n') => Ok(('\n', 1)),
        Some(b'r') => Ok(('\r', 1)),
        Some(b't') => Ok(('\t', 1)),
        Some(b'0') => Ok(('\0', 1)),
        Some(b'\'') => Ok(('\'', 1)),
        Some(b'u') => {
            let rest = &s[at + 1..];
            let inner = rest
                .strip_prefix('{')
                .and_then(|r| r.split_once('}'))
                .ok_or("malformed \\u escape")?
                .0;
            let code = u32::from_str_radix(inner, 16).map_err(|_| "bad \\u code".to_owned())?;
            let c = char::from_u32(code).ok_or("invalid \\u code point")?;
            Ok((c, 1 + inner.len() + 2))
        }
        _ => Err("unknown escape in quoted symbol".into()),
    }
}

/// State names appearing as `<name,…>` calls, quote-aware, in order.
fn call_targets(rhs_text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = rhs_text.as_bytes();
    let mut i = 0;
    let mut in_quotes = false;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_quotes = !in_quotes,
            b'\\' if in_quotes => i += 1, // skip the escaped byte
            b'<' if !in_quotes => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b',' && bytes[j] != b'>' {
                    j += 1;
                }
                out.push(rhs_text[start..j].trim().to_owned());
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Records `symbol ↦ rank`, rejecting conflicting ranks.
fn record_rank(pairs: &mut Vec<(String, usize)>, name: &str, rank: usize) -> Result<(), String> {
    match pairs.iter().find(|(n, _)| n == name) {
        Some((_, r)) if *r == rank => Ok(()),
        Some((_, r)) => Err(format!("{name} used with ranks {r} and {rank}")),
        None => {
            pairs.push((name.to_owned(), rank));
            Ok(())
        }
    }
}

fn collect_output_ranks(rhs: &Rhs, pairs: &mut Vec<(String, usize)>) -> Result<(), String> {
    if let Rhs::Out(sym, children) = rhs {
        record_rank(pairs, sym.name(), children.len())?;
        for c in children {
            collect_output_ranks(c, pairs)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::examples;
    use xtt_automata::enumerate_language;
    use xtt_trees::parse_tree;

    /// Every fixture round-trips through its own rendering: the parsed
    /// transducer is equivalent, and its own rendering is a fixed point
    /// (the text does not encode alphabet declaration order, so rule
    /// *order* may differ after the first trip, but never again).
    #[test]
    fn display_parse_roundtrips_fixtures() {
        for fixture in [
            examples::flip(),
            examples::library(),
            examples::monadic_to_binary(),
            examples::relabel_chain(5),
            examples::flip_k(3),
            examples::constant_m2(),
            examples::constant_m3(),
        ] {
            let text = fixture.dtop.to_string();
            let parsed = parse_dtop(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
            // Rule *order* can shift once (the text does not encode
            // alphabet declaration order); after one reparse the
            // rendering is a fixed point.
            let text2 = parse_dtop(&parsed.to_string()).unwrap().to_string();
            let reparsed = parse_dtop(&text2).unwrap();
            assert_eq!(reparsed.to_string(), text2, "display∘parse not idempotent");
            let inputs = enumerate_language(&fixture.domain, fixture.domain.initial(), 100, 12);
            assert!(!inputs.is_empty());
            for input in inputs {
                assert_eq!(
                    eval(&fixture.dtop, &input),
                    eval(&parsed, &input),
                    "parsed transducer disagrees on {input}\n{text}"
                );
            }
        }
    }

    /// A constant transducer (no states, no rules) parses too.
    #[test]
    fn parses_constant_axiom() {
        let m = parse_dtop("ax = b\n").unwrap();
        assert_eq!(m.state_count(), 0);
        assert_eq!(m.rule_count(), 0);
        let input = parse_tree("whatever").unwrap();
        assert_eq!(eval(&m, &input).unwrap().to_string(), "b");
    }

    #[test]
    fn parsed_flip_transforms() {
        let m = parse_dtop(&examples::flip().dtop.to_string()).unwrap();
        let input = parse_tree("root(a(#,#),b(#,b(#,#)))").unwrap();
        let output = eval(&m, &input).unwrap();
        assert_eq!(output.to_string(), "root(b(#,b(#,#)),a(#,#))");
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "// the flip axiom\n\nax = root(<q1,x0>,<q2,x0>)\n\
                    q1(root(x1,x2)) -> <q1,x1>\nq1(#) -> #\nq2(root(x1,x2)) -> #\n";
        let m = parse_dtop(text).unwrap();
        assert_eq!(m.state_count(), 2);
        assert_eq!(m.rule_count(), 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_dtop("q(f(x1)) -> g").is_err(), "missing axiom");
        assert!(parse_dtop("ax = <q,x0>\nnonsense").is_err());
        assert!(
            parse_dtop("ax = <q,x0>\nq(f(x2)) -> g").is_err(),
            "bad vars"
        );
        assert!(
            parse_dtop("ax = <q,x0>\nq(f(x1)) -> g\nq(f(x1)) -> h").is_err(),
            "duplicate rule"
        );
        assert!(
            parse_dtop("ax = <q,x0>\nq(f(x1)) -> g(e)\nq(e) -> g").is_err(),
            "conflicting output rank for g"
        );
        assert!(
            parse_dtop("ax = <q,x0>\nq(f(x1)) -> e\nq(f) -> e").is_err(),
            "conflicting input rank for f"
        );
    }

    /// A quoted input symbol containing `->`, parentheses, and a comma —
    /// the characters the line splitter must not trip over.
    #[test]
    fn quoted_symbol_with_arrow_and_parens_roundtrips() {
        use crate::rhs::Rhs;
        use xtt_trees::RankedAlphabet;
        let nasty = "a->b(x,1)";
        let input = RankedAlphabet::from_pairs([(nasty, 1), ("e", 0)]);
        let output = RankedAlphabet::from_pairs([("g", 1), ("e", 0)]);
        let mut b = DtopBuilder::new(input, output);
        let q = b.add_state("q");
        b.set_axiom(Rhs::call(q, 0));
        b.add_rule(q, Symbol::new(nasty), Rhs::out("g", vec![Rhs::call(q, 0)]))
            .unwrap();
        b.add_rule(q, Symbol::new("e"), Rhs::leaf("e")).unwrap();
        let m = b.build().unwrap();
        let text = m.to_string();
        let parsed = parse_dtop(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(parsed.to_string(), text);
        assert_eq!(parsed.input().rank(Symbol::new(nasty)), Some(1));
    }

    /// Quoted symbols (names with special characters) survive the trip.
    #[test]
    fn quoted_symbols_roundtrip() {
        use crate::rhs::Rhs;
        use xtt_trees::RankedAlphabet;
        let input = RankedAlphabet::from_pairs([("weird name", 0)]);
        let output = RankedAlphabet::from_pairs([("odd,sym", 0)]);
        let mut b = DtopBuilder::new(input, output);
        let q = b.add_state("q");
        b.set_axiom(Rhs::call(q, 0));
        b.add_rule(q, Symbol::new("weird name"), Rhs::leaf("odd,sym"))
            .unwrap();
        let m = b.build().unwrap();
        let text = m.to_string();
        let parsed = parse_dtop(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(parsed.to_string(), text);
    }
}
