//! Witness inputs for canonical states.
//!
//! A state `q` of an earliest transducer has `out_{⟦M⟧_q}(ε) = ⊥`, i.e. it
//! is *two-valued* (Lemma 21): there exist inputs in its domain whose
//! outputs differ already at the root symbol. [`root_output_witnesses`]
//! finds such a pair for every state — the raw material for making sample
//! outputs disagree at prescribed positions when generating characteristic
//! samples (conditions (A) and (T) of Definition 31).

use std::collections::HashMap;

use xtt_automata::minimal_witnesses;
use xtt_trees::{Symbol, Tree};

use crate::earliest::{Canonical, NormError};
use crate::rhs::Rhs;

/// For every canonical state, a pair of domain trees whose outputs have
/// distinct root symbols (smallest found, deterministic).
pub fn root_output_witnesses(c: &Canonical) -> Result<Vec<(Tree, Tree)>, NormError> {
    let per_state = root_symbol_witnesses(c)?;
    let mut out = Vec::with_capacity(per_state.len());
    for (q, table) in per_state.iter().enumerate() {
        let mut entries: Vec<(&Symbol, &Tree)> = table.iter().collect();
        entries.sort_by_key(|(sym, t)| {
            (
                t.size(),
                c.dtop.output().symbol_index(**sym).unwrap_or(usize::MAX),
                sym.id(),
            )
        });
        if entries.len() < 2 {
            return Err(NormError::Internal(format!(
                "state q{q} of an earliest transducer has fewer than two root output symbols"
            )));
        }
        out.push((entries[0].1.clone(), entries[1].1.clone()));
    }
    Ok(out)
}

/// For every canonical state, a map from possible root output symbols to a
/// small input tree (in the state's domain) realizing that root symbol.
pub fn root_symbol_witnesses(c: &Canonical) -> Result<Vec<HashMap<Symbol, Tree>>, NormError> {
    let minwit = minimal_witnesses(&c.domain);
    let n = c.dtop.state_count();
    let mut table: Vec<HashMap<Symbol, Tree>> = vec![HashMap::new(); n];
    loop {
        let mut changed = false;
        for q in c.dtop.states() {
            let d = c.state_domain[q.index()];
            for f in c.dtop.enabled_symbols(q) {
                let dchildren = c
                    .domain
                    .transition(d, f)
                    .expect("enabled symbol has live domain transition")
                    .to_vec();
                // Minimal children for each child position.
                let base_children: Option<Vec<Tree>> = dchildren
                    .iter()
                    .map(|dc| minwit[dc.index()].clone())
                    .collect();
                let Some(base_children) = base_children else {
                    return Err(NormError::Internal(
                        "untrimmed domain state in canonical transducer".into(),
                    ));
                };
                match c.dtop.rule(q, f).unwrap() {
                    Rhs::Out(sym, _) => {
                        let candidate = Tree::new(f, base_children);
                        changed |= improve(&mut table[q.index()], *sym, candidate);
                    }
                    Rhs::Call { state, child } => {
                        // Inherit: each known (sym, w) of the called state
                        // lifts to f(..., w at `child`, ...).
                        let inner = table[state.index()].clone();
                        for (sym, w) in inner {
                            let mut children = base_children.clone();
                            children[*child] = w;
                            let candidate = Tree::new(f, children);
                            changed |= improve(&mut table[q.index()], sym, candidate);
                        }
                    }
                }
            }
        }
        if !changed {
            return Ok(table);
        }
    }
}

fn improve(table: &mut HashMap<Symbol, Tree>, sym: Symbol, candidate: Tree) -> bool {
    match table.get(&sym) {
        Some(existing) if existing.size() <= candidate.size() => false,
        _ => {
            table.insert(sym, candidate);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::canonical_form;
    use crate::eval::eval_state;
    use crate::examples;
    use crate::rhs::QId;

    #[test]
    fn flip_witnesses_differ_at_root() {
        let fix = examples::flip();
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let pairs = root_output_witnesses(&c).unwrap();
        assert_eq!(pairs.len(), 4);
        for (q, (w1, w2)) in pairs.iter().enumerate() {
            let qid = QId(q as u32);
            let t1 = eval_state(&c.dtop, qid, w1).expect("witness in domain");
            let t2 = eval_state(&c.dtop, qid, w2).expect("witness in domain");
            assert_ne!(
                t1.symbol(),
                t2.symbol(),
                "witnesses of q{q} must differ at the root"
            );
        }
    }

    #[test]
    fn witnesses_are_small() {
        let fix = examples::flip();
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let pairs = root_output_witnesses(&c).unwrap();
        for (w1, w2) in &pairs {
            assert!(w1.size() <= 5, "{w1}");
            assert!(w2.size() <= 7, "{w2}");
        }
    }

    #[test]
    fn library_witnesses_exist_for_all_states() {
        let fix = examples::library();
        let c = canonical_form(&fix.dtop, None).unwrap();
        let pairs = root_output_witnesses(&c).unwrap();
        assert_eq!(pairs.len(), c.dtop.state_count());
        for (q, (w1, w2)) in pairs.iter().enumerate() {
            let qid = QId(q as u32);
            let t1 = eval_state(&c.dtop, qid, w1).unwrap();
            let t2 = eval_state(&c.dtop, qid, w2).unwrap();
            assert_ne!(t1.symbol(), t2.symbol(), "state q{q}");
        }
    }

    #[test]
    fn witness_inputs_lie_in_state_domains() {
        let fix = examples::flip();
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let pairs = root_output_witnesses(&c).unwrap();
        for (q, (w1, w2)) in pairs.iter().enumerate() {
            let d = c.state_domain[q];
            assert!(c.domain.accepts_from(d, w1));
            assert!(c.domain.accepts_from(d, w2));
        }
    }
}
