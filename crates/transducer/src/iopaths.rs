//! io-paths of a canonical transducer (Definitions 10 and 29).
//!
//! An io-path `p = (u, v)` pairs an input path with an output path such
//! that `out_τ(u)[v] = ⊥` and `p⁻¹τ` is functional. For earliest dtops,
//! io-paths are exactly the pairs that *reach* states (Lemmas 6 and 11), so
//! they can be enumerated by walking the rules. The paper's learner
//! identifies every state of `min(τ)` with the `<`-least io-path reaching
//! it ([`state_io_paths`]) and every rule variable with a *trans-io-path*
//! ([`trans_io_paths`]).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use xtt_trees::{FPath, PathOrder, Step};

use crate::earliest::Canonical;
use crate::rhs::QId;

/// An io-path: a pair of an input F-path and an output F-path.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct IoPath {
    pub input: FPath,
    pub output: FPath,
}

impl std::fmt::Display for IoPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}; {})", self.input, self.output)
    }
}

/// A trans-io-path: the io-path of a rule variable occurrence
/// (Definition 29), remembering which state/symbol/position it came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransIoPath {
    /// The state whose rule this variable occurs in.
    pub state: QId,
    /// The input symbol of the rule.
    pub symbol: xtt_trees::Symbol,
    /// The labeled output path of the call inside the rhs (`v'`).
    pub rhs_path: FPath,
    /// The state the call targets.
    pub target: QId,
    /// The io-path `(u·(f,i), v·v')`.
    pub path: IoPath,
}

/// Sort key realizing the paper's order `<` on pairs of paths: compare
/// input paths (shorter first, then letters by alphabet declaration order,
/// then child index), then output paths.
fn sort_key(ord: &PathOrder<'_>, p: &IoPath, q: &IoPath) -> Ordering {
    ord.cmp_input(&p.input, &q.input)
        .then_with(|| ord.cmp_output(&p.output, &q.output))
}

struct HeapItem {
    path: IoPath,
    state: QId,
    /// Precomputed comparable key (see `key_of`).
    key: Vec<u64>,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the least first.
        other.key.cmp(&self.key)
    }
}

fn key_of(c: &Canonical, p: &IoPath) -> Vec<u64> {
    let mut key = Vec::with_capacity(2 * (p.input.len() + p.output.len()) + 2);
    let encode = |key: &mut Vec<u64>, alpha: &xtt_trees::RankedAlphabet, path: &FPath| {
        key.push(path.len() as u64);
        for s in path.steps() {
            key.push(alpha.symbol_index(s.symbol).expect("symbol in alphabet") as u64);
            key.push(u64::from(s.child));
        }
    };
    encode(&mut key, c.dtop.input(), &p.input);
    encode(&mut key, c.dtop.output(), &p.output);
    key
}

/// The `<`-least io-path reaching each state of a canonical transducer
/// (the paper's `io-path_q`). Index = state id.
///
/// Dijkstra-style search: starting from the axiom's call positions
/// `(ε, v')`, each popped io-path extends through every rule call. The
/// order is monotone under extension (paths only grow), so the first pop
/// per state is its least io-path.
pub fn state_io_paths(c: &Canonical) -> Vec<IoPath> {
    let n = c.dtop.state_count();
    let mut result: Vec<Option<IoPath>> = vec![None; n];
    let mut found = 0usize;
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();

    for (v, q, _) in c.dtop.axiom().calls_with_fpath() {
        let path = IoPath {
            input: FPath::empty(),
            output: v,
        };
        heap.push(HeapItem {
            key: key_of(c, &path),
            path,
            state: q,
        });
    }

    while let Some(item) = heap.pop() {
        if result[item.state.index()].is_some() {
            continue;
        }
        result[item.state.index()] = Some(item.path.clone());
        found += 1;
        if found == n {
            break;
        }
        let q = item.state;
        for f in c.dtop.enabled_symbols(q) {
            let rhs = c.dtop.rule(q, f).unwrap();
            for (v2, q2, child) in rhs.calls_with_fpath() {
                if result[q2.index()].is_some() {
                    continue;
                }
                let path = IoPath {
                    input: item.path.input.push(Step::new(f, child as u32)),
                    output: item.path.output.concat(&v2),
                };
                heap.push(HeapItem {
                    key: key_of(c, &path),
                    path,
                    state: q2,
                });
            }
        }
    }
    result
        .into_iter()
        .map(|p| p.expect("every canonical state is reachable"))
        .collect()
}

/// All trans-io-paths (Definition 29): for every state `q`, rule `(q,f)`,
/// and call at rhs position `v'`, the io-path `(u·(f,i), v·v')` where
/// `(u,v)` is `q`'s state-io-path.
pub fn trans_io_paths(c: &Canonical, state_paths: &[IoPath]) -> Vec<TransIoPath> {
    let mut out = Vec::new();
    for q in c.dtop.states() {
        let base = &state_paths[q.index()];
        for f in c.dtop.enabled_symbols(q) {
            let rhs = c.dtop.rule(q, f).unwrap();
            for (v2, q2, child) in rhs.calls_with_fpath() {
                out.push(TransIoPath {
                    state: q,
                    symbol: f,
                    rhs_path: v2.clone(),
                    target: q2,
                    path: IoPath {
                        input: base.input.push(Step::new(f, child as u32)),
                        output: base.output.concat(&v2),
                    },
                });
            }
        }
    }
    out
}

/// Sorts io-paths by the paper's order (useful for deterministic
/// processing and display).
pub fn sort_io_paths(c: &Canonical, paths: &mut [IoPath]) {
    let ord = PathOrder::new(c.dtop.input(), c.dtop.output());
    paths.sort_by(|a, b| sort_key(&ord, a, b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::canonical_form;
    use crate::examples;

    #[test]
    fn flip_state_io_paths_match_paper() {
        // Paper §1: the 4 τflip classes have shortest representatives
        // (ε,(root,1)), (ε,(root,2)), ((root,2),(root,1)), ((root,1),(root,2))
        let fix = examples::flip();
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let paths = state_io_paths(&c);
        let shown: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
        assert_eq!(shown.len(), 4);
        // canonical numbering: q0,q1 from the axiom; q2 = target of q0's
        // rule (reads (root,2)), q3 = target of q1's rule
        assert_eq!(shown[0], "(ε; (root,1))");
        assert_eq!(shown[1], "(ε; (root,2))");
        assert_eq!(shown[2], "((root,2); (root,1))");
        assert_eq!(shown[3], "((root,1); (root,2))");
    }

    #[test]
    fn trans_io_paths_extend_state_paths() {
        let fix = examples::flip();
        let c = canonical_form(&fix.dtop, Some(&fix.domain)).unwrap();
        let sp = state_io_paths(&c);
        let tp = trans_io_paths(&c, &sp);
        // q0's root rule calls q2 at rhs position ε with x2:
        let t = tp
            .iter()
            .find(|t| t.state == QId(0) && t.symbol.name() == "root")
            .unwrap();
        assert_eq!(t.target, QId(2));
        assert_eq!(t.path.to_string(), "((root,2); (root,1))");
        // q2's b-rule calls q2 at (b,2):
        let t2 = tp
            .iter()
            .find(|t| t.state == QId(2) && t.symbol.name() == "b")
            .unwrap();
        assert_eq!(t2.target, QId(2));
        assert_eq!(t2.path.to_string(), "((root,2)(b,2); (root,1)(b,2))");
    }

    #[test]
    fn library_has_fifteen_io_paths() {
        let fix = examples::library();
        let c = canonical_form(&fix.dtop, None).unwrap();
        let paths = state_io_paths(&c);
        assert_eq!(paths.len(), 15);
        let shown: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
        // the axiom's four holes (paper's qL1..qL4 io-paths)
        assert!(shown.contains(&"(ε; (L,1)(S,1)(T*,1))".to_owned()));
        assert!(shown.contains(&"(ε; (L,1)(S,1)(T*,2))".to_owned()));
        assert!(shown.contains(&"(ε; (L,2)(B*,1))".to_owned()));
        assert!(shown.contains(&"(ε; (L,2)(B*,2))".to_owned()));
        // the paper's qA io-path
        assert!(shown.contains(&"((L,1)(B*,1)(B,1); (L,2)(B*,1)(B,2)(A,1))".to_owned()));
        // the paper's qP io-path
        assert!(shown.contains(&"((L,1)(B*,1)(B,1)(A,1); (L,2)(B*,1)(B,2)(A,1))".to_owned()));
    }

    #[test]
    fn monadic_copier_single_state() {
        let fix = examples::monadic_to_binary();
        let c = canonical_form(&fix.dtop, None).unwrap();
        let paths = state_io_paths(&c);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].to_string(), "(ε; ε)");
    }
}
