//! Minimization of earliest uniform transducers, and canonical numbering.
//!
//! For an earliest uniform transducer, two states are semantically
//! equivalent iff they have the same domain language and, for every input
//! symbol, structurally identical right-hand sides with calls to
//! equivalent states at the same variables — Lemma 9 pins the shape of
//! rules to `out`, and Lemmas 22/23 pin the variable alignment, so
//! syntactic bisimulation coincides with equality of residual functions.
//! Minimization is therefore a Moore-style partition refinement seeded with
//! the domain-language classes (this seeding is exactly condition (C0) of
//! Definition 27).
//!
//! The result, after [`canonical_number`], is the paper's `min(τ)`
//! (Definition 24): *the* unique minimal earliest compatible dtop
//! (Theorem 28), with states numbered by a deterministic BFS so that two
//! equivalent transductions yield byte-identical transducers.

use std::collections::HashMap;

use xtt_automata::language_classes;
use xtt_trees::Symbol;

use crate::dtop::DtopBuilder;
use crate::earliest::{Canonical, NormError};
use crate::rhs::{QId, Rhs};

/// Merges equivalent states of an earliest uniform transducer.
pub fn minimize(c: &Canonical) -> Result<Canonical, NormError> {
    let n = c.dtop.state_count();
    if n == 0 {
        return Ok(c.clone());
    }
    let dclasses = language_classes(&c.domain);

    // Initial partition: by domain-language class (condition C0).
    let mut class: Vec<usize> = (0..n)
        .map(|q| dclasses[c.state_domain[q].index()])
        .collect();
    normalize_classes(&mut class);

    loop {
        let mut key_to_class: HashMap<(usize, Vec<(Symbol, Rhs)>), usize> = HashMap::new();
        let mut next = vec![0usize; n];
        for q in 0..n {
            let qid = QId(q as u32);
            let mut signature: Vec<(Symbol, Rhs)> = Vec::new();
            for f in c.dtop.enabled_symbols(qid) {
                let rhs = c.dtop.rule(qid, f).expect("enabled symbol has rule");
                signature.push((f, rhs.map_states(&mut |q2| QId(class[q2.index()] as u32))));
            }
            let key = (class[q], signature);
            let fresh = key_to_class.len();
            next[q] = *key_to_class.entry(key).or_insert(fresh);
        }
        if next == class {
            break;
        }
        class = next;
    }

    // Representative = least state of each class; new ids in order of
    // class first occurrence.
    let mut rep_of_class: HashMap<usize, QId> = HashMap::new();
    let mut new_id: HashMap<usize, QId> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    for (q, &cls) in class.iter().enumerate() {
        rep_of_class.entry(cls).or_insert(QId(q as u32));
        new_id.entry(cls).or_insert_with(|| {
            order.push(cls);
            QId((order.len() - 1) as u32)
        });
    }

    let mut rename = |q: QId| new_id[&class[q.index()]];
    let mut builder = DtopBuilder::new(c.dtop.input().clone(), c.dtop.output().clone());
    let mut state_domain = Vec::with_capacity(order.len());
    for &cls in &order {
        let rep = rep_of_class[&cls];
        builder.add_state(c.dtop.state_name(rep).to_owned());
        state_domain.push(c.state_domain[rep.index()]);
    }
    builder.set_axiom(c.dtop.axiom().map_states(&mut rename));
    for &cls in &order {
        let rep = rep_of_class[&cls];
        for f in c.dtop.enabled_symbols(rep) {
            let rhs = c.dtop.rule(rep, f).unwrap().map_states(&mut rename);
            builder
                .add_rule(new_id[&cls], f, rhs)
                .map_err(|e| NormError::Internal(e.to_string()))?;
        }
    }
    Ok(Canonical {
        dtop: builder
            .build()
            .map_err(|e| NormError::Internal(e.to_string()))?,
        domain: c.domain.clone(),
        state_domain,
    })
}

fn normalize_classes(class: &mut [usize]) {
    let mut seen: HashMap<usize, usize> = HashMap::new();
    for v in class.iter_mut() {
        let fresh = seen.len();
        *v = *seen.entry(*v).or_insert(fresh);
    }
}

/// Renumbers states by a deterministic BFS from the axiom (axiom calls in
/// pre-order, then rules in symbol-declaration order, their calls in
/// pre-order) and names them `q0, q1, …`. Unreachable states are dropped.
///
/// Two isomorphic transducers become byte-identical under this numbering,
/// which is what makes canonical-form comparison a sound equivalence check.
pub fn canonical_number(c: &Canonical) -> Result<Canonical, NormError> {
    let mut new_of_old: HashMap<QId, QId> = HashMap::new();
    let mut bfs: Vec<QId> = Vec::new();
    let visit = |q: QId, new_of_old: &mut HashMap<QId, QId>, bfs: &mut Vec<QId>| {
        if let std::collections::hash_map::Entry::Vacant(slot) = new_of_old.entry(q) {
            slot.insert(QId(bfs.len() as u32));
            bfs.push(q);
        }
    };
    for (_, q, _) in c.dtop.axiom().calls() {
        visit(q, &mut new_of_old, &mut bfs);
    }
    let mut i = 0;
    while i < bfs.len() {
        let q = bfs[i];
        i += 1;
        for f in c.dtop.enabled_symbols(q) {
            for (_, q2, _) in c.dtop.rule(q, f).unwrap().calls() {
                visit(q2, &mut new_of_old, &mut bfs);
            }
        }
    }

    let mut builder = DtopBuilder::new(c.dtop.input().clone(), c.dtop.output().clone());
    let mut state_domain = Vec::with_capacity(bfs.len());
    for (new_idx, &old) in bfs.iter().enumerate() {
        builder.add_state(format!("q{new_idx}"));
        state_domain.push(c.state_domain[old.index()]);
    }
    let mut rename = |q: QId| new_of_old[&q];
    builder.set_axiom(c.dtop.axiom().map_states(&mut rename));
    for &old in &bfs {
        for f in c.dtop.enabled_symbols(old) {
            let rhs = c.dtop.rule(old, f).unwrap().map_states(&mut rename);
            builder
                .add_rule(new_of_old[&old], f, rhs)
                .map_err(|e| NormError::Internal(e.to_string()))?;
        }
    }
    Ok(Canonical {
        dtop: builder
            .build()
            .map_err(|e| NormError::Internal(e.to_string()))?,
        domain: c.domain.clone(),
        state_domain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earliest::to_earliest;
    use crate::eval::eval;
    use crate::examples;
    use xtt_automata::enumerate_language;

    #[test]
    fn flip_is_already_minimal() {
        let fix = examples::flip();
        let canon = to_earliest(&fix.dtop, Some(&fix.domain)).unwrap();
        let min = minimize(&canon).unwrap();
        assert_eq!(min.dtop.state_count(), 4);
        assert_eq!(min.dtop.rule_count(), 6);
    }

    #[test]
    fn duplicate_states_are_merged() {
        // two copies of the same list-copier state must merge
        let alpha = xtt_trees::RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("#", 0)]);
        let mut b = crate::dtop::DtopBuilder::new(alpha.clone(), alpha);
        for s in ["l", "r", "cl", "cr"] {
            b.add_state(s);
        }
        b.set_axiom_str("root(<l,x0>,<r,x0>)").unwrap();
        b.add_rule_str("l", "root", "<cl,x1>").unwrap();
        b.add_rule_str("r", "root", "<cr,x2>").unwrap();
        for c in ["cl", "cr"] {
            b.add_rule_str(c, "a", &format!("a(#,<{c},x2>)")).unwrap();
            b.add_rule_str(c, "#", "#").unwrap();
        }
        let m = b.build().unwrap();
        // domain: root of two a-lists — both children same language
        let mut d = xtt_automata::DttaBuilder::new(m.input().clone());
        let p0 = d.add_state("start");
        let pl = d.add_state("alist");
        let nil = d.add_state("nil");
        d.add_transition(p0, xtt_trees::Symbol::new("root"), vec![pl, pl])
            .unwrap();
        d.add_transition(pl, xtt_trees::Symbol::new("a"), vec![nil, pl])
            .unwrap();
        d.add_transition(pl, xtt_trees::Symbol::new("#"), vec![])
            .unwrap();
        d.add_transition(nil, xtt_trees::Symbol::new("#"), vec![])
            .unwrap();
        let domain = d.build().unwrap();

        let canon = to_earliest(&m, Some(&domain)).unwrap();
        let min = minimize(&canon).unwrap();
        // cl/cr merge; l/r do not (they pick different children).
        assert_eq!(min.dtop.state_count(), 3);
        // behaviour preserved
        for t in enumerate_language(&domain, domain.initial(), 50, 15) {
            assert_eq!(eval(&m, &t), eval(&min.dtop, &t));
        }
    }

    #[test]
    fn different_domains_not_merged() {
        // Example 6 M1: q0 (reads f-nodes) and q1 (reads a/b) both realize
        // partial identities, but (C0) keeps them apart; minimization of
        // the already-minimal M1 must stay at 2 states.
        let fix = examples::example6_m1();
        let canon = to_earliest(&fix.dtop, Some(&fix.domain)).unwrap();
        let min = minimize(&canon).unwrap();
        assert_eq!(min.dtop.state_count(), 2);
    }

    #[test]
    fn canonical_numbering_is_bfs() {
        let fix = examples::flip();
        let canon = to_earliest(&fix.dtop, Some(&fix.domain)).unwrap();
        let numbered = canonical_number(&minimize(&canon).unwrap()).unwrap();
        assert_eq!(numbered.dtop.state_name(QId(0)), "q0");
        let ax = numbered.dtop.show_rhs(numbered.dtop.axiom(), true);
        assert_eq!(ax, "root(<q0,x0>,<q1,x0>)");
    }

    #[test]
    fn canonical_number_drops_unreachable() {
        let alpha = xtt_trees::RankedAlphabet::from_pairs([("a", 0)]);
        let mut b = crate::dtop::DtopBuilder::new(alpha.clone(), alpha);
        b.add_state("used");
        b.add_state("orphan");
        b.set_axiom_str("<used,x0>").unwrap();
        b.add_rule_str("used", "a", "a").unwrap();
        b.add_rule_str("orphan", "a", "a").unwrap();
        let m = b.build().unwrap();
        let canon = Canonical {
            domain: crate::domain::domain_dtta(&m, None),
            state_domain: vec![xtt_automata::StateId(0), xtt_automata::StateId(0)],
            dtop: m,
        };
        let numbered = canonical_number(&canon).unwrap();
        assert_eq!(numbered.dtop.state_count(), 1);
    }
}
