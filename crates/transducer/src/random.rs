//! Random generation of total dtops — fuzzing fuel for the
//! normal-form/learning pipeline.
//!
//! A *total* dtop (a rule for every `(state, symbol)` pair) has the
//! universal domain, so no inspection automaton is needed and every
//! generated machine can be pushed through `canonical_form` →
//! `characteristic_sample` → `rpni_dtop` → `same_canonical`. Random
//! machines freely copy, delete, and permute variables, hitting rule
//! shapes no hand-written fixture covers.

use rand::Rng;

use xtt_trees::RankedAlphabet;

use crate::dtop::{Dtop, DtopBuilder};
use crate::rhs::{QId, Rhs};

/// Tuning for [`random_total_dtop`].
#[derive(Debug, Clone)]
pub struct RandomDtopConfig {
    pub n_states: usize,
    /// Maximum depth of output structure in a right-hand side.
    pub max_rhs_depth: usize,
    /// Probability (0..100) of emitting a state call where one is allowed.
    pub call_percent: u32,
}

impl Default for RandomDtopConfig {
    fn default() -> Self {
        RandomDtopConfig {
            n_states: 3,
            max_rhs_depth: 3,
            call_percent: 45,
        }
    }
}

/// Generates a total dtop: every state has a rule for every input symbol,
/// and the axiom calls a random subset of states on `x0`.
///
/// Panics if the output alphabet has no constant (no ground rhs exists).
pub fn random_total_dtop<R: Rng + ?Sized>(
    rng: &mut R,
    input: &RankedAlphabet,
    output: &RankedAlphabet,
    config: &RandomDtopConfig,
) -> Dtop {
    assert!(
        output.constants().next().is_some(),
        "output alphabet needs a constant"
    );
    let mut b = DtopBuilder::new(input.clone(), output.clone());
    for i in 0..config.n_states {
        b.add_state(format!("r{i}"));
    }
    let axiom = random_rhs(
        rng,
        output,
        config,
        1,
        config.max_rhs_depth,
        config.n_states,
    );
    b.set_axiom(axiom);
    for q in 0..config.n_states {
        for &f in input.symbols() {
            let arity = input.rank(f).unwrap();
            let rhs = random_rhs(
                rng,
                output,
                config,
                arity,
                config.max_rhs_depth,
                config.n_states,
            );
            b.add_rule(QId(q as u32), f, rhs).expect("valid rule");
        }
    }
    b.build().expect("random dtop is well-formed")
}

/// Generates a *partial* dtop: like [`random_total_dtop`] but each
/// `(state, symbol)` rule is only present with probability
/// `rule_percent`/100, so random inputs routinely fall outside the domain.
/// This is the fuzzing fuel for differential tests that must also cover
/// the `None` (undefined) branch of evaluation.
pub fn random_partial_dtop<R: Rng + ?Sized>(
    rng: &mut R,
    input: &RankedAlphabet,
    output: &RankedAlphabet,
    config: &RandomDtopConfig,
    rule_percent: u32,
) -> Dtop {
    assert!(
        output.constants().next().is_some(),
        "output alphabet needs a constant"
    );
    let mut b = DtopBuilder::new(input.clone(), output.clone());
    for i in 0..config.n_states {
        b.add_state(format!("r{i}"));
    }
    let axiom = random_rhs(
        rng,
        output,
        config,
        1,
        config.max_rhs_depth,
        config.n_states,
    );
    b.set_axiom(axiom);
    for q in 0..config.n_states {
        for &f in input.symbols() {
            if rng.gen_range(0..100) >= rule_percent {
                continue;
            }
            let arity = input.rank(f).unwrap();
            let rhs = random_rhs(
                rng,
                output,
                config,
                arity,
                config.max_rhs_depth,
                config.n_states,
            );
            b.add_rule(QId(q as u32), f, rhs).expect("valid rule");
        }
    }
    b.build().expect("random dtop is well-formed")
}

fn random_rhs<R: Rng + ?Sized>(
    rng: &mut R,
    output: &RankedAlphabet,
    config: &RandomDtopConfig,
    arity: usize,
    depth: usize,
    n_states: usize,
) -> Rhs {
    let can_call = arity > 0 && n_states > 0;
    if can_call && rng.gen_range(0..100) < config.call_percent {
        return Rhs::Call {
            state: QId(rng.gen_range(0..n_states) as u32),
            child: rng.gen_range(0..arity),
        };
    }
    // pick an output symbol; at the depth limit, a constant
    let symbol = if depth == 0 {
        let constants: Vec<_> = output.constants().collect();
        constants[rng.gen_range(0..constants.len())]
    } else {
        let all = output.symbols();
        all[rng.gen_range(0..all.len())]
    };
    let rank = output.rank(symbol).unwrap();
    let children = (0..rank)
        .map(|_| {
            random_rhs(
                rng,
                output,
                config,
                arity,
                depth.saturating_sub(1),
                n_states,
            )
        })
        .collect();
    Rhs::Out(symbol, children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xtt_trees::gen::enumerate_trees;

    fn alphabets() -> (RankedAlphabet, RankedAlphabet) {
        (
            RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("a", 0), ("b", 0)]),
            RankedAlphabet::from_pairs([("h", 2), ("u", 1), ("c", 0), ("d", 0)]),
        )
    }

    #[test]
    fn random_dtops_are_total() {
        let (input, output) = alphabets();
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = random_total_dtop(&mut rng, &input, &output, &RandomDtopConfig::default());
            for t in enumerate_trees(&input, 40, 7) {
                assert!(eval(&m, &t).is_some(), "seed {seed}: undefined on {t}");
            }
        }
    }

    #[test]
    fn partial_dtops_hit_both_branches() {
        // Across seeds, partial machines must produce both defined and
        // undefined evaluations — the whole point of generating them.
        let (input, output) = alphabets();
        let (mut some, mut none) = (0usize, 0usize);
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m =
                random_partial_dtop(&mut rng, &input, &output, &RandomDtopConfig::default(), 60);
            for t in enumerate_trees(&input, 30, 6) {
                match eval(&m, &t) {
                    Some(_) => some += 1,
                    None => none += 1,
                }
            }
        }
        assert!(some > 0, "no defined evaluations at all");
        assert!(none > 0, "no undefined evaluations at all");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (input, output) = alphabets();
        let gen = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            random_total_dtop(&mut rng, &input, &output, &RandomDtopConfig::default())
        };
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a.axiom(), b.axiom());
        assert_eq!(a.rules(), b.rules());
    }
}
