//! Right-hand sides of dtop rules: trees over output symbols with state
//! calls `⟨q, x_i⟩` at leaves.
//!
//! A rule `q(f(x₁,…,x_k)) → t` has `t ∈ T_G(Q × X_k)` (Definition 1). A
//! variable may occur several times (*copying*) or not at all (*deletion*),
//! and variables may be permuted — the three abilities that distinguish
//! dtops from the relabeling transducers of earlier learning work.
//!
//! Variables are stored 0-based (`Call { child: 0 }` is the paper's `x₁`);
//! in an axiom, calls refer to the whole input tree (`x₀`) and `child` is 0
//! by convention.

use std::fmt;

use serde::{Deserialize, Serialize};
use xtt_trees::{FPath, NodePath, RankedAlphabet, Step, Symbol};

/// A state of a [`crate::dtop::Dtop`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QId(pub u32);

impl QId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A right-hand-side tree: output symbols with `⟨state, x_child⟩` leaves.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rhs {
    /// An output node `g(t₁,…,t_m)`.
    Out(Symbol, Vec<Rhs>),
    /// A state call `⟨q, x_child⟩` (0-based child).
    Call { state: QId, child: usize },
}

impl Rhs {
    pub fn out(name: &str, children: Vec<Rhs>) -> Rhs {
        Rhs::Out(Symbol::new(name), children)
    }

    pub fn leaf(name: &str) -> Rhs {
        Rhs::Out(Symbol::new(name), Vec::new())
    }

    pub fn call(state: QId, child: usize) -> Rhs {
        Rhs::Call { state, child }
    }

    /// All state calls, in pre-order, with the output node-path where each
    /// occurs.
    pub fn calls(&self) -> Vec<(NodePath, QId, usize)> {
        let mut out = Vec::new();
        self.collect_calls(&NodePath::root(), &mut out);
        out
    }

    fn collect_calls(&self, at: &NodePath, out: &mut Vec<(NodePath, QId, usize)>) {
        match self {
            Rhs::Call { state, child } => out.push((at.clone(), *state, *child)),
            Rhs::Out(_, children) => {
                for (i, c) in children.iter().enumerate() {
                    c.collect_calls(&at.child(i as u32), out);
                }
            }
        }
    }

    /// All state calls with the *labeled* output path (F-path over `G`) to
    /// each; needed because io-paths are labeled paths.
    pub fn calls_with_fpath(&self) -> Vec<(FPath, QId, usize)> {
        let mut out = Vec::new();
        self.collect_calls_fpath(&FPath::empty(), &mut out);
        out
    }

    fn collect_calls_fpath(&self, at: &FPath, out: &mut Vec<(FPath, QId, usize)>) {
        match self {
            Rhs::Call { state, child } => out.push((at.clone(), *state, *child)),
            Rhs::Out(sym, children) => {
                for (i, c) in children.iter().enumerate() {
                    c.collect_calls_fpath(&at.push(Step::new(*sym, i as u32)), out);
                }
            }
        }
    }

    /// The set of distinct states called.
    pub fn called_states(&self) -> Vec<QId> {
        let mut v: Vec<QId> = self.calls().into_iter().map(|(_, q, _)| q).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Number of nodes (output symbols + calls).
    pub fn size(&self) -> usize {
        match self {
            Rhs::Call { .. } => 1,
            Rhs::Out(_, children) => 1 + children.iter().map(Rhs::size).sum::<usize>(),
        }
    }

    /// Applies a state renaming.
    pub fn map_states(&self, f: &mut impl FnMut(QId) -> QId) -> Rhs {
        match self {
            Rhs::Call { state, child } => Rhs::Call {
                state: f(*state),
                child: *child,
            },
            Rhs::Out(sym, children) => {
                Rhs::Out(*sym, children.iter().map(|c| c.map_states(f)).collect())
            }
        }
    }

    /// Checks output ranks and that every variable index is `< arity`.
    pub fn validate(
        &self,
        output: &RankedAlphabet,
        arity: usize,
        n_states: usize,
    ) -> Result<(), RhsError> {
        match self {
            Rhs::Call { state, child } => {
                if state.index() >= n_states {
                    return Err(RhsError::UnknownState(*state));
                }
                if *child >= arity.max(1) {
                    // arity.max(1): axioms have arity 0 conceptually but use x0
                    return Err(RhsError::VariableOutOfRange {
                        child: *child,
                        arity,
                    });
                }
                Ok(())
            }
            Rhs::Out(sym, children) => {
                let rank = output.rank(*sym).ok_or(RhsError::UnknownSymbol(*sym))?;
                if rank != children.len() {
                    return Err(RhsError::RankMismatch {
                        symbol: *sym,
                        expected: rank,
                        got: children.len(),
                    });
                }
                for c in children {
                    c.validate(output, arity, n_states)?;
                }
                Ok(())
            }
        }
    }
}

/// Validation errors for right-hand sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RhsError {
    UnknownSymbol(Symbol),
    UnknownState(QId),
    RankMismatch {
        symbol: Symbol,
        expected: usize,
        got: usize,
    },
    VariableOutOfRange {
        child: usize,
        arity: usize,
    },
}

impl fmt::Display for RhsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RhsError::UnknownSymbol(s) => write!(f, "output symbol {s} not in alphabet"),
            RhsError::UnknownState(q) => write!(f, "call to unknown state {q}"),
            RhsError::RankMismatch {
                symbol,
                expected,
                got,
            } => write!(
                f,
                "output symbol {symbol} has rank {expected}, got {got} children"
            ),
            RhsError::VariableOutOfRange { child, arity } => {
                write!(f, "variable x{} out of range for arity {arity}", child + 1)
            }
        }
    }
}

impl std::error::Error for RhsError {}

/// Renders an rhs with a state-name lookup. `axiom = true` prints `x0` for
/// every variable (paper convention), otherwise 1-based `x{i+1}`.
pub fn display_rhs(rhs: &Rhs, state_name: &dyn Fn(QId) -> String, axiom: bool) -> String {
    let mut s = String::new();
    write_rhs(rhs, state_name, axiom, &mut s);
    s
}

fn write_rhs(rhs: &Rhs, state_name: &dyn Fn(QId) -> String, axiom: bool, out: &mut String) {
    match rhs {
        Rhs::Call { state, child } => {
            out.push('<');
            out.push_str(&state_name(*state));
            if axiom {
                out.push_str(",x0>");
            } else {
                out.push_str(&format!(",x{}>", child + 1));
            }
        }
        Rhs::Out(sym, children) => {
            out.push_str(&sym.to_string());
            if !children.is_empty() {
                out.push('(');
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_rhs(c, state_name, axiom, out);
                }
                out.push(')');
            }
        }
    }
}

/// Parses an rhs in the `Display` syntax, e.g. `b(#,<q3,x2>)`. State names
/// are resolved through `resolve`. In axiom context (`axiom = true`) only
/// `x0` is allowed; otherwise variables are 1-based `x1..xk`.
pub fn parse_rhs(
    input: &str,
    resolve: &dyn Fn(&str) -> Option<QId>,
    axiom: bool,
) -> Result<Rhs, String> {
    let mut p = RhsParser {
        input: input.as_bytes(),
        pos: 0,
        axiom,
    };
    let rhs = p.parse(resolve)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(rhs)
}

struct RhsParser<'a> {
    input: &'a [u8],
    pos: usize,
    axiom: bool,
}

impl<'a> RhsParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn parse(&mut self, resolve: &dyn Fn(&str) -> Option<QId>) -> Result<Rhs, String> {
        self.skip_ws();
        if self.input.get(self.pos) == Some(&b'<') {
            return self.parse_call(resolve);
        }
        // symbol, possibly quoted
        let symbol = self.parse_symbol()?;
        self.skip_ws();
        if self.input.get(self.pos) != Some(&b'(') {
            return Ok(Rhs::Out(symbol, Vec::new()));
        }
        self.pos += 1;
        let mut children = Vec::new();
        self.skip_ws();
        if self.input.get(self.pos) == Some(&b')') {
            self.pos += 1;
            return Ok(Rhs::Out(symbol, children));
        }
        loop {
            children.push(self.parse(resolve)?);
            self.skip_ws();
            match self.input.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or ')' at byte {}", self.pos)),
            }
        }
        Ok(Rhs::Out(symbol, children))
    }

    fn parse_symbol(&mut self) -> Result<Symbol, String> {
        self.skip_ws();
        if self.input.get(self.pos) == Some(&b'"') {
            self.pos += 1;
            let mut name = String::new();
            loop {
                match self.input.get(self.pos) {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(Symbol::new(&name));
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.input.get(self.pos) {
                            Some(&c @ (b'"' | b'\\')) => {
                                name.push(c as char);
                                self.pos += 1;
                            }
                            _ => return Err("bad escape in quoted symbol".into()),
                        }
                    }
                    Some(&c) => {
                        name.push(c as char);
                        self.pos += 1;
                    }
                    None => return Err("unterminated quoted symbol".into()),
                }
            }
        }
        let start = self.pos;
        while let Some(&c) = self.input.get(self.pos) {
            if matches!(c, b'(' | b')' | b',' | b'<' | b'>' | b'"') || c.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected symbol at byte {start}"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos]).map_err(|e| e.to_string())?;
        Ok(Symbol::new(name))
    }

    fn parse_call(&mut self, resolve: &dyn Fn(&str) -> Option<QId>) -> Result<Rhs, String> {
        self.pos += 1; // consume '<'
        let start = self.pos;
        while let Some(&c) = self.input.get(self.pos) {
            if c == b',' {
                break;
            }
            self.pos += 1;
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|e| e.to_string())?
            .trim()
            .to_owned();
        let state = resolve(&name).ok_or_else(|| format!("unknown state '{name}'"))?;
        if self.input.get(self.pos) != Some(&b',') {
            return Err("expected ',' in state call".into());
        }
        self.pos += 1;
        self.skip_ws();
        if self.input.get(self.pos) != Some(&b'x') {
            return Err("expected variable x<N> in state call".into());
        }
        self.pos += 1;
        let num_start = self.pos;
        while self.input.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let n: usize = std::str::from_utf8(&self.input[num_start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| "bad variable index".to_string())?;
        self.skip_ws();
        if self.input.get(self.pos) != Some(&b'>') {
            return Err("expected '>' closing state call".into());
        }
        self.pos += 1;
        let child = if self.axiom {
            if n != 0 {
                return Err("axiom variables must be x0".into());
            }
            0
        } else {
            if n == 0 {
                return Err("rule variables are 1-based (x1..xk)".into());
            }
            n - 1
        };
        Ok(Rhs::Call { state, child })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve(name: &str) -> Option<QId> {
        name.strip_prefix('q').and_then(|n| n.parse().ok()).map(QId)
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let rhs = parse_rhs("b(#,<q3,x2>)", &resolve, false).unwrap();
        assert_eq!(
            rhs,
            Rhs::out("b", vec![Rhs::leaf("#"), Rhs::call(QId(3), 1)])
        );
        let shown = display_rhs(&rhs, &|q| format!("q{}", q.0), false);
        assert_eq!(shown, "b(#,<q3,x2>)");
    }

    #[test]
    fn axiom_variables_are_x0() {
        let ax = parse_rhs("root(<q1,x0>,<q2,x0>)", &resolve, true).unwrap();
        assert_eq!(ax.calls().len(), 2);
        assert!(parse_rhs("root(<q1,x1>,#)", &resolve, true).is_err());
        assert!(parse_rhs("<q1,x0>", &resolve, false).is_err());
    }

    #[test]
    fn calls_report_positions() {
        let rhs = parse_rhs("f(<q1,x1>,g(<q2,x2>))", &resolve, false).unwrap();
        let calls = rhs.calls();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].0, NodePath::from_indices(&[0]));
        assert_eq!(calls[0].1, QId(1));
        assert_eq!(calls[0].2, 0);
        assert_eq!(calls[1].0, NodePath::from_indices(&[1, 0]));
        assert_eq!(calls[1].2, 1);
        let fcalls = rhs.calls_with_fpath();
        assert_eq!(fcalls[1].0, FPath::parse_pairs(&[("f", 2), ("g", 1)]));
    }

    #[test]
    fn validation_catches_errors() {
        let output = RankedAlphabet::from_pairs([("f", 2), ("a", 0)]);
        let ok = Rhs::out("f", vec![Rhs::leaf("a"), Rhs::call(QId(0), 1)]);
        assert!(ok.validate(&output, 2, 1).is_ok());
        let bad_rank = Rhs::out("f", vec![Rhs::leaf("a")]);
        assert!(matches!(
            bad_rank.validate(&output, 2, 1),
            Err(RhsError::RankMismatch { .. })
        ));
        let bad_var = Rhs::call(QId(0), 5);
        assert!(matches!(
            bad_var.validate(&output, 2, 1),
            Err(RhsError::VariableOutOfRange { .. })
        ));
        let bad_state = Rhs::call(QId(7), 0);
        assert!(matches!(
            bad_state.validate(&output, 2, 1),
            Err(RhsError::UnknownState(_))
        ));
        let bad_sym = Rhs::leaf("zzz");
        assert!(matches!(
            bad_sym.validate(&output, 2, 1),
            Err(RhsError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn copying_and_deletion_shapes() {
        // copying: x1 twice; deletion: x2 unused
        let rhs = parse_rhs("f(<q0,x1>,<q0,x1>)", &resolve, false).unwrap();
        assert_eq!(rhs.calls().len(), 2);
        assert_eq!(rhs.called_states(), vec![QId(0)]);
        assert_eq!(rhs.size(), 3);
    }

    #[test]
    fn map_states_renames() {
        let rhs = parse_rhs("f(<q1,x1>,<q2,x2>)", &resolve, false).unwrap();
        let renamed = rhs.map_states(&mut |q| QId(q.0 + 10));
        assert_eq!(renamed.called_states(), vec![QId(11), QId(12)]);
    }

    #[test]
    fn quoted_symbols_in_rhs() {
        let rhs = parse_rhs(r#""(b*,a*)"(<q1,x1>,<q2,x1>)"#, &resolve, false).unwrap();
        match &rhs {
            Rhs::Out(sym, children) => {
                assert_eq!(sym.name(), "(b*,a*)");
                assert_eq!(children.len(), 2);
            }
            _ => panic!("expected output node"),
        }
    }
}
