//! Composition of dtops.
//!
//! Total deterministic top-down tree transducers are closed under
//! composition ([Engelfriet 1975] — reference [8] of the paper, also the
//! basis of the paper's remark that dtops are "a large and well-studied
//! class"). The construction is a product: a state of `M₂ ∘ M₁` is a pair
//! `(q₂, q₁)`; its rule on `f` is obtained by *symbolically running* `M₂`
//! from `q₂` on the right-hand side `rhs₁(q₁, f)`, where hitting a call
//! `⟨q₁', x_i⟩` of `M₁` suspends `M₂` in its current state `q₂'` and emits
//! the pair call `⟨(q₂', q₁'), x_i⟩`.
//!
//! For *partial* transducers the construction stays sound but may lose
//! domain: when `M₂` is undefined on some rigid output of `M₁` the pair
//! rule is dropped, so `dom(compose(M₂,M₁)) ⊆ dom(⟦M₂⟧ ∘ ⟦M₁⟧)`; for the
//! total case (the classical theorem) the domains coincide. Composing the
//! result with [`crate::equiv::canonical_form`] yields the minimal
//! transducer of the composed transduction.

use std::collections::HashMap;

use crate::dtop::{Dtop, DtopBuilder, DtopError};
use crate::rhs::{QId, Rhs};

/// Builds a dtop realizing `⟦m2⟧ ∘ ⟦m1⟧` (first `m1`, then `m2`).
///
/// `m2`'s input alphabet must contain `m1`'s output alphabet. Fails only
/// on alphabet inconsistencies; partiality of either machine shrinks the
/// composed domain as described in the module docs.
pub fn compose(m2: &Dtop, m1: &Dtop) -> Result<Dtop, DtopError> {
    let mut composer = Composer {
        m1,
        m2,
        builder: DtopBuilder::new(m1.input().clone(), m2.output().clone()),
        pairs: HashMap::new(),
        order: Vec::new(),
        cur_q1: None,
    };
    // axiom: run m2's axiom; each ⟨q2,x0⟩ runs q2 on m1's axiom.
    let m2_axiom = m2.axiom().clone();
    let axiom = composer.expand_m2_rhs(&m2_axiom, &mut |this, q2| {
        let m1_axiom = m1.axiom().clone();
        this.run_state_on_rhs(q2, &m1_axiom)
    })?;
    let axiom = match axiom {
        Some(ax) => ax,
        // m2 is undefined on m1's rigid axiom output: empty transduction,
        // representable as an empty-domain machine via a never-matching
        // state... simplest honest signal is an error-free empty dtop: we
        // keep a single state with no rules.
        None => {
            let mut b = DtopBuilder::new(m1.input().clone(), m2.output().clone());
            let dead = b.add_state("dead");
            b.set_axiom(Rhs::Call {
                state: dead,
                child: 0,
            });
            return b.build();
        }
    };
    composer.builder.set_axiom(axiom);

    // process pair states breadth-first
    let mut i = 0;
    while i < composer.order.len() {
        let (q2, q1) = composer.order[i];
        let id = composer.pairs[&(q2, q1)];
        i += 1;
        composer.cur_q1 = Some(q1);
        for f in m1.enabled_symbols(q1) {
            let rhs1 = m1.rule(q1, f).unwrap().clone();
            if let Some(rhs) = composer.run_state_on_rhs(q2, &rhs1)? {
                composer.builder.add_rule(id, f, rhs)?;
            }
            // None: m2 undefined on this branch — rule dropped (domain
            // shrinks for partial m2).
        }
    }
    composer.builder.build()
}

/// Callback expanding one `⟨q2,x0⟩` call while walking an `m2` rhs.
type OnCall<'a, 'b> = dyn FnMut(&mut Composer<'a>, QId) -> Result<Option<Rhs>, DtopError> + 'b;

struct Composer<'a> {
    m1: &'a Dtop,
    m2: &'a Dtop,
    builder: DtopBuilder,
    pairs: HashMap<(QId, QId), QId>,
    order: Vec<(QId, QId)>,
    /// The `m1` state whose rules are currently being expanded; `None`
    /// while expanding the axiom. Only used to position error reports.
    cur_q1: Option<QId>,
}

impl<'a> Composer<'a> {
    fn pair(&mut self, q2: QId, q1: QId) -> QId {
        if let Some(&id) = self.pairs.get(&(q2, q1)) {
            return id;
        }
        let name = format!("{}∘{}", self.m2.state_name(q2), self.m1.state_name(q1));
        let id = self.builder.add_state(name);
        self.pairs.insert((q2, q1), id);
        self.order.push((q2, q1));
        id
    }

    /// Runs `m2` state `q2` on an rhs of `m1` (a tree over `m1`-output
    /// symbols with `⟨q1', x_i⟩` leaves). Returns `None` when `m2` has no
    /// rule for a rigid symbol encountered.
    fn run_state_on_rhs(&mut self, q2: QId, rhs1: &Rhs) -> Result<Option<Rhs>, DtopError> {
        match rhs1 {
            Rhs::Call { state: q1p, child } => {
                let id = self.pair(q2, *q1p);
                Ok(Some(Rhs::Call {
                    state: id,
                    child: *child,
                }))
            }
            Rhs::Out(sym, kids) => {
                let Some(rule2) = self.m2.rule(q2, *sym) else {
                    if self.m2.input().rank(*sym).is_none() {
                        // `m1` emits a symbol `m2` cannot even name: that is
                        // an alphabet wiring bug, not partiality — report it
                        // with the offending pair instead of silently
                        // shrinking the domain to nothing.
                        return Err(DtopError::Compose {
                            q2: self.m2.state_name(q2).to_owned(),
                            q1: self
                                .cur_q1
                                .map(|q| self.m1.state_name(q).to_owned())
                                .unwrap_or_else(|| "axiom".to_owned()),
                            symbol: *sym,
                        });
                    }
                    return Ok(None);
                };
                let rule2 = rule2.clone();
                // expand m2's rule; its variable x_j refers to kids[j]
                let kids = kids.clone();
                self.expand_with_children(&rule2, &kids)
            }
        }
    }

    /// Expands an `m2` rhs whose variables refer to the given `m1`-rhs
    /// children.
    fn expand_with_children(
        &mut self,
        rhs2: &Rhs,
        children: &[Rhs],
    ) -> Result<Option<Rhs>, DtopError> {
        match rhs2 {
            Rhs::Call { state, child } => self.run_state_on_rhs(*state, &children[*child].clone()),
            Rhs::Out(sym, kids) => {
                let mut out = Vec::with_capacity(kids.len());
                for k in kids {
                    match self.expand_with_children(k, children)? {
                        Some(r) => out.push(r),
                        None => return Ok(None),
                    }
                }
                Ok(Some(Rhs::Out(*sym, out)))
            }
        }
    }

    /// Expands an `m2` rhs whose variables all refer to `x0` (axiom case);
    /// `on_call` produces the expansion of each ⟨q2,x0⟩.
    fn expand_m2_rhs(
        &mut self,
        rhs2: &Rhs,
        on_call: &mut OnCall<'a, '_>,
    ) -> Result<Option<Rhs>, DtopError> {
        match rhs2 {
            Rhs::Call { state, .. } => on_call(self, *state),
            Rhs::Out(sym, kids) => {
                let mut out = Vec::with_capacity(kids.len());
                for k in kids {
                    match self.expand_m2_rhs(k, on_call)? {
                        Some(r) => out.push(r),
                        None => return Ok(None),
                    }
                }
                Ok(Some(Rhs::Out(*sym, out)))
            }
        }
    }
}

/// The identity transducer over an alphabet (handy composition unit).
pub fn identity(alphabet: &xtt_trees::RankedAlphabet) -> Dtop {
    let mut b = DtopBuilder::new(alphabet.clone(), alphabet.clone());
    let q = b.add_state("id");
    b.set_axiom(Rhs::Call { state: q, child: 0 });
    for &f in alphabet.symbols() {
        let rank = alphabet.rank(f).unwrap();
        let kids = (0..rank)
            .map(|i| Rhs::Call { state: q, child: i })
            .collect();
        b.add_rule(q, f, Rhs::Out(f, kids)).unwrap();
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::examples;
    use crate::random::{random_total_dtop, RandomDtopConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use xtt_trees::{gen::enumerate_trees, RankedAlphabet};

    #[test]
    fn identity_is_a_unit() {
        let fix = examples::flip();
        let id_out = identity(fix.dtop.output());
        let composed = compose(&id_out, &fix.dtop).unwrap();
        for t in enumerate_trees(fix.dtop.input(), 100, 9) {
            assert_eq!(eval(&composed, &t), eval(&fix.dtop, &t), "on {t}");
        }
        let id_in = identity(fix.dtop.input());
        let composed2 = compose(&fix.dtop, &id_in).unwrap();
        for t in enumerate_trees(fix.dtop.input(), 100, 9) {
            assert_eq!(eval(&composed2, &t), eval(&fix.dtop, &t), "on {t}");
        }
    }

    #[test]
    fn doubling_then_relabeling() {
        // M1: monadic f^n(e) → full binary g-tree; M2: relabel g→h.
        let m1 = examples::monadic_to_binary().dtop;
        let g_alpha = RankedAlphabet::from_pairs([("g", 2), ("e", 0)]);
        let h_alpha = RankedAlphabet::from_pairs([("h", 2), ("e", 0)]);
        let mut b = DtopBuilder::new(g_alpha, h_alpha);
        b.add_state("r");
        b.set_axiom_str("<r,x0>").unwrap();
        b.add_rule_str("r", "g", "h(<r,x1>,<r,x2>)").unwrap();
        b.add_rule_str("r", "e", "e").unwrap();
        let m2 = b.build().unwrap();

        let composed = compose(&m2, &m1).unwrap();
        let input = xtt_trees::parse_tree("f(f(f(e)))").unwrap();
        let expected = eval(&m2, &eval(&m1, &input).unwrap()).unwrap();
        assert_eq!(eval(&composed, &input).unwrap(), expected);
        assert_eq!(expected.symbol().name(), "h");
    }

    #[test]
    fn random_total_compositions_agree_pointwise() {
        // The classical closure theorem, fuzz-checked: for random total
        // dtops, ⟦compose(M2,M1)⟧ = ⟦M2⟧ ∘ ⟦M1⟧ on enumerated inputs.
        let in_alpha = RankedAlphabet::from_pairs([("f", 2), ("a", 0)]);
        let mid_alpha = RankedAlphabet::from_pairs([("g", 2), ("u", 1), ("b", 0)]);
        let out_alpha = RankedAlphabet::from_pairs([("h", 1), ("c", 0), ("d", 0)]);
        let config = RandomDtopConfig {
            n_states: 3,
            max_rhs_depth: 2,
            call_percent: 50,
        };
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m1 = random_total_dtop(&mut rng, &in_alpha, &mid_alpha, &config);
            let m2 = random_total_dtop(&mut rng, &mid_alpha, &out_alpha, &config);
            let composed = compose(&m2, &m1).unwrap();
            for t in enumerate_trees(&in_alpha, 60, 7) {
                let direct = eval(&m1, &t).and_then(|mid| eval(&m2, &mid));
                assert_eq!(
                    eval(&composed, &t),
                    direct,
                    "seed {seed}: composition differs on {t}"
                );
            }
        }
    }

    #[test]
    fn out_of_alphabet_emission_names_the_offending_pair() {
        // m1 : f(x) → wrap(<q,x1>), a → leaf ... but `wrap`/`leaf` are not
        // in m2's input alphabet, so m1's range misses m2's domain for a
        // structural reason compose must report, not swallow.
        let in_alpha = RankedAlphabet::from_pairs([("f", 1), ("a", 0)]);
        let mid_alpha = RankedAlphabet::from_pairs([("wrap", 1), ("leaf", 0)]);
        let mut b1 = DtopBuilder::new(in_alpha, mid_alpha);
        b1.add_state("p");
        b1.set_axiom_str("<p,x0>").unwrap();
        b1.add_rule_str("p", "f", "wrap(<p,x1>)").unwrap();
        b1.add_rule_str("p", "a", "leaf").unwrap();
        let m1 = b1.build().unwrap();

        // m2 speaks a disjoint alphabet entirely.
        let other = RankedAlphabet::from_pairs([("g", 1), ("b", 0)]);
        let m2 = identity(&other);

        let err = compose(&m2, &m1).unwrap_err();
        match err {
            DtopError::Compose {
                ref q2,
                ref q1,
                symbol,
            } => {
                assert_eq!(q2, "id");
                assert_eq!(q1, "p");
                assert_eq!(symbol.name(), "wrap");
            }
            other => panic!("expected positioned Compose error, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("id\u{2218}p"), "unpositioned: {msg}");
        assert!(msg.contains("wrap"), "symbol missing: {msg}");
    }

    #[test]
    fn rigid_axiom_miss_yields_the_empty_transduction() {
        // A partial m2 with *in-alphabet* gaps whose domain misses m1's
        // whole range: compose succeeds (partiality is semantics, not an
        // error) and the result has an empty domain.
        let fix = examples::flip();
        let out = fix.dtop.output().clone();
        let mut b = DtopBuilder::new(out.clone(), out);
        b.add_state("q");
        b.set_axiom_str("<q,x0>").unwrap();
        // `q` only accepts `#`, but flip's outputs are always root(·,·).
        b.add_rule_str("q", "#", "#").unwrap();
        let m2 = b.build().unwrap();
        let composed = compose(&m2, &fix.dtop).unwrap();
        for t in enumerate_trees(fix.dtop.input(), 60, 7) {
            assert_eq!(eval(&composed, &t), None, "domain must be empty on {t}");
        }
        assert!(xtt_automata::is_empty(&crate::domain::domain_dtta(
            &composed, None
        )));
    }

    #[test]
    fn partial_m2_shrinks_domain_soundly() {
        // m2 only accepts outputs whose root is `a`; composition must be
        // undefined exactly where m1's output starts differently.
        let fix = examples::flip();
        let out = fix.dtop.output().clone();
        let mut b = DtopBuilder::new(out.clone(), out.clone());
        b.add_state("q");
        b.add_state("copy");
        b.set_axiom_str("<q,x0>").unwrap();
        // m2 copies root(·,·) but its `copy` state has no rule for `root`,
        // so m2 is partial on nested roots (and total elsewhere)
        b.add_rule_str("q", "root", "root(<copy,x1>,<copy,x2>)")
            .unwrap();
        for sym in ["a", "b"] {
            b.add_rule_str("copy", sym, &format!("{sym}(<copy,x1>,<copy,x2>)"))
                .unwrap();
        }
        b.add_rule_str("copy", "#", "#").unwrap();
        let m2 = b.build().unwrap();
        let composed = compose(&m2, &fix.dtop).unwrap();
        for t in enumerate_trees(fix.dtop.input(), 80, 9) {
            let direct = eval(&fix.dtop, &t).and_then(|mid| eval(&m2, &mid));
            assert_eq!(eval(&composed, &t), direct, "on {t}");
        }
    }
}
