//! Evaluation semantics of dtops.
//!
//! `⟦M⟧_q(f(s₁,…,s_k)) = rhs(q,f)[⟨q',x_i⟩ ← ⟦M⟧_{q'}(s_i)]` and
//! `⟦M⟧(s) = ax[⟨q,x₀⟩ ← ⟦M⟧_q(s)]` (Definition 1). Both are partial:
//! a missing rule makes the whole translation undefined.
//!
//! The evaluator memoizes on `(state, subtree address)`, so copying
//! transducers run in time proportional to the number of *distinct*
//! `(q, subtree)` pairs rather than the (possibly exponential) output size,
//! and the produced outputs share subtrees (which is what makes the
//! minimal-DAG representation of Section 1 cheap to obtain).
//!
//! [`eval_cut`] implements the stopped computation `⟦Mx⟧(s[u ← x])` of
//! Definition 3/Proposition 4: the run is cut at the node addressed by `u`,
//! leaving `⟨q, x⟩` leaves that show which states process that node.

use std::collections::HashMap;

use xtt_trees::{FPath, Tree};

use crate::dtop::Dtop;
use crate::rhs::{QId, Rhs};

/// Evaluates `⟦M⟧(s)`. `None` if `s ∉ dom(⟦M⟧)`.
pub fn eval(m: &Dtop, s: &Tree) -> Option<Tree> {
    let mut ev = Evaluator::new(m);
    ev.eval_axiom(s)
}

/// Evaluates `⟦M⟧_q(s)`. `None` if undefined.
pub fn eval_state(m: &Dtop, q: QId, s: &Tree) -> Option<Tree> {
    let mut ev = Evaluator::new(m);
    ev.state(q, s)
}

/// Naive evaluation without memoization — the ablation baseline for the
/// memoized [`Evaluator`]. On copying transducers this is exponential
/// where the memoized evaluator is linear (bench `eval_throughput`).
pub fn eval_naive(m: &Dtop, s: &Tree) -> Option<Tree> {
    fn state(m: &Dtop, q: QId, s: &Tree) -> Option<Tree> {
        let rhs = m.rule(q, s.symbol())?;
        expand(m, rhs, s.children())
    }
    fn expand(m: &Dtop, rhs: &Rhs, children: &[Tree]) -> Option<Tree> {
        match rhs {
            Rhs::Call { state: q, child } => state(m, *q, children.get(*child)?),
            Rhs::Out(sym, kids) => {
                let mut out = Vec::with_capacity(kids.len());
                for k in kids {
                    out.push(expand(m, k, children)?);
                }
                Some(Tree::new(*sym, out))
            }
        }
    }
    expand(m, m.axiom(), std::slice::from_ref(s))
}

/// A reusable evaluator whose memo table persists across calls — useful
/// when evaluating many states on overlapping subtrees (residual
/// computations, sample generation).
pub struct Evaluator<'a> {
    m: &'a Dtop,
    memo: HashMap<(QId, usize), Option<Tree>>,
    /// Keeps the trees whose addresses key the memo alive, so addresses
    /// cannot be reused by unrelated allocations.
    pinned: Vec<Tree>,
}

impl<'a> Evaluator<'a> {
    pub fn new(m: &'a Dtop) -> Self {
        Evaluator {
            m,
            memo: HashMap::new(),
            pinned: Vec::new(),
        }
    }

    /// `⟦M⟧(s)`.
    pub fn eval_axiom(&mut self, s: &Tree) -> Option<Tree> {
        self.expand(&self.m.axiom().clone(), std::slice::from_ref(s))
    }

    /// `⟦M⟧_q(s)`.
    pub fn state(&mut self, q: QId, s: &Tree) -> Option<Tree> {
        let key = (q, s.addr());
        if let Some(r) = self.memo.get(&key) {
            return r.clone();
        }
        let rhs = self.m.rule(q, s.symbol()).cloned();
        let result = match rhs {
            None => None,
            Some(rhs) => self.expand(&rhs, s.children()),
        };
        self.pinned.push(s.clone());
        self.memo.insert(key, result.clone());
        result
    }

    fn expand(&mut self, rhs: &Rhs, children: &[Tree]) -> Option<Tree> {
        match rhs {
            Rhs::Call { state, child } => {
                let sub = children.get(*child)?;
                self.state(*state, &sub.clone())
            }
            Rhs::Out(sym, kids) => {
                let mut out = Vec::with_capacity(kids.len());
                for k in kids {
                    out.push(self.expand(k, children)?);
                }
                Some(Tree::new(*sym, out))
            }
        }
    }
}

/// The result of a stopped computation `⟦Mx⟧(s[u ← x])`: an output tree
/// whose leaves may be `⟨q, x⟩` markers, represented as [`Rhs`] where every
/// call refers to the cut node.
///
/// Returns `None` when the translation is already undefined above or beside
/// the cut (some rule is missing on a fully processed part).
pub fn eval_cut(m: &Dtop, s: &Tree, u: &FPath) -> Option<Rhs> {
    if !u.belongs_to(s) {
        return None;
    }
    let target = u.node_path();
    let mut ev = Evaluator::new(m);
    let axiom = m.axiom().clone();
    // Every axiom call targets the root (x0) with the whole path to walk.
    expand_calls(&axiom, &mut |state, _child| {
        walk_to_cut(m, &mut ev, state, s, target.indices())
    })
}

/// Rebuilds an rhs, replacing every call through `on_call`.
fn expand_calls(rhs: &Rhs, on_call: &mut dyn FnMut(QId, usize) -> Option<Rhs>) -> Option<Rhs> {
    match rhs {
        Rhs::Call { state, child } => on_call(*state, *child),
        Rhs::Out(sym, kids) => {
            let mut out = Vec::with_capacity(kids.len());
            for k in kids {
                out.push(expand_calls(k, on_call)?);
            }
            Some(Rhs::Out(*sym, out))
        }
    }
}

/// Runs state `q` on `sub`, cutting at the node addressed by `rest`
/// (relative child indices). Returns the partial output with `⟨q', x⟩`
/// leaves for the states that reach the cut node.
fn walk_to_cut(m: &Dtop, ev: &mut Evaluator<'_>, q: QId, sub: &Tree, rest: &[u32]) -> Option<Rhs> {
    let Some((&next, deeper)) = rest.split_first() else {
        // The call reaches the cut node: stop, leave ⟨q, x⟩.
        return Some(Rhs::Call { state: q, child: 0 });
    };
    let rule = m.rule(q, sub.symbol())?.clone();
    expand_calls(&rule, &mut |state, child| {
        let kid = sub.child(child)?.clone();
        if child == next as usize {
            walk_to_cut(m, ev, state, &kid, deeper)
        } else {
            // Off the path: run to completion.
            let t = ev.state(state, &kid)?;
            Some(tree_to_rhs(&t))
        }
    })
}

fn tree_to_rhs(t: &Tree) -> Rhs {
    Rhs::Out(t.symbol(), t.children().iter().map(tree_to_rhs).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples;
    use xtt_trees::parse_tree;

    #[test]
    fn flip_translates_example_pairs() {
        // The characteristic sample of τflip from the paper introduction.
        // Note: the paper writes the 4th pair as root(a(a(#,#),#), …) with
        // the nested `a` in the *first* child, which contradicts Mflip's own
        // rule q4(a(x1,x2)) → a(#,⟨q4,x2⟩) (lists nest in the second child,
        // "first-child/next-sibling"); we use the rule-consistent form.
        let m = examples::flip().dtop;
        let cases = [
            ("root(#,#)", "root(#,#)"),
            ("root(a(#,#),#)", "root(#,a(#,#))"),
            ("root(#,b(#,#))", "root(b(#,#),#)"),
            (
                "root(a(#,a(#,#)),b(#,b(#,#)))",
                "root(b(#,b(#,#)),a(#,a(#,#)))",
            ),
        ];
        for (input, expected) in cases {
            let s = parse_tree(input).unwrap();
            let t = eval(&m, &s).unwrap();
            assert_eq!(t.to_string(), expected, "on input {input}");
        }
    }

    #[test]
    fn partiality_outside_domain() {
        let m = examples::flip().dtop;
        // q3 expects b-lists in the second subtree; an `a` there is undefined
        let s = parse_tree("root(#,a(#,#))").unwrap();
        assert_eq!(eval(&m, &s), None);
    }

    #[test]
    fn flip_deletes_nothing_checked_note() {
        // (q4,a) deletes its first subtree: without inspection the evaluator
        // accepts any tree there — the paper's remark after Mflip.
        let m = examples::flip().dtop;
        let s = parse_tree("root(a(b(#,#),#),#)").unwrap();
        // b(#,#) sits where the domain automaton would demand #:
        let t = eval(&m, &s).unwrap();
        assert_eq!(t.to_string(), "root(#,a(#,#))");
        // ...but the fixture's domain automaton rejects it:
        assert!(!examples::flip().domain.accepts(&s));
    }

    #[test]
    fn eval_state_directly() {
        let m = examples::flip().dtop;
        let q4 = m.state_by_name("q4").unwrap();
        let s = parse_tree("a(#,a(#,#))").unwrap();
        assert_eq!(eval_state(&m, q4, &s).unwrap().to_string(), "a(#,a(#,#))");
    }

    #[test]
    fn copying_reuses_memoized_results() {
        // q(f(x1)) -> g(<q,x1>,<q,x1>): output is a full binary tree but
        // evaluation is linear thanks to memoization + sharing.
        let m = examples::monadic_to_binary().dtop;
        let mut s = parse_tree("e").unwrap();
        for _ in 0..24 {
            s = Tree::new(xtt_trees::Symbol::new("f"), vec![s]);
        }
        let t = eval(&m, &s).unwrap();
        assert_eq!(t.size(), (1 << 25) - 1); // 2^(n+1) - 1 nodes
        assert_eq!(t.height(), 24);
    }

    #[test]
    fn eval_cut_shows_state_sequence() {
        let m = examples::flip().dtop;
        let s = parse_tree("root(a(#,#),b(#,#))").unwrap();
        // cut at the root: axiom structure with ⟨q1,x⟩ and ⟨q2,x⟩
        let z = eval_cut(&m, &s, &FPath::empty()).unwrap();
        assert_eq!(m.show_rhs(&z, true), "root(<q1,x0>,<q2,x0>)");
        // cut at the second child: q1 has moved there as q3
        let u = FPath::parse_pairs(&[("root", 2)]);
        let z2 = eval_cut(&m, &s, &u).unwrap();
        assert_eq!(m.show_rhs(&z2, true), "root(<q3,x0>,a(#,#))");
    }

    #[test]
    fn eval_cut_agrees_with_proposition_4() {
        // ⟦M⟧(s) = ⟦Mx⟧(s[u←x])[⟨q,x⟩ ← ⟦M⟧_q(u⁻¹s)]
        let m = examples::flip().dtop;
        let s = parse_tree("root(a(a(#,#),#),b(b(#,#),#))").unwrap();
        for u in [
            FPath::empty(),
            FPath::parse_pairs(&[("root", 1)]),
            FPath::parse_pairs(&[("root", 2)]),
            FPath::parse_pairs(&[("root", 1), ("a", 2)]),
        ] {
            let z = eval_cut(&m, &s, &u).unwrap();
            let sub = u.resolve(&s).unwrap();
            let rebuilt = substitute_calls(&m, &z, &sub);
            assert_eq!(rebuilt.unwrap(), eval(&m, &s).unwrap(), "cut at {u}");
        }
    }

    fn substitute_calls(m: &Dtop, z: &Rhs, sub: &Tree) -> Option<Tree> {
        match z {
            Rhs::Call { state, .. } => eval_state(m, *state, sub),
            Rhs::Out(sym, kids) => {
                let mut out = Vec::with_capacity(kids.len());
                for k in kids {
                    out.push(substitute_calls(m, k, sub)?);
                }
                Some(Tree::new(*sym, out))
            }
        }
    }

    #[test]
    fn naive_and_memoized_agree() {
        for fix in [
            examples::flip(),
            examples::library(),
            examples::monadic_to_binary(),
        ] {
            let trees = xtt_trees::gen::enumerate_trees(fix.dtop.input(), 60, 8);
            for t in trees {
                assert_eq!(eval(&fix.dtop, &t), eval_naive(&fix.dtop, &t), "on {t}");
            }
        }
    }

    #[test]
    fn eval_cut_requires_path_in_tree() {
        let m = examples::flip().dtop;
        let s = parse_tree("root(#,#)").unwrap();
        assert!(eval_cut(&m, &s, &FPath::parse_pairs(&[("root", 1), ("a", 1)])).is_none());
    }
}
