//! The earliest normal form (Section 3, after [Engelfriet, Maneth & Seidl
//! 2009]).
//!
//! A productive dtop is *earliest* if `out_{⟦M⟧_q}(ε) = ⊥` for every state:
//! no common output prefix is withheld inside any state. Every dtop (with
//! inspection) can be transformed into an equivalent earliest *uniform*
//! one, which is the normal form on which the Myhill–Nerode theorem and the
//! learner operate.
//!
//! Construction implemented here:
//!
//! 1. Build the trimmed subset-construction domain automaton `D`
//!    ([`crate::domain::domain_dtta`]); uniform states are pairs `(q, d)`
//!    of a transducer state and the domain state of the node it reads —
//!    this is what makes (C0)/(C2) of Definition 27 enforceable.
//! 2. Compute `c_{(q,d)} = ⨆ { ⟦M⟧_q(s) | s ∈ L(d) }` — the maximal output
//!    of each pair — by a Kleene iteration downward from `⊤`:
//!    `c⁰ = ⊤`, `cⁱ⁺¹_{(q,d)} = ⨆_f rhs(q,f)[⟨q',x_i⟩ ← cⁱ_{(q',d_i)}]`.
//!    The iteration is monotone decreasing and bounded below by the true
//!    (finite) common prefix, so it terminates; a generous iteration cap
//!    turns any bug into an error instead of a hang.
//! 3. States of the earliest transducer are pairs `((q,d), v)` with `v` a
//!    `⊥`-hole of `c_{(q,d)}`; the rule for input `f` is the subtree at `v`
//!    of `rhs(q,f)` with every call `⟨q',x_i⟩` replaced by `c_{(q',d_i)}`
//!    whose holes `w` become calls `⟨((q',d_i),w), x_i⟩` (Lemma 9's shape).

use std::collections::HashMap;
use std::fmt;

use xtt_automata::{Dtta, StateId};
use xtt_trees::{NodePath, PTree};

use crate::domain::domain_dtta;
use crate::dtop::{Dtop, DtopBuilder};
use crate::rhs::{QId, Rhs};

/// An earliest uniform transducer together with its (trimmed) domain
/// automaton and the domain state attached to each transducer state.
///
/// Produced by [`to_earliest`] and refined by
/// [`crate::minimize::minimize`]; the final minimized + canonically
/// numbered form is the paper's `min(τ)` (Definition 24 / Theorem 28).
#[derive(Clone, Debug)]
pub struct Canonical {
    pub dtop: Dtop,
    pub domain: Dtta,
    /// `state_domain[q]` = the domain-automaton state of the input node
    /// that state `q` reads. Well-defined by uniformity.
    pub state_domain: Vec<StateId>,
}

/// Errors from normal-form construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormError {
    /// The (restricted) domain is empty — `out_τ(ε)` is undefined and no
    /// canonical transducer exists.
    EmptyDomain,
    /// The `c_q` fixpoint failed to converge within the iteration cap
    /// (indicates a bug or a pathological input).
    FixpointDiverged,
    /// An internal invariant failed; the message names it.
    Internal(String),
}

impl fmt::Display for NormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormError::EmptyDomain => write!(f, "the transduction has an empty domain"),
            NormError::FixpointDiverged => {
                write!(f, "maximal-output fixpoint did not converge")
            }
            NormError::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for NormError {}

const MAX_FIXPOINT_ITERATIONS: usize = 100_000;

/// Transforms `M` (restricted to `inspection` if given) into an equivalent
/// earliest uniform transducer.
pub fn to_earliest(m: &Dtop, inspection: Option<&Dtta>) -> Result<Canonical, NormError> {
    let domain = domain_dtta(m, inspection);
    if xtt_automata::is_empty(&domain) {
        return Err(NormError::EmptyDomain);
    }
    let pairs = reachable_pairs(m, &domain);
    let c = maximal_outputs(m, &domain, &pairs)?;
    build_earliest(m, domain, &pairs, &c)
}

/// One uniform pair `(q, d)`.
#[derive(Clone, Debug)]
struct Pairs {
    list: Vec<(QId, StateId)>,
    index: HashMap<(QId, StateId), usize>,
}

impl Pairs {
    fn get(&self, q: QId, d: StateId) -> usize {
        self.index[&(q, d)]
    }
}

fn reachable_pairs(m: &Dtop, domain: &Dtta) -> Pairs {
    let mut pairs = Pairs {
        list: Vec::new(),
        index: HashMap::new(),
    };
    let mut queue: Vec<usize> = Vec::new();
    for (_, q, _) in m.axiom().calls() {
        push_pair(&mut pairs, &mut queue, q, domain.initial());
    }
    while let Some(i) = queue.pop() {
        let (q, d) = pairs.list[i];
        for &f in m.input().symbols() {
            let Some(children) = domain.transition(d, f) else {
                continue;
            };
            let children = children.to_vec();
            let rhs = m
                .rule(q, f)
                .expect("domain transition implies rule exists")
                .clone();
            for (_, q2, child) in rhs.calls() {
                push_pair(&mut pairs, &mut queue, q2, children[child]);
            }
        }
    }
    pairs
}

fn push_pair(pairs: &mut Pairs, queue: &mut Vec<usize>, q: QId, d: StateId) {
    if pairs.index.contains_key(&(q, d)) {
        return;
    }
    let i = pairs.list.len();
    pairs.index.insert((q, d), i);
    pairs.list.push((q, d));
    queue.push(i);
}

/// Computes `c_{(q,d)}` for every reachable pair.
fn maximal_outputs(m: &Dtop, domain: &Dtta, pairs: &Pairs) -> Result<Vec<PTree>, NormError> {
    let mut vals: Vec<PTree> = vec![PTree::top(); pairs.list.len()];
    for _ in 0..MAX_FIXPOINT_ITERATIONS {
        let mut changed = false;
        for i in 0..pairs.list.len() {
            let (q, d) = pairs.list[i];
            let mut acc = PTree::top();
            for &f in m.input().symbols() {
                let Some(children) = domain.transition(d, f) else {
                    continue;
                };
                let children = children.to_vec();
                let rhs = m.rule(q, f).expect("rule exists on live transition");
                let contribution = rhs_to_ptree(rhs, &children, pairs, &vals);
                acc = acc.lcp(&contribution);
                if acc.is_bottom() {
                    break;
                }
            }
            if acc != vals[i] {
                vals[i] = acc;
                changed = true;
            }
        }
        if !changed {
            // Productive pairs must have no ⊤ left.
            for (i, v) in vals.iter().enumerate() {
                if v.contains_top() {
                    return Err(NormError::Internal(format!(
                        "⊤ remains in maximal output of pair {:?}",
                        pairs.list[i]
                    )));
                }
            }
            return Ok(vals);
        }
    }
    Err(NormError::FixpointDiverged)
}

fn rhs_to_ptree(rhs: &Rhs, dchildren: &[StateId], pairs: &Pairs, vals: &[PTree]) -> PTree {
    match rhs {
        Rhs::Call { state, child } => vals[pairs.get(*state, dchildren[*child])].clone(),
        Rhs::Out(sym, kids) => PTree::sym(
            *sym,
            kids.iter()
                .map(|k| rhs_to_ptree(k, dchildren, pairs, vals))
                .collect(),
        ),
    }
}

fn build_earliest(
    m: &Dtop,
    domain: Dtta,
    pairs: &Pairs,
    c: &[PTree],
) -> Result<Canonical, NormError> {
    // Earliest states: one per (pair, hole of c[pair]).
    let mut state_ids: HashMap<(usize, NodePath), QId> = HashMap::new();
    let mut state_domain: Vec<StateId> = Vec::new();
    let mut builder = DtopBuilder::new(m.input().clone(), m.output().clone());
    for (i, &(q, d)) in pairs.list.iter().enumerate() {
        for hole in c[i].holes() {
            let id = builder.add_state(format!("{}@{}/{}", m.state_name(q), d, hole));
            state_ids.insert((i, hole), id);
            state_domain.push(d);
        }
    }

    // Axiom: expand the original axiom with c's, holes become calls.
    let axiom = expand_rhs(m.axiom(), &|_child| domain.initial(), pairs, c, &state_ids)?;
    builder.set_axiom(axiom);

    // Rules.
    let mut rules: Vec<(QId, xtt_trees::Symbol, Rhs)> = Vec::new();
    for (i, &(q, d)) in pairs.list.iter().enumerate() {
        let holes = c[i].holes();
        if holes.is_empty() {
            continue;
        }
        for &f in m.input().symbols() {
            let Some(dchildren) = domain.transition(d, f) else {
                continue;
            };
            let dchildren = dchildren.to_vec();
            let rhs = m.rule(q, f).expect("rule exists on live transition");
            let expanded = expand_rhs(rhs, &|child| dchildren[child], pairs, c, &state_ids)?;
            for hole in &holes {
                let sub = rhs_subtree_at(&expanded, hole).ok_or_else(|| {
                    NormError::Internal(format!(
                        "hole {hole} of c missing in expanded rhs of ({}, {f})",
                        m.state_name(q)
                    ))
                })?;
                let state = state_ids[&(i, hole.clone())];
                rules.push((state, f, sub));
            }
        }
    }
    for (q, f, rhs) in rules {
        builder
            .add_rule(q, f, rhs)
            .map_err(|e| NormError::Internal(e.to_string()))?;
    }
    let dtop = builder
        .build()
        .map_err(|e| NormError::Internal(e.to_string()))?;
    Ok(Canonical {
        dtop,
        domain,
        state_domain,
    })
}

/// Replaces every call `⟨q', x_i⟩` in `rhs` by `c_{(q', dom(i))}` with holes
/// turned into calls to the corresponding earliest states.
fn expand_rhs(
    rhs: &Rhs,
    child_domain: &dyn Fn(usize) -> StateId,
    pairs: &Pairs,
    c: &[PTree],
    state_ids: &HashMap<(usize, NodePath), QId>,
) -> Result<Rhs, NormError> {
    match rhs {
        Rhs::Out(sym, kids) => {
            let mut out = Vec::with_capacity(kids.len());
            for k in kids {
                out.push(expand_rhs(k, child_domain, pairs, c, state_ids)?);
            }
            Ok(Rhs::Out(*sym, out))
        }
        Rhs::Call { state, child } => {
            let pair = pairs.get(*state, child_domain(*child));
            ptree_to_rhs(&c[pair], &NodePath::root(), pair, *child, state_ids)
        }
    }
}

fn ptree_to_rhs(
    t: &PTree,
    at: &NodePath,
    pair: usize,
    var: usize,
    state_ids: &HashMap<(usize, NodePath), QId>,
) -> Result<Rhs, NormError> {
    if t.is_bottom() {
        let state = *state_ids
            .get(&(pair, at.clone()))
            .ok_or_else(|| NormError::Internal(format!("no state for hole {at}")))?;
        return Ok(Rhs::Call { state, child: var });
    }
    let Some(sym) = t.symbol() else {
        return Err(NormError::Internal("⊤ in maximal output".into()));
    };
    let mut kids = Vec::with_capacity(t.children().len());
    for (i, child) in t.children().iter().enumerate() {
        kids.push(ptree_to_rhs(
            child,
            &at.child(i as u32),
            pair,
            var,
            state_ids,
        )?);
    }
    Ok(Rhs::Out(sym, kids))
}

/// The subtree of an rhs at a node path; `None` if the path crosses a call.
fn rhs_subtree_at(rhs: &Rhs, at: &NodePath) -> Option<Rhs> {
    let mut cur = rhs;
    for &i in at.indices() {
        match cur {
            Rhs::Out(_, kids) => cur = kids.get(i as usize)?,
            Rhs::Call { .. } => return None,
        }
    }
    Some(cur.clone())
}

/// True if `out_{⟦M⟧_q restricted to L(d)}(ε) = ⊥` for every state of the
/// canonical transducer — the defining property of earliest transducers
/// (Definition 8), checked via the same fixpoint.
pub fn is_earliest(c: &Canonical) -> Result<bool, NormError> {
    let pairs = reachable_pairs(&c.dtop, &c.domain);
    let vals = maximal_outputs(&c.dtop, &c.domain, &pairs)?;
    Ok(vals.iter().all(PTree::is_bottom))
}

/// Convenience: earliest form of a transducer using its own (unrestricted)
/// domain.
pub fn to_earliest_unrestricted(m: &Dtop) -> Result<Canonical, NormError> {
    to_earliest(m, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::examples;
    use xtt_automata::enumerate_language;

    /// earliest(M) must agree with M on the whole (restricted) domain.
    fn assert_equivalent_on_domain(fix: &examples::Fixture, canon: &Canonical, n: usize) {
        let trees = enumerate_language(&fix.domain, fix.domain.initial(), n, 30);
        assert!(!trees.is_empty());
        for t in trees {
            let orig = eval(&fix.dtop, &t);
            let new = eval(&canon.dtop, &t);
            assert_eq!(orig, new, "disagreement on {t}");
        }
    }

    #[test]
    fn constant_m2_normalizes_to_axiom_only() {
        let fix = examples::constant_m2();
        let canon = to_earliest(&fix.dtop, Some(&fix.domain)).unwrap();
        // Example 2: M2 is not earliest; M1 (axiom `b`, no states) is.
        assert_eq!(canon.dtop.state_count(), 0);
        assert_eq!(canon.dtop.show_rhs(canon.dtop.axiom(), true), "b");
        assert_equivalent_on_domain(&fix, &canon, 50);
        assert!(is_earliest(&canon).unwrap());
    }

    #[test]
    fn constant_m3_normalizes_to_axiom_only() {
        let fix = examples::constant_m3();
        let canon = to_earliest(&fix.dtop, Some(&fix.domain)).unwrap();
        assert_eq!(canon.dtop.state_count(), 0);
        assert_eq!(canon.dtop.show_rhs(canon.dtop.axiom(), true), "b");
    }

    #[test]
    fn flip_is_already_earliest() {
        let fix = examples::flip();
        let canon = to_earliest(&fix.dtop, Some(&fix.domain)).unwrap();
        assert!(is_earliest(&canon).unwrap());
        assert_eq!(canon.dtop.state_count(), 4);
        assert_eq!(canon.dtop.rule_count(), 6);
        assert_equivalent_on_domain(&fix, &canon, 200);
    }

    #[test]
    fn example6_m2_gains_the_context() {
        // M2 withholds f(c,·): the earliest form must produce it in the
        // axiom, i.e. out_τ(ε) = f(c,⊥).
        let fix = examples::example6_m2();
        let canon = to_earliest(&fix.dtop, Some(&fix.domain)).unwrap();
        let ax = canon.dtop.show_rhs(canon.dtop.axiom(), true);
        assert!(
            ax.starts_with("f(c,"),
            "axiom should expose the common prefix, got {ax}"
        );
        assert_equivalent_on_domain(&fix, &canon, 10);
        assert!(is_earliest(&canon).unwrap());
    }

    #[test]
    fn example6_m3_superfluous_rule_removed() {
        // (C2): the g-rule of M3 is outside the domain and must vanish.
        let fix = examples::example6_m3();
        let canon = to_earliest(&fix.dtop, Some(&fix.domain)).unwrap();
        let g = xtt_trees::Symbol::new("g");
        for q in canon.dtop.states() {
            assert!(canon.dtop.rule(q, g).is_none());
        }
        assert_equivalent_on_domain(&fix, &canon, 10);
    }

    #[test]
    fn library_is_already_earliest() {
        let fix = examples::library();
        let canon = to_earliest(&fix.dtop, None).unwrap();
        assert!(is_earliest(&canon).unwrap());
        assert_eq!(canon.dtop.state_count(), fix.dtop.state_count());
        assert_equivalent_on_domain(&fix, &canon, 100);
    }

    #[test]
    fn empty_domain_is_an_error() {
        // The transducer only handles `a`, the inspection only allows `b`:
        // the restricted domain is empty.
        let input = xtt_trees::RankedAlphabet::from_pairs([("a", 0), ("b", 0)]);
        let output = input.clone();
        let mut b = crate::dtop::DtopBuilder::new(input, output);
        b.add_state("qa");
        b.set_axiom_str("<qa,x0>").unwrap();
        b.add_rule_str("qa", "a", "a").unwrap();
        let m = b.build().unwrap();
        let mut d = xtt_automata::DttaBuilder::new(m.input().clone());
        let p = d.add_state("only-b");
        d.add_transition(p, xtt_trees::Symbol::new("b"), vec![])
            .unwrap();
        let only_b = d.build().unwrap();
        assert_eq!(
            to_earliest(&m, Some(&only_b)).unwrap_err(),
            NormError::EmptyDomain
        );
    }

    #[test]
    fn deep_constant_prefix_is_pushed_up() {
        // q(f(x1)) -> g(<q,x1>), q(e) -> g(h): every output starts with g;
        // earliest must move one g into the axiom... in fact out(ε)=g(⊥).
        let input = xtt_trees::RankedAlphabet::from_pairs([("f", 1), ("e", 0)]);
        let output = xtt_trees::RankedAlphabet::from_pairs([("g", 1), ("h", 0)]);
        let mut b = crate::dtop::DtopBuilder::new(input.clone(), output);
        b.add_state("q");
        b.set_axiom_str("<q,x0>").unwrap();
        b.add_rule_str("q", "f", "g(<q,x1>)").unwrap();
        b.add_rule_str("q", "e", "g(h)").unwrap();
        let m = b.build().unwrap();
        let canon = to_earliest(&m, None).unwrap();
        assert!(is_earliest(&canon).unwrap());
        let ax = canon.dtop.show_rhs(canon.dtop.axiom(), true);
        assert!(ax.starts_with("g("), "axiom {ax} should start with g(");
        // behaviour preserved
        let t = xtt_trees::parse_tree("f(f(e))").unwrap();
        assert_eq!(eval(&canon.dtop, &t).unwrap().to_string(), "g(g(g(h)))");
    }
}
