//! The paper's worked examples and scalable families derived from them.
//!
//! Every concrete transducer the paper exhibits is reproduced here as a
//! fixture (dtop + domain DTTA) shared by unit tests, integration tests,
//! the experiment binaries, and the benches:
//!
//! * [`flip`] — `Mflip` from the introduction (4 states);
//! * [`constant_m1`]/[`constant_m2`]/[`constant_m3`] — Example 1;
//! * [`example6`] — the four transducers of Example 6 (§7) over the domain
//!   `D = {f(c,a), f(c,b)}`;
//! * [`library`] — the §10 library transformation over DTD-encoded trees;
//! * [`monadic_to_binary`] — the monadic-input/full-binary-output copier
//!   used for the DAG-representation claim (§1);
//! * [`flip_k`]/[`relabel_chain`] — parameterized families for scaling
//!   experiments (E4/E5).

use xtt_automata::{Dtta, DttaBuilder};
use xtt_trees::{RankedAlphabet, Symbol, Tree};

use crate::domain::domain_dtta;
use crate::dtop::{Dtop, DtopBuilder};
use crate::rhs::Rhs;

/// A transducer together with the DTTA defining its intended domain
/// (the "inspection" of Section 7).
#[derive(Clone, Debug)]
pub struct Fixture {
    pub dtop: Dtop,
    pub domain: Dtta,
}

/// `Mflip` from the paper's introduction: exchange an `a`-list and a
/// `b`-list (fc/ns encoded). Minimal earliest, 4 states, 6 rules.
pub fn flip() -> Fixture {
    let alpha = RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("#", 0)]);
    let mut b = DtopBuilder::new(alpha.clone(), alpha.clone());
    for name in ["q1", "q2", "q3", "q4"] {
        b.add_state(name);
    }
    b.set_axiom_str("root(<q1,x0>,<q2,x0>)").unwrap();
    b.add_rule_str("q1", "root", "<q3,x2>").unwrap();
    b.add_rule_str("q2", "root", "<q4,x1>").unwrap();
    b.add_rule_str("q3", "#", "#").unwrap();
    b.add_rule_str("q3", "b", "b(#,<q3,x2>)").unwrap();
    b.add_rule_str("q4", "#", "#").unwrap();
    b.add_rule_str("q4", "a", "a(#,<q4,x2>)").unwrap();
    let dtop = b.build().unwrap();

    let mut d = DttaBuilder::new(alpha);
    let p0 = d.add_state("start");
    let pa = d.add_state("alist");
    let pb = d.add_state("blist");
    let nil = d.add_state("nil");
    d.add_transition(p0, Symbol::new("root"), vec![pa, pb])
        .unwrap();
    d.add_transition(pa, Symbol::new("a"), vec![nil, pa])
        .unwrap();
    d.add_transition(pa, Symbol::new("#"), vec![]).unwrap();
    d.add_transition(pb, Symbol::new("b"), vec![nil, pb])
        .unwrap();
    d.add_transition(pb, Symbol::new("#"), vec![]).unwrap();
    d.add_transition(nil, Symbol::new("#"), vec![]).unwrap();
    Fixture {
        dtop,
        domain: d.build().unwrap(),
    }
}

fn example1_alphabets() -> (RankedAlphabet, RankedAlphabet) {
    (
        RankedAlphabet::from_pairs([("f", 2), ("a", 0)]),
        RankedAlphabet::from_pairs([("b", 0)]),
    )
}

/// Example 1, `M₁`: the constant transduction as a bare axiom — already
/// earliest.
pub fn constant_m1() -> Fixture {
    let (input, output) = example1_alphabets();
    let dtop = Dtop::constant(input.clone(), output, Rhs::leaf("b"));
    Fixture {
        dtop,
        domain: Dtta::universal(input),
    }
}

/// Example 1, `M₂`: same transduction, produced one step late (not
/// earliest).
pub fn constant_m2() -> Fixture {
    let (input, output) = example1_alphabets();
    let mut b = DtopBuilder::new(input.clone(), output);
    b.add_state("q0");
    b.set_axiom_str("<q0,x0>").unwrap();
    b.add_rule_str("q0", "f", "b").unwrap();
    b.add_rule_str("q0", "a", "b").unwrap();
    Fixture {
        dtop: b.build().unwrap(),
        domain: Dtta::universal(input),
    }
}

/// Example 1, `M₃`: produces the output at the first child if one exists.
pub fn constant_m3() -> Fixture {
    let (input, output) = example1_alphabets();
    let mut b = DtopBuilder::new(input.clone(), output);
    b.add_state("q0");
    b.add_state("q1");
    b.set_axiom_str("<q0,x0>").unwrap();
    b.add_rule_str("q0", "f", "<q1,x1>").unwrap();
    b.add_rule_str("q0", "a", "b").unwrap();
    b.add_rule_str("q1", "f", "b").unwrap();
    b.add_rule_str("q1", "a", "b").unwrap();
    Fixture {
        dtop: b.build().unwrap(),
        domain: Dtta::universal(input),
    }
}

/// The domain `D = {f(c,a), f(c,b)}` of Example 6.
pub fn example6_domain() -> Dtta {
    let alpha = example6_alphabet();
    let mut d = DttaBuilder::new(alpha);
    let p0 = d.add_state("root");
    let pc = d.add_state("c");
    let pab = d.add_state("ab");
    d.add_transition(p0, Symbol::new("f"), vec![pc, pab])
        .unwrap();
    d.add_transition(pc, Symbol::new("c"), vec![]).unwrap();
    d.add_transition(pab, Symbol::new("a"), vec![]).unwrap();
    d.add_transition(pab, Symbol::new("b"), vec![]).unwrap();
    d.build().unwrap()
}

fn example6_alphabet() -> RankedAlphabet {
    RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("a", 0), ("b", 0), ("c", 0)])
}

/// Example 6, `M₀`: earliest single-state identity-ish transducer that
/// violates (C0) on `D`.
pub fn example6_m0() -> Fixture {
    let alpha = example6_alphabet();
    let mut b = DtopBuilder::new(alpha.clone(), alpha);
    b.add_state("q0");
    b.set_axiom_str("f(c,<q0,x0>)").unwrap();
    b.add_rule_str("q0", "f", "<q0,x2>").unwrap();
    b.add_rule_str("q0", "a", "a").unwrap();
    b.add_rule_str("q0", "b", "b").unwrap();
    Fixture {
        dtop: b.build().unwrap(),
        domain: example6_domain(),
    }
}

/// Example 6, `M₁`: the minimal earliest compatible transducer for the
/// restricted identity (two states).
pub fn example6_m1() -> Fixture {
    let alpha = example6_alphabet();
    let mut b = DtopBuilder::new(alpha.clone(), alpha);
    b.add_state("q0");
    b.add_state("q1");
    b.set_axiom_str("f(c,<q0,x0>)").unwrap();
    b.add_rule_str("q0", "f", "<q1,x2>").unwrap();
    b.add_rule_str("q1", "a", "a").unwrap();
    b.add_rule_str("q1", "b", "b").unwrap();
    Fixture {
        dtop: b.build().unwrap(),
        domain: example6_domain(),
    }
}

/// Example 6, `M₂`: defines the same function on `D` but is not
/// output-maximal w.r.t. `D` — violates (C1).
pub fn example6_m2() -> Fixture {
    let alpha = example6_alphabet();
    let mut b = DtopBuilder::new(alpha.clone(), alpha);
    b.add_state("q0");
    b.set_axiom_str("<q0,x0>").unwrap();
    b.add_rule_str("q0", "f", "f(c,<q0,x2>)").unwrap();
    b.add_rule_str("q0", "a", "a").unwrap();
    b.add_rule_str("q0", "b", "b").unwrap();
    Fixture {
        dtop: b.build().unwrap(),
        domain: example6_domain(),
    }
}

/// Example 6, `M₃`: like `M₁` plus a superfluous rule `q0(g(x1)) → a` —
/// violates (C2).
pub fn example6_m3() -> Fixture {
    let alpha = example6_alphabet();
    let mut b = DtopBuilder::new(alpha.clone(), alpha);
    b.add_state("q0");
    b.add_state("q1");
    b.set_axiom_str("f(c,<q0,x0>)").unwrap();
    b.add_rule_str("q0", "f", "<q1,x2>").unwrap();
    b.add_rule_str("q0", "g", "a").unwrap();
    b.add_rule_str("q1", "a", "a").unwrap();
    b.add_rule_str("q1", "b", "b").unwrap();
    Fixture {
        dtop: b.build().unwrap(),
        domain: example6_domain(),
    }
}

/// The Section 10 library transformation over DTD-encoded trees: swap
/// author/title, delete year, copy all titles into a summary.
///
/// Two deliberate deviations from the paper's listing, both discussed in
/// EXPERIMENTS.md (E2):
///
/// * the paper's state `qT` is applied both to `B`-nodes (in the `qT*`
///   rules) and to `T`-nodes (in the `qB` rule), which is inconsistent for
///   a deterministic transducer; we split it into `qTB` (produce a summary
///   title from a book) and `qTT` (extract a title's pcdata), giving 15
///   states instead of the claimed 14;
/// * pcdata is modeled by *two* constants `P` and `P'` — with a single
///   constant every text-extraction state would compute a constant function
///   and be absorbed by the earliest normal form, trivializing the example.
pub fn library() -> Fixture {
    let input = RankedAlphabet::from_pairs([
        ("L", 1),
        ("B*", 2),
        ("B", 3),
        ("A", 1),
        ("T", 1),
        ("Y", 1),
        ("P", 0),
        ("P'", 0),
        ("#", 0),
    ]);
    let output = RankedAlphabet::from_pairs([
        ("L", 2),
        ("S", 1),
        ("T*", 2),
        ("B*", 2),
        ("B", 2),
        ("T", 1),
        ("A", 1),
        ("P", 0),
        ("P'", 0),
        ("#", 0),
    ]);
    let mut b = DtopBuilder::new(input, output);
    for name in [
        "qL1", "qL2", "qL3", "qL4", "qT1s", "qT2s", "qTs", "qB1s", "qB2s", "qBs", "qB", "qTB",
        "qTT", "qA", "qP",
    ] {
        b.add_state(name);
    }
    b.set_axiom_str("L(S(\"T*\"(<qL1,x0>,<qL2,x0>)),\"B*\"(<qL3,x0>,<qL4,x0>))")
        .unwrap();
    b.add_rule_str("qL1", "L", "<qT1s,x1>").unwrap();
    b.add_rule_str("qL2", "L", "<qT2s,x1>").unwrap();
    b.add_rule_str("qL3", "L", "<qB1s,x1>").unwrap();
    b.add_rule_str("qL4", "L", "<qB2s,x1>").unwrap();
    b.add_rule_str("qT1s", "B*", "<qTB,x1>").unwrap();
    b.add_rule_str("qT2s", "B*", "<qTs,x2>").unwrap();
    b.add_rule_str("qTs", "B*", "\"T*\"(<qTB,x1>,<qTs,x2>)")
        .unwrap();
    b.add_rule_str("qTs", "#", "#").unwrap();
    b.add_rule_str("qB1s", "B*", "<qB,x1>").unwrap();
    b.add_rule_str("qB2s", "B*", "<qBs,x2>").unwrap();
    b.add_rule_str("qBs", "B*", "\"B*\"(<qB,x1>,<qBs,x2>)")
        .unwrap();
    b.add_rule_str("qBs", "#", "#").unwrap();
    b.add_rule_str("qB", "B", "B(T(<qTT,x2>),A(<qA,x1>))")
        .unwrap();
    b.add_rule_str("qB", "#", "#").unwrap();
    b.add_rule_str("qTB", "B", "T(<qTT,x2>)").unwrap();
    b.add_rule_str("qTB", "#", "#").unwrap();
    b.add_rule_str("qTT", "T", "<qP,x1>").unwrap();
    b.add_rule_str("qA", "A", "<qP,x1>").unwrap();
    b.add_rule_str("qP", "P", "P").unwrap();
    b.add_rule_str("qP", "P'", "P'").unwrap();
    let dtop = b.build().unwrap();
    let domain = domain_dtta(&dtop, None);
    Fixture { dtop, domain }
}

/// Builds the encoded library input with `n` books — the paper's `s_n`.
/// All pcdata leaves are `P`.
pub fn library_input(n: usize) -> Tree {
    library_input_with(n, &|_, _| "P")
}

/// Builds the encoded library input with `n` books, choosing the pcdata
/// symbol (`"P"` or `"P'"`) per `(book index, field index)`; field indices
/// are 0 = author, 1 = title, 2 = year.
pub fn library_input_with(n: usize, pcdata: &dyn Fn(usize, usize) -> &'static str) -> Tree {
    let mut list = Tree::node("B*", vec![Tree::leaf_named("#"), Tree::leaf_named("#")]);
    for i in (0..n).rev() {
        let book = Tree::node(
            "B",
            vec![
                Tree::node("A", vec![Tree::leaf_named(pcdata(i, 0))]),
                Tree::node("T", vec![Tree::leaf_named(pcdata(i, 1))]),
                Tree::node("Y", vec![Tree::leaf_named(pcdata(i, 2))]),
            ],
        );
        list = Tree::node("B*", vec![book, list]);
    }
    Tree::node("L", vec![list])
}

/// The copier that turns a monadic tree of height `n` into a full binary
/// tree of height `n` — the paper's witness that characteristic samples can
/// contain exponentially large outputs (mitigated by DAGs).
pub fn monadic_to_binary() -> Fixture {
    let input = RankedAlphabet::from_pairs([("f", 1), ("e", 0)]);
    let output = RankedAlphabet::from_pairs([("g", 2), ("e", 0)]);
    let mut b = DtopBuilder::new(input.clone(), output);
    b.add_state("q");
    b.set_axiom_str("<q,x0>").unwrap();
    b.add_rule_str("q", "f", "g(<q,x1>,<q,x1>)").unwrap();
    b.add_rule_str("q", "e", "e").unwrap();
    Fixture {
        dtop: b.build().unwrap(),
        domain: Dtta::universal(input),
    }
}

/// A scalable generalization of `flip`: the root has `k` children, each a
/// list of a distinct letter `c_i`, and the transducer reverses the order
/// of the `k` lists. `min(τ)` grows linearly in `k` (k selector states +
/// k list-copier states), the root rank grows with `k`.
pub fn flip_k(k: usize) -> Fixture {
    assert!(k >= 1);
    let mut pairs: Vec<(String, usize)> = vec![("root".to_owned(), k)];
    for i in 0..k {
        pairs.push((letter(i), 2));
    }
    pairs.push(("#".to_owned(), 0));
    let alpha: RankedAlphabet = pairs.iter().map(|(n, r)| (n.as_str(), *r)).collect();

    let mut b = DtopBuilder::new(alpha.clone(), alpha.clone());
    for i in 0..k {
        b.add_state(format!("sel{i}"));
    }
    for i in 0..k {
        b.add_state(format!("copy{i}"));
    }
    let axiom_calls: Vec<String> = (0..k).map(|i| format!("<sel{i},x0>")).collect();
    b.set_axiom_str(&format!("root({})", axiom_calls.join(",")))
        .unwrap();
    for i in 0..k {
        // selector i outputs list k-1-i of the input
        let src = k - 1 - i;
        b.add_rule_str(
            &format!("sel{i}"),
            "root",
            &format!("<copy{src},x{}>", src + 1),
        )
        .unwrap();
    }
    for i in 0..k {
        let c = letter(i);
        b.add_rule_str(&format!("copy{i}"), &c, &format!("{c}(#,<copy{i},x2>)"))
            .unwrap();
        b.add_rule_str(&format!("copy{i}"), "#", "#").unwrap();
    }
    let dtop = b.build().unwrap();

    let mut d = DttaBuilder::new(alpha);
    let p0 = d.add_state("start");
    let nil = d.add_state("nil");
    let lists: Vec<_> = (0..k).map(|i| d.add_state(format!("list{i}"))).collect();
    d.add_transition(p0, Symbol::new("root"), lists.clone())
        .unwrap();
    for (i, &p) in lists.iter().enumerate() {
        d.add_transition(p, Symbol::new(&letter(i)), vec![nil, p])
            .unwrap();
        d.add_transition(p, Symbol::new("#"), vec![]).unwrap();
    }
    d.add_transition(nil, Symbol::new("#"), vec![]).unwrap();
    Fixture {
        dtop,
        domain: d.build().unwrap(),
    }
}

fn letter(i: usize) -> String {
    format!("c{i}")
}

/// A monadic relabeling family with `n` states: state `q_i` rewrites `f`
/// to `g_i` and advances to `q_{i+1 mod n}`. All states are pairwise
/// non-equivalent, so `min(τ)` has exactly `n` states.
pub fn relabel_chain(n: usize) -> Fixture {
    assert!(n >= 1);
    let input = RankedAlphabet::from_pairs([("f", 1), ("e", 0)]);
    let mut out_pairs: Vec<(String, usize)> = (0..n).map(|i| (format!("g{i}"), 1)).collect();
    out_pairs.push(("e".to_owned(), 0));
    let output: RankedAlphabet = out_pairs.iter().map(|(s, r)| (s.as_str(), *r)).collect();

    let mut b = DtopBuilder::new(input.clone(), output);
    for i in 0..n {
        b.add_state(format!("q{i}"));
    }
    b.set_axiom_str("<q0,x0>").unwrap();
    for i in 0..n {
        b.add_rule_str(
            &format!("q{i}"),
            "f",
            &format!("g{i}(<q{},x1>)", (i + 1) % n),
        )
        .unwrap();
        b.add_rule_str(&format!("q{i}"), "e", "e").unwrap();
    }
    Fixture {
        dtop: b.build().unwrap(),
        domain: Dtta::universal(input),
    }
}

/// Builds the fc/ns-encoded flip input with `n` `a`s and `m` `b`s.
pub fn flip_input(n: usize, m: usize) -> Tree {
    let mut alist = Tree::leaf_named("#");
    for _ in 0..n {
        alist = Tree::node("a", vec![Tree::leaf_named("#"), alist]);
    }
    let mut blist = Tree::leaf_named("#");
    for _ in 0..m {
        blist = Tree::node("b", vec![Tree::leaf_named("#"), blist]);
    }
    Tree::node("root", vec![alist, blist])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;

    #[test]
    fn flip_k1_matches_flip_shape() {
        let f = flip_k(1);
        assert_eq!(f.dtop.state_count(), 2);
        let input = xtt_trees::parse_tree("root(c0(#,c0(#,#)))").unwrap();
        assert!(f.domain.accepts(&input));
        let out = eval(&f.dtop, &input).unwrap();
        assert_eq!(out.to_string(), "root(c0(#,c0(#,#)))");
    }

    #[test]
    fn flip_k3_reverses_lists() {
        let f = flip_k(3);
        // lists of lengths 1, 0, 2
        let input = xtt_trees::parse_tree("root(c0(#,#),#,c2(#,c2(#,#)))").unwrap();
        assert!(f.domain.accepts(&input));
        let out = eval(&f.dtop, &input).unwrap();
        assert_eq!(out.to_string(), "root(c2(#,c2(#,#)),#,c0(#,#))");
    }

    #[test]
    fn library_translates_paper_example() {
        let f = library();
        let s2 = library_input(2);
        assert!(f.domain.accepts(&s2));
        let t2 = eval(&f.dtop, &s2).unwrap();
        let expected = "L(S(T*(T(P),T*(T(P),T*(#,#)))),B*(B(T(P),A(P)),B*(B(T(P),A(P)),B*(#,#))))";
        assert_eq!(t2.to_string(), expected);
    }

    #[test]
    fn library_empty_catalog() {
        let f = library();
        let s0 = library_input(0);
        let t0 = eval(&f.dtop, &s0).unwrap();
        assert_eq!(t0.to_string(), "L(S(T*(#,#)),B*(#,#))");
    }

    #[test]
    fn relabel_chain_cycles_labels() {
        let f = relabel_chain(3);
        let input = xtt_trees::parse_tree("f(f(f(f(e))))").unwrap();
        let out = eval(&f.dtop, &input).unwrap();
        assert_eq!(out.to_string(), "g0(g1(g2(g0(e))))");
    }

    #[test]
    fn flip_input_builder() {
        assert_eq!(flip_input(0, 0).to_string(), "root(#,#)");
        assert_eq!(flip_input(2, 1).to_string(), "root(a(#,a(#,#)),b(#,#))");
    }
}
