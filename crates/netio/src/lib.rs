//! # xtt-netio
//!
//! A dependency-free readiness layer for the serving front end: typed
//! wrappers over raw `epoll_create1`/`epoll_ctl`/`epoll_wait` and
//! `fcntl`/`pipe` syscalls, declared `extern "C"` against the platform
//! libc that `std` already links (the same no-deps discipline as
//! `xtt-serve`'s signal shim — the build environment is offline, so
//! `mio`/`libc` are not an option anyway).
//!
//! The pieces:
//!
//! * [`Poller`] — an epoll instance: [`Poller::register`] a file
//!   descriptor with a `u64` token and an [`Interest`] (readable and/or
//!   writable), [`Poller::wait`] for [`Event`]s. Registration is
//!   level-triggered: an event keeps firing while the condition holds,
//!   so interest must be switched off ([`Poller::modify`]) while a
//!   connection is parked.
//! * [`Waker`] — a nonblocking self-pipe for cross-thread wakeups:
//!   worker threads call [`Waker::wake`] to interrupt a blocked
//!   [`Poller::wait`]; the event loop registers [`Waker::fd`] and
//!   [`Waker::drain`]s it on readiness.
//! * [`read_ready`] / [`write_ready`] — nonblocking I/O helpers that
//!   fold `EINTR` retries and map `EWOULDBLOCK` and clean EOF into a
//!   typed outcome instead of an `io::Error` the caller has to sniff.
//!
//! Platform scope: the epoll backend is Linux; on other Unix platforms
//! the crate compiles but [`Poller::new`] answers
//! `io::ErrorKind::Unsupported` (the serving front end is deployed on
//! Linux, and shipping an untestable fallback would be worse than an
//! honest error). Non-Unix platforms are out of scope entirely.

mod poller;
mod sys;
mod waker;

pub use poller::{Event, Interest, Poller};
pub use waker::Waker;

use std::io::{self, Read, Write};

/// Flips `O_NONBLOCK` on a raw descriptor via `fcntl` — for descriptors
/// that are not `std::net` sockets (inherited fds, pipes), where
/// `set_nonblocking` is not available.
#[cfg(target_os = "linux")]
pub fn set_nonblocking(fd: std::os::unix::io::RawFd, nonblocking: bool) -> io::Result<()> {
    let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    let flags = if nonblocking {
        flags | sys::O_NONBLOCK
    } else {
        flags & !sys::O_NONBLOCK
    };
    if unsafe { sys::fcntl(fd, sys::F_SETFL, flags) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// What one nonblocking `read` attempt produced.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n > 0` bytes were read.
    Read(usize),
    /// The peer closed its write side (clean EOF).
    Closed,
    /// Nothing buffered; wait for the next readability event.
    WouldBlock,
}

/// One nonblocking read into `buf`, with `EINTR` folded away and
/// `WouldBlock`/EOF surfaced as values — the readiness loop treats them
/// as states, not errors.
pub fn read_ready(stream: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    loop {
        match stream.read(buf) {
            Ok(0) => return Ok(ReadOutcome::Closed),
            Ok(n) => return Ok(ReadOutcome::Read(n)),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadOutcome::WouldBlock),
            Err(e) => return Err(e),
        }
    }
}

/// What one nonblocking `write` attempt produced.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// `n > 0` bytes were accepted by the kernel.
    Wrote(usize),
    /// The socket buffer is full; wait for the next writability event.
    WouldBlock,
}

/// One nonblocking write from `buf`, with `EINTR` folded away and
/// `WouldBlock` surfaced as a value. A hard error (`EPIPE`,
/// `ECONNRESET`, …) stays an `Err` — the connection is gone.
pub fn write_ready(stream: &mut impl Write, buf: &[u8]) -> io::Result<WriteOutcome> {
    loop {
        match stream.write(buf) {
            Ok(n) => return Ok(WriteOutcome::Wrote(n)),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(WriteOutcome::WouldBlock),
            Err(e) => return Err(e),
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    /// A connected loopback pair to poll against.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readable_fires_only_once_bytes_arrive() {
        let (mut a, mut b) = pair();
        let poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "no bytes yet: {events:?}");
        let mut buf = [0u8; 8];
        assert_eq!(
            read_ready(&mut a, &mut buf).unwrap(),
            ReadOutcome::WouldBlock
        );

        b.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert_eq!(read_ready(&mut a, &mut buf).unwrap(), ReadOutcome::Read(2));

        // Level-triggered: nothing left to read, so no more events.
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
        poller.deregister(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn writable_fires_immediately_and_eof_reports_closed() {
        let (a, b) = pair();
        let poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 1, Interest::WRITABLE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Peer goes away: interest switched to readable sees the hangup.
        poller.modify(a.as_raw_fd(), 1, Interest::READABLE).unwrap();
        drop(b);
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.token == 1 && (e.readable || e.read_closed || e.hangup)),
            "{events:?}"
        );
        let mut a = a;
        let mut buf = [0u8; 8];
        assert_eq!(read_ready(&mut a, &mut buf).unwrap(), ReadOutcome::Closed);
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller
            .register(waker.fd(), u64::MAX, Interest::READABLE)
            .unwrap();

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
            w.wake().unwrap(); // coalesces, must not error or block
        });
        let t0 = Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "wait did not wake");
        assert!(events.iter().any(|e| e.token == u64::MAX && e.readable));
        t.join().unwrap(); // both wakes have landed before the drain
        waker.drain();
        // Drained: the next wait times out instead of spinning.
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn write_ready_reports_wouldblock_on_a_full_socket() {
        let (mut a, _b) = pair();
        let chunk = [0u8; 64 * 1024];
        let mut total = 0usize;
        while let WriteOutcome::Wrote(n) = write_ready(&mut a, &chunk).unwrap() {
            total += n;
            assert!(total < 1 << 30, "socket buffer never filled");
        }
        assert!(total > 0);
    }
}
