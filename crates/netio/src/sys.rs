//! The raw syscall surface, declared against the libc that `std` links.
//!
//! Nothing here is public outside the crate: [`crate::Poller`] and
//! [`crate::Waker`] are the typed API. The declarations mirror the
//! kernel ABI exactly; everything returns `-1`-with-`errno`, converted
//! to `io::Error` by the callers via `io::Error::last_os_error()`.

#![cfg(target_os = "linux")]

use std::os::raw::{c_int, c_void};

pub const EPOLL_CLOEXEC: c_int = 0o2000000;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (half-close); orthogonal to `EPOLLHUP`.
pub const EPOLLRDHUP: u32 = 0x2000;

pub const O_NONBLOCK: c_int = 0o4000;
pub const O_CLOEXEC: c_int = 0o2000000;

pub const F_GETFL: c_int = 3;
pub const F_SETFL: c_int = 4;

/// `struct epoll_event`. The kernel ABI packs it on x86-64 (12 bytes);
/// other architectures use natural alignment (16 bytes) — mirroring
/// glibc's `__attribute__((packed))` arrangement.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut EpollEvent,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn pipe2(pipefd: *mut c_int, flags: c_int) -> c_int;
    /// Variadic in C; the `F_GETFL`/`F_SETFL` uses here pass one `int`
    /// argument, which the 64-bit SysV and AAPCS calling conventions
    /// accept through a fixed three-`int` declaration.
    pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}
