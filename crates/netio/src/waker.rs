//! The cross-thread wakeup pipe.
//!
//! A [`Waker`] is a nonblocking self-pipe: worker threads [`Waker::wake`]
//! it to interrupt the event loop's blocked `epoll_wait`; the loop
//! registers [`Waker::fd`] for read interest and [`Waker::drain`]s it on
//! readiness. Wakes coalesce — once the pipe holds a byte, further
//! wakes hit `EAGAIN` and are dropped, which is exactly the semantics a
//! level-triggered poller wants (one pending wake is as good as many).

#[cfg(target_os = "linux")]
mod imp {
    use crate::sys;
    use std::io;
    use std::os::raw::c_void;
    use std::os::unix::io::RawFd;

    pub struct Waker {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let mut fds = [0i32; 2];
            let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Waker {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        /// The read end, for [`crate::Poller::register`].
        pub fn fd(&self) -> RawFd {
            self.read_fd
        }

        /// Interrupts a blocked wait. A full pipe means a wake is
        /// already pending — coalesced, not an error.
        pub fn wake(&self) -> io::Result<()> {
            let byte = [1u8];
            let rc = unsafe { sys::write(self.write_fd, byte.as_ptr() as *const c_void, 1) };
            if rc < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::WouldBlock {
                    return Ok(());
                }
                return Err(e);
            }
            Ok(())
        }

        /// Consumes all pending wake bytes (the loop calls this once per
        /// readiness event so the level-triggered poller goes quiet).
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let rc =
                    unsafe { sys::read(self.read_fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
                if rc <= 0 {
                    return;
                }
            }
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                sys::close(self.read_fd);
                sys::close(self.write_fd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::io;
    use std::os::unix::io::RawFd;

    /// Non-Linux stub; see the crate docs for the platform scope.
    pub struct Waker {}

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "xtt-netio requires Linux epoll",
            ))
        }

        pub fn fd(&self) -> RawFd {
            unreachable!("Waker::new never succeeds off Linux")
        }

        pub fn wake(&self) -> io::Result<()> {
            unreachable!("Waker::new never succeeds off Linux")
        }

        pub fn drain(&self) {
            unreachable!("Waker::new never succeeds off Linux")
        }
    }
}

pub use imp::Waker;
