//! The typed epoll wrapper: register descriptors with an [`Interest`],
//! wait for [`Event`]s.

/// What readiness a registration asks for. Hangup and error conditions
/// are always reported; only read/write interest is opt-in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest(u8);

impl Interest {
    /// Report nothing but hangups/errors (a parked connection).
    pub const NONE: Interest = Interest(0);
    pub const READABLE: Interest = Interest(1);
    pub const WRITABLE: Interest = Interest(2);
    pub const BOTH: Interest = Interest(3);

    pub fn readable(self) -> bool {
        self.0 & 1 != 0
    }

    pub fn writable(self) -> bool {
        self.0 & 2 != 0
    }

    /// The union of two interests.
    pub fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

/// One readiness event, already decoded from the raw bitmask.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// `EPOLLRDHUP`: the peer closed its write half. A read will still
    /// drain whatever is buffered, then report EOF.
    pub read_closed: bool,
    /// `EPOLLHUP`: the connection is fully gone.
    pub hangup: bool,
    /// `EPOLLERR`: a pending socket error; the next I/O call surfaces it.
    pub error: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, Interest};
    use crate::sys;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::time::{Duration, Instant};

    /// An owned epoll instance. All methods take `&self`: the kernel
    /// serializes `epoll_ctl`, and `epoll_wait` is intended to be called
    /// from the single event-loop thread.
    ///
    /// The poller keeps its own cumulative account of time spent blocked
    /// in `epoll_wait` — the event loop's "idle" time — so observability
    /// layers can report loop utilization without wrapping every call.
    pub struct Poller {
        epfd: RawFd,
        wait_nanos: AtomicU64,
        waits: AtomicU64,
    }

    // The epoll fd is just an integer capability; waits happen on one
    // thread while register/modify may come from others.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                wait_nanos: AtomicU64::new(0),
                waits: AtomicU64::new(0),
            })
        }

        /// Cumulative nanoseconds spent blocked inside `epoll_wait`.
        pub fn total_wait_nanos(&self) -> u64 {
            self.wait_nanos.load(Relaxed)
        }

        /// Number of `epoll_wait` calls completed.
        pub fn wait_count(&self) -> u64 {
            self.waits.load(Relaxed)
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut mask = sys::EPOLLRDHUP;
            if interest.readable() {
                mask |= sys::EPOLLIN;
            }
            if interest.writable() {
                mask |= sys::EPOLLOUT;
            }
            let mut ev = sys::EpollEvent {
                events: mask,
                data: token,
            };
            let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let rc =
                unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Blocks for readiness, filling `events` (cleared first).
        /// `None` waits indefinitely. Returns the event count; `EINTR`
        /// reports as zero events rather than an error, so signal
        /// arrival naturally falls through to the caller's loop checks.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
            };
            const MAX_EVENTS: usize = 256;
            let mut raw = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let blocked = Instant::now();
            let n = unsafe {
                sys::epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms)
            };
            self.wait_nanos
                .fetch_add(blocked.elapsed().as_nanos() as u64, Relaxed);
            self.waits.fetch_add(1, Relaxed);
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for slot in raw.iter().take(n as usize) {
                // Copy out of the (possibly packed) ABI struct before use.
                let ev = *slot;
                let mask = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: mask & sys::EPOLLIN != 0,
                    writable: mask & sys::EPOLLOUT != 0,
                    read_closed: mask & sys::EPOLLRDHUP != 0,
                    hangup: mask & sys::EPOLLHUP != 0,
                    error: mask & sys::EPOLLERR != 0,
                });
            }
            Ok(events.len())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { sys::close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// Non-Linux stub: compiles everywhere Unix, answers `Unsupported`
    /// at construction (see the crate docs for the platform scope).
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "xtt-netio requires Linux epoll",
            ))
        }

        pub fn total_wait_nanos(&self) -> u64 {
            0
        }

        pub fn wait_count(&self) -> u64 {
            0
        }

        pub fn register(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("Poller::new never succeeds off Linux")
        }

        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("Poller::new never succeeds off Linux")
        }

        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            unreachable!("Poller::new never succeeds off Linux")
        }

        pub fn wait(
            &self,
            _events: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<usize> {
            unreachable!("Poller::new never succeeds off Linux")
        }
    }
}

pub use imp::Poller;
