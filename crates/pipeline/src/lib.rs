//! # xtt-pipeline
//!
//! Composition pipelines over learned dtops. The paper's transducer class
//! is closed under composition (Engelfriet 1975, the paper's reference
//! [8]); this crate turns that theorem into a serving feature: a **named
//! pipeline** is a sequence of registered transducers τₙ ∘ … ∘ τ₁ plus an
//! optional input schema, planned once into an executable form.
//!
//! * [`plan`] builds a [`Plan`]: it schema-specializes each stage
//!   ([`specialize`], the Martens & Neven fixed-input-schema restriction),
//!   composes and normalizes the product, compiles **both** execution
//!   strategies — one statically composed [`CompiledDtop`] vs a chain of
//!   per-stage evaluators cascading committed output events — and picks
//!   the faster by racing them on a probe corpus drawn from the
//!   pipeline's own domain ([`StrategyChoice::Auto`]; explicit override
//!   available).
//! * Every plan carries one shared guard — the exact **chain domain**
//!   `⋂ᵢ dom(τᵢ ∘ … ∘ τ₁) ∩ L(schema)`, strictly smaller than
//!   `dom(composed)` when a later stage deletes part of an earlier
//!   stage's partial output — so both strategies accept the same
//!   language and reject at the same node, the property the
//!   differential proptests pin down.
//! * [`PlanCache`] memoizes plans per pipeline fingerprint with exact
//!   rendering verification, reusing the engine's LRU.
//!
//! Execution happens in `xtt-engine`: [`Plan::exec_stages`] feeds
//! [`xtt_engine::Engine::transform_chain`] and friends; the composed
//! strategy is simply a chain of length one, so one entry point serves
//! both.
//!
//! [`CompiledDtop`]: xtt_engine::CompiledDtop

pub mod cache;
pub mod plan;
pub mod specialize;

pub use cache::PlanCache;
pub use plan::{
    pipeline_fingerprint, pipeline_rendering, plan, Plan, PlanError, PlanReport, StageDef,
    Strategy, StrategyChoice,
};
pub use specialize::{specialize_to_schema, specialize_to_symbols, Specialized};
