//! Schema specialization of dtops — the Martens & Neven fixed-input-schema
//! setting ("On Typechecking Top-Down XML Transformations"): when the
//! inputs of a transducer are promised to come from a schema language, only
//! the `(state, symbol)` pairs reachable in the product of the transducer's
//! state space with the schema automaton can ever fire. Dropping the rest
//! is dead-rule elimination: the compiled jump table shrinks (fewer states
//! × fewer live rows) while behavior on schema-valid inputs is untouched.
//!
//! Two granularities:
//!
//! * [`specialize_to_schema`] — exact product reachability against a DTTA.
//!   Used for the pipeline's first stage (and for the statically composed
//!   transducer), whose inputs are schema-constrained directly.
//! * [`specialize_to_symbols`] — reachability with input symbols restricted
//!   to a set. Later pipeline stages consume the previous stage's *output*,
//!   whose exact language is not regular in general (dtops copy); the set
//!   of symbols a specialized stage can emit is a sound, cheap
//!   over-approximation that still kills whole alphabet regions.

use std::collections::{BTreeSet, HashMap, HashSet};

use xtt_automata::{Dtta, StateId};
use xtt_transducer::{Dtop, DtopError, QId, Rhs};
use xtt_trees::Symbol;

/// A specialized transducer plus the bookkeeping the planner reports on.
pub struct Specialized {
    pub dtop: Dtop,
    /// Output symbols any surviving rule or the axiom can emit — an
    /// over-approximation of the symbols occurring in specialized outputs,
    /// fed to the next stage's [`specialize_to_symbols`].
    pub emitted: BTreeSet<Symbol>,
    /// Rule count before/after, for shrink reporting.
    pub rules_before: usize,
    pub rules_after: usize,
}

/// Restricts `m` to the `(state, symbol)` pairs reachable when inputs are
/// drawn from `L(schema)`. On every `t ∈ L(schema)`,
/// `⟦specialized⟧(t) = ⟦m⟧(t)` (including both being undefined); outside
/// the schema the domain may shrink — the pipeline guard rejects those
/// inputs before evaluation either way.
pub fn specialize_to_schema(m: &Dtop, schema: &Dtta) -> Result<Specialized, DtopError> {
    // BFS over product pairs (transducer state, schema state).
    let mut seen: HashSet<(QId, StateId)> = HashSet::new();
    let mut queue: Vec<(QId, StateId)> = Vec::new();
    for q in m.axiom().called_states() {
        if seen.insert((q, schema.initial())) {
            queue.push((q, schema.initial()));
        }
    }
    let mut kept: HashSet<(QId, Symbol)> = HashSet::new();
    while let Some((q, p)) = queue.pop() {
        for f in m.enabled_symbols(q) {
            let Some(child_states) = schema.transition(p, f) else {
                continue; // schema forbids f here: rule is dead
            };
            kept.insert((q, f));
            let child_states = child_states.to_vec();
            for (_, q2, child) in m.rule(q, f).expect("enabled").calls() {
                let pair = (q2, child_states[child]);
                if seen.insert(pair) {
                    queue.push(pair);
                }
            }
        }
    }
    let live: BTreeSet<QId> = seen.iter().map(|&(q, _)| q).collect();
    rebuild(m, &live, &kept)
}

/// Restricts `m` to the `(state, symbol)` pairs reachable when input
/// symbols are drawn from `allowed`. Sound whenever every input tree's
/// symbols are a subset of `allowed` — the contract the planner maintains
/// by feeding each stage the previous stage's `emitted` set.
pub fn specialize_to_symbols(
    m: &Dtop,
    allowed: &BTreeSet<Symbol>,
) -> Result<Specialized, DtopError> {
    let mut seen: HashSet<QId> = m.axiom().called_states().into_iter().collect();
    let mut queue: Vec<QId> = seen.iter().copied().collect();
    let mut kept: HashSet<(QId, Symbol)> = HashSet::new();
    while let Some(q) = queue.pop() {
        for f in m.enabled_symbols(q) {
            if !allowed.contains(&f) {
                continue;
            }
            kept.insert((q, f));
            for (_, q2, _) in m.rule(q, f).expect("enabled").calls() {
                if seen.insert(q2) {
                    queue.push(q2);
                }
            }
        }
    }
    let live: BTreeSet<QId> = seen.into_iter().collect();
    rebuild(m, &live, &kept)
}

/// Rebuilds `m` keeping only `live` states (renumbered densely) and `kept`
/// rules, and collects the emitted-symbol over-approximation.
fn rebuild(
    m: &Dtop,
    live: &BTreeSet<QId>,
    kept: &HashSet<(QId, Symbol)>,
) -> Result<Specialized, DtopError> {
    let mut b = Dtop::builder(m.input().clone(), m.output().clone());
    let mut renumber: HashMap<QId, QId> = HashMap::new();
    for &q in live {
        renumber.insert(q, b.add_state(m.state_name(q)));
    }
    // A degenerate schema can kill every state; keep the transducer
    // well-formed with one dead state for the axiom to point at.
    if renumber.is_empty() {
        for q in m.axiom().called_states() {
            renumber.insert(q, b.add_state(m.state_name(q)));
        }
    }
    let map = |q: QId| renumber[&q];
    let mut emitted: BTreeSet<Symbol> = BTreeSet::new();
    collect_out_symbols(m.axiom(), &mut emitted);
    b.set_axiom(m.axiom().map_states(&mut |q| map(q)));
    for &q in live {
        for f in m.enabled_symbols(q) {
            if !kept.contains(&(q, f)) {
                continue;
            }
            let rhs = m.rule(q, f).expect("enabled");
            collect_out_symbols(rhs, &mut emitted);
            b.add_rule(map(q), f, rhs.map_states(&mut |q2| map(q2)))?;
        }
    }
    Ok(Specialized {
        dtop: b.build()?,
        emitted,
        rules_before: m.rule_count(),
        rules_after: kept.len(),
    })
}

fn collect_out_symbols(rhs: &Rhs, out: &mut BTreeSet<Symbol>) {
    match rhs {
        Rhs::Call { .. } => {}
        Rhs::Out(sym, kids) => {
            out.insert(*sym);
            for k in kids {
                collect_out_symbols(k, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_automata::{Dtta, DttaBuilder};
    use xtt_transducer::{eval, examples};
    use xtt_trees::gen::enumerate_trees;

    /// Schema over flip's input that forbids the `a`-list entirely: the
    /// root's left child must be `#`, the right child a `b`-list. Under
    /// it, flip's `q4`-on-`a` rule can never fire.
    fn empty_a_list_schema() -> Dtta {
        let fix = examples::flip();
        let alpha = fix.dtop.input().clone();
        let sym = |n: &str| {
            *alpha
                .symbols()
                .iter()
                .find(|s| s.name() == n)
                .expect("symbol")
        };
        let mut b = DttaBuilder::new(alpha.clone());
        let top = b.add_state("top");
        let leaf = b.add_state("leaf");
        let blist = b.add_state("blist");
        b.set_initial(top);
        b.add_transition(top, sym("root"), vec![leaf, blist])
            .unwrap();
        b.add_transition(leaf, sym("#"), vec![]).unwrap();
        b.add_transition(blist, sym("b"), vec![leaf, blist])
            .unwrap();
        b.add_transition(blist, sym("#"), vec![]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn schema_specialization_preserves_schema_valid_behavior() {
        let fix = examples::flip();
        let schema = empty_a_list_schema();
        let sp = specialize_to_schema(&fix.dtop, &schema).unwrap();
        assert!(
            sp.rules_after < sp.rules_before,
            "expected dead rules: {} -> {}",
            sp.rules_before,
            sp.rules_after
        );
        for t in enumerate_trees(fix.dtop.input(), 200, 9) {
            if schema.accepts(&t) {
                assert_eq!(eval(&sp.dtop, &t), eval(&fix.dtop, &t), "on {t}");
            }
        }
    }

    #[test]
    fn symbol_specialization_is_sound_on_restricted_inputs() {
        let fix = examples::flip();
        let alpha = fix.dtop.input().clone();
        let allowed: BTreeSet<Symbol> = alpha
            .symbols()
            .iter()
            .copied()
            .filter(|s| s.name() != "b")
            .collect();
        let sp = specialize_to_symbols(&fix.dtop, &allowed).unwrap();
        for t in enumerate_trees(&alpha, 200, 9) {
            let only_allowed = t.preorder().all(|n| allowed.contains(&n.symbol()));
            if only_allowed {
                assert_eq!(eval(&sp.dtop, &t), eval(&fix.dtop, &t), "on {t}");
            }
        }
    }
}
