//! The plan cache: planning runs a product construction, a normalization
//! fixpoint, and a timing probe — far too much per request. Plans are
//! cached per pipeline *fingerprint* (stage names + structural
//! fingerprints + schema + strategy choice), reusing the engine's
//! collision-checked [`LruCache`], so re-registering a pipeline with an
//! unchanged definition is free and any change to a stage's rules misses.

use std::sync::{Arc, Mutex};

use xtt_automata::Dtta;
use xtt_engine::{CacheStats, LruCache};

use crate::plan::{
    pipeline_fingerprint, pipeline_rendering, plan, Plan, PlanError, StageDef, StrategyChoice,
};

pub struct PlanCache {
    inner: Mutex<LruCache<Arc<Plan>>>,
    capacity: usize,
}

impl PlanCache {
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(LruCache::new()),
            capacity: capacity.max(1),
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats()
    }

    /// The cached plan for this exact pipeline, planning on a miss. A
    /// failed plan caches nothing (the next attempt re-plans).
    pub fn get_or_plan(
        &self,
        stages: &[StageDef],
        schema: Option<&Dtta>,
        choice: StrategyChoice,
    ) -> Result<Arc<Plan>, PlanError> {
        let rendering = pipeline_rendering(stages, schema, choice);
        let fp = pipeline_fingerprint(stages, schema, choice);
        self.inner
            .lock()
            .unwrap()
            .get_or_insert_with(fp, rendering, self.capacity, || {
                plan(stages, schema, choice).map(Arc::new)
            })
    }
}
