//! `xtt-transform` — transform newline-delimited documents at throughput.
//!
//! ```console
//! $ printf 'root(a(#,#),b(#,#))\n' | xtt-transform --example flip
//! root(b(#,#),a(#,#))
//! $ xtt-transform --example flip --demo 100000 --mode compiled --quiet
//! ... throughput stats on stderr ...
//! ```
//!
//! One document per input line; results (or `!error: …`) one per output
//! line, in input order. `--demo N` generates a synthetic corpus for the
//! chosen example instead of reading stdin, which is how the CI smoke
//! test and quick benchmarking run it.

use std::io::{BufWriter, Read, Write};
use std::time::Instant;

use xtt_engine::{tree_to_xml, DocFormat, Engine, EngineOptions, EvalMode};
use xtt_obs::{EvalObserver, Trace};
use xtt_pipeline::{plan, StageDef, StrategyChoice};
use xtt_transducer::{examples, Dtop, DtopBuilder};
use xtt_trees::{RankedAlphabet, Tree};

const USAGE: &str = "\
xtt-transform: apply a dtop to newline-delimited documents

USAGE: xtt-transform [OPTIONS]

OPTIONS:
  --example <flip|library|copy|prune>  built-in transducer  [default: flip]
  --pipeline <t1,t2[,t3]>        run a composition pipeline of built-in
                                 transducers (τₙ∘…∘τ₁, t1 applied first)
                                 instead of a single --example; the plan
                                 chooser picks composed vs chained
                                 execution (see --pipeline-strategy)
  --pipeline-strategy <auto|composed|chained>
                                 override the plan chooser  [default: auto]
  --mode <compiled|stream|dag|walk>  evaluator              [default: compiled]
  --format <term|xml|xml+attrs>  document syntax            [default: term]
                                 (xml+attrs maps attributes into the
                                 ranked encoding as an @attrs child)
  --encoding <fcns>              treat documents as genuine unranked XML
                                 through the named ranked encoding
                                 (overrides --format; streaming mode
                                 encodes off the tokenizer with no
                                 intermediate tree)
  --jobs <N>                     worker threads (0 = auto)  [default: 0]
  --demo <N>                     generate N demo documents instead of stdin
  --validate                     guarded evaluation: reject out-of-domain
                                 documents with a typed violation path
  --stream-output                event-driven emission: output bytes are
                                 flushed as committed (order-preserving
                                 regions stream before the input ends;
                                 evaluation is always streaming mode);
                                 emission stats land on stderr
  --profile                      aggregate per-stage pipeline timing
                                 (tokenize/encode/guard/eval/emit) across
                                 the whole run, printed on stderr
  --quiet                        suppress per-document output
  --help                         print this help
";

struct Args {
    example: String,
    pipeline: Option<Vec<String>>,
    pipeline_strategy: StrategyChoice,
    mode: EvalMode,
    format: DocFormat,
    encoding: Option<String>,
    jobs: usize,
    demo: Option<usize>,
    validate: bool,
    stream_output: bool,
    profile: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        example: "flip".to_owned(),
        pipeline: None,
        pipeline_strategy: StrategyChoice::Auto,
        mode: EvalMode::Compiled,
        format: DocFormat::Term,
        encoding: None,
        jobs: 0,
        demo: None,
        validate: false,
        stream_output: false,
        profile: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--example" => args.example = value("--example")?,
            "--pipeline" => {
                let list = value("--pipeline")?;
                let names: Vec<String> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
                if names.is_empty() {
                    return Err("--pipeline needs at least one stage".to_owned());
                }
                args.pipeline = Some(names);
            }
            "--pipeline-strategy" => {
                let name = value("--pipeline-strategy")?;
                args.pipeline_strategy = StrategyChoice::parse(&name)
                    .ok_or_else(|| format!("unknown strategy '{name}'"))?;
            }
            "--mode" => {
                let name = value("--mode")?;
                args.mode =
                    EvalMode::parse(&name).ok_or_else(|| format!("unknown mode '{name}'"))?;
            }
            "--format" => {
                let name = value("--format")?;
                args.format =
                    DocFormat::parse(&name).ok_or_else(|| format!("unknown format '{name}'"))?;
            }
            "--encoding" => {
                let name = value("--encoding")?;
                if name != "fcns" {
                    return Err(format!(
                        "unknown encoding '{name}' (the CLI supports fcns; DTD-based \
                         encodings are served via xtt-serve's PUT /encodings)"
                    ));
                }
                args.encoding = Some(name);
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs value".to_owned())?
            }
            "--demo" => {
                args.demo = Some(
                    value("--demo")?
                        .parse()
                        .map_err(|_| "bad --demo value".to_owned())?,
                )
            }
            "--validate" => args.validate = true,
            "--stream-output" => args.stream_output = true,
            "--profile" => args.profile = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    // --encoding overrides --format regardless of argument order.
    if let Some(name) = &args.encoding {
        args.format = DocFormat::parse(name).expect("validated encoding name");
    }
    Ok(args)
}

fn example_dtop(name: &str) -> Result<Dtop, String> {
    match name {
        "flip" => Ok(examples::flip().dtop),
        "library" => Ok(examples::library().dtop),
        "copy" => Ok(examples::monadic_to_binary().dtop),
        "prune" => Ok(prune_dtop()),
        other => Err(format!(
            "unknown example '{other}' (expected flip, library, copy, or prune)"
        )),
    }
}

/// A dtop over the fc/ns encoding: drop every `<b>` element (with its
/// whole subtree — a genuine deletion the streaming skip fast path
/// exercises), keep everything else. Drive it with `--encoding fcns`.
fn prune_dtop() -> Dtop {
    let alpha =
        RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("pcdata", 2), ("#", 0)]);
    let mut b = DtopBuilder::new(alpha.clone(), alpha);
    b.add_state("q0");
    b.add_state("q");
    b.set_axiom_str("<q0,x0>").expect("axiom parses");
    b.add_rule_str("q0", "root", "root(<q,x1>,<q,x2>)")
        .expect("rule parses");
    b.add_rule_str("q", "a", "a(<q,x1>,<q,x2>)").expect("rule");
    b.add_rule_str("q", "b", "<q,x2>").expect("rule");
    b.add_rule_str("q", "pcdata", "pcdata(#,<q,x2>)")
        .expect("rule");
    b.add_rule_str("q", "#", "#").expect("rule");
    b.build().expect("prune dtop is well-formed")
}

fn demo_tree(example: &str, i: usize) -> Tree {
    match example {
        "library" => examples::library_input(i % 6 + 1),
        "copy" => {
            let mut t = Tree::leaf_named("e");
            for _ in 0..(i % 12 + 1) {
                t = Tree::node("f", vec![t]);
            }
            t
        }
        _ => examples::flip_input(i % 8 + 1, i % 5 + 1),
    }
}

/// Demo documents for the encoded (genuine unranked XML) path.
fn demo_xml(i: usize) -> String {
    let depth = i % 4 + 1;
    // The deleted <b> content *starts with an element*, so the encoded
    // skip fast path engages (a deleted region opening on text falls
    // back to event-level skipping).
    format!(
        "<root>{}{}<b><a>deleted text</a><a/></b>{}{}</root>",
        "<a>".repeat(depth),
        "</a>".repeat(depth),
        "<a/>".repeat(i % 3),
        "<b/>".repeat(i % 2 + 1),
    )
}

fn demo_doc(example: &str, i: usize, format: &DocFormat) -> String {
    match format {
        DocFormat::Term => demo_tree(example, i).to_string(),
        // Attribute-free documents encode identically in both XML forms.
        DocFormat::Xml | DocFormat::XmlAttrs => tree_to_xml(&demo_tree(example, i)),
        DocFormat::Encoded(_) => demo_xml(i),
    }
}

/// `--stream-output`: each document is driven tokenizer → evaluator →
/// stdout in one pass; committed output prefixes are written (and
/// flushed) before the document — let alone the batch — completes.
/// Failures still answer positionally (`!error:` lines, after a newline
/// when a partial prefix is already out). Emission stats go to stderr.
fn stream_output(engine: &Engine, args: &Args, dtop: &Dtop, docs: &[String], in_bytes: usize) {
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let mut sink: &mut dyn Write = &mut out;
    let mut null = std::io::sink();
    if args.quiet {
        sink = &mut null;
    }
    let mut trace = args.profile.then(|| Trace::new(0));
    let t0 = Instant::now();
    let mut failures = 0usize;
    let mut early: u64 = 0;
    let mut total: u64 = 0;
    let mut peak_buffered: u64 = 0;
    for doc in docs {
        let mut counted = CountingWriter {
            inner: &mut sink,
            bytes: 0,
        };
        let obs = trace.as_mut().map(|t| t as &mut dyn EvalObserver);
        match engine.transform_streaming_observed(
            dtop,
            doc,
            args.format.clone(),
            args.validate,
            &mut counted,
            obs,
        ) {
            Ok(outcome) => {
                early += outcome.events_emitted_early;
                total += outcome.events_total;
                peak_buffered = peak_buffered.max(outcome.peak_buffered_frames as u64);
                writeln!(sink).expect("write stdout");
            }
            Err(e) => {
                failures += 1;
                let sep = if counted.bytes > 0 { "\n" } else { "" };
                writeln!(sink, "{sep}!error: {e}").expect("write stdout");
            }
        }
        sink.flush().expect("flush stdout");
    }
    let elapsed = t0.elapsed();
    let secs = elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "{} docs ({} ok, {} failed) in {:.3}s — {:.0} docs/s, {:.2} MB/s in | \
         streamed: {early}/{total} events early, peak buffered frames {peak_buffered}, \
         skipped subtrees {}",
        docs.len(),
        docs.len() - failures,
        failures,
        secs,
        docs.len() as f64 / secs,
        in_bytes as f64 / secs / 1e6,
        engine.skipped_subtrees(),
    );
    if let Some(t) = &trace {
        eprintln!(
            "pipeline profile: {} total_us={}",
            t.breakdown_micros(),
            t.total().as_micros(),
        );
    }
}

/// `--pipeline`: plan the composition (strategy per `--pipeline-strategy`)
/// and run every document through the chain entry points. The plan line on
/// stderr shows what the chooser measured and picked.
fn run_pipeline(engine: &Engine, args: &Args, names: &[String], docs: &[String], in_bytes: usize) {
    let mut stages = Vec::with_capacity(names.len());
    for name in names {
        match example_dtop(name) {
            Ok(d) => stages.push(StageDef {
                name: name.clone(),
                dtop: std::sync::Arc::new(d),
            }),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    let plan = match plan(&stages, None, args.pipeline_strategy) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: planning pipeline: {e}");
            std::process::exit(2);
        }
    };
    let report = &plan.report;
    eprintln!(
        "pipeline {}: strategy {}{} (probe {} docs: composed {}ns vs chained {}ns)",
        names.join(","),
        report.strategy.as_str(),
        if report.forced { " [forced]" } else { "" },
        report.probe_docs,
        report.composed_probe_ns,
        report.chained_probe_ns,
    );
    let exec = plan.exec_stages();
    let guard = args.validate.then(|| plan.guard());

    let t0 = Instant::now();
    let mut failures = 0usize;
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    if args.stream_output {
        let mut sink: &mut dyn Write = &mut out;
        let mut null = std::io::sink();
        if args.quiet {
            sink = &mut null;
        }
        for doc in docs {
            let mut counted = CountingWriter {
                inner: &mut sink,
                bytes: 0,
            };
            match engine.transform_streaming_chain(
                exec,
                doc,
                args.format.clone(),
                guard,
                &mut counted,
                None,
            ) {
                Ok(_) => writeln!(sink).expect("write stdout"),
                Err(e) => {
                    failures += 1;
                    let sep = if counted.bytes > 0 { "\n" } else { "" };
                    writeln!(sink, "{sep}!error: {e}").expect("write stdout");
                }
            }
            sink.flush().expect("flush stdout");
        }
    } else {
        let results =
            engine.transform_batch_chain(exec, docs, args.mode, args.format.clone(), guard, None);
        for result in &results {
            match result {
                Ok(text) => {
                    if !args.quiet {
                        writeln!(out, "{text}").expect("write stdout");
                    }
                }
                Err(e) => {
                    failures += 1;
                    if !args.quiet {
                        writeln!(out, "!error: {e}").expect("write stdout");
                    }
                }
            }
        }
        out.flush().expect("flush stdout");
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    eprintln!(
        "{} docs ({} ok, {} failed) in {:.3}s — {:.0} docs/s, {:.2} MB/s in",
        docs.len(),
        docs.len() - failures,
        failures,
        secs,
        docs.len() as f64 / secs,
        in_bytes as f64 / secs / 1e6,
    );
}

/// Tracks whether a failing document already flushed a partial prefix.
struct CountingWriter<'a> {
    inner: &'a mut dyn Write,
    bytes: u64,
}

impl Write for CountingWriter<'_> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(data)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let dtop = match example_dtop(&args.example) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let docs: Vec<String> = match args.demo {
        Some(n) => (0..n)
            .map(|i| demo_doc(&args.example, i, &args.format))
            .collect(),
        None => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("error: stdin is not valid UTF-8");
                std::process::exit(2);
            }
            buf.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(str::to_owned)
                .collect()
        }
    };

    let engine = Engine::new(EngineOptions {
        workers: args.jobs,
        mode: args.mode,
        format: args.format.clone(),
        validate: args.validate,
        ..EngineOptions::default()
    });

    let in_bytes: usize = docs.iter().map(String::len).sum();

    if let Some(names) = args.pipeline.clone() {
        run_pipeline(&engine, &args, &names, &docs, in_bytes);
        return;
    }

    if args.stream_output {
        stream_output(&engine, &args, &dtop, &docs, in_bytes);
        return;
    }

    let mut trace = args.profile.then(|| Trace::new(0));
    let t0 = Instant::now();
    let results = match trace.as_mut() {
        Some(t) => engine.transform_batch_observed(
            &dtop,
            &docs,
            args.mode,
            args.format.clone(),
            args.validate,
            Some(t as &mut dyn EvalObserver),
        ),
        None => engine.transform_batch(&dtop, &docs),
    };
    let elapsed = t0.elapsed();

    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let mut failures = 0usize;
    for result in &results {
        match result {
            Ok(text) => {
                if !args.quiet {
                    writeln!(out, "{text}").expect("write stdout");
                }
            }
            Err(e) => {
                failures += 1;
                if !args.quiet {
                    writeln!(out, "!error: {e}").expect("write stdout");
                }
            }
        }
    }
    out.flush().expect("flush stdout");

    let secs = elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "{} docs ({} ok, {} failed) in {:.3}s — {:.0} docs/s, {:.2} MB/s in",
        docs.len(),
        docs.len() - failures,
        failures,
        secs,
        docs.len() as f64 / secs,
        in_bytes as f64 / secs / 1e6,
    );
    if let Some(t) = &trace {
        eprintln!(
            "pipeline profile: {} total_us={}",
            t.breakdown_micros(),
            t.total().as_micros(),
        );
    }
}
