//! Pipeline planning: τₙ ∘ … ∘ τ₁ (+ optional input schema) → an
//! executable plan.
//!
//! Two execution strategies realize the same transduction:
//!
//! * **Composed** — fold [`xtt_transducer::compose`] over the stages,
//!   earliest-normalize + minimize the product (PR 4's normal form), and
//!   compile ONE [`CompiledDtop`]. Each input event is processed once;
//!   planning pays the product construction up front.
//! * **Chained** — compile each stage separately and cascade committed
//!   output events from stage *i* into stage *i+1*'s push evaluator
//!   ([`xtt_engine::ChainedEvaluator`]) without materializing intermediate
//!   trees. Planning is cheap; runtime pays one evaluator per stage.
//!
//! The planner measures both on a probe corpus sampled from the pipeline's
//! own domain and picks the faster (an explicit [`StrategyChoice`]
//! overrides). Either way the plan carries a single **guard**: the exact
//! *chain* domain `⋂ᵢ dom(Cᵢ)` over the composed prefixes `Cᵢ = τᵢ∘…∘τ₁`,
//! intersected with the schema when present. The final composed machine's
//! domain alone would over-accept — when a later stage deletes part of an
//! earlier stage's output the product never checks the earlier stage's
//! partiality there — so the prefix intersection is what makes both
//! strategies accept exactly the same language and reject at exactly the
//! same node.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use xtt_automata::{enumerate_language, is_empty, trim, Dtta};
use xtt_engine::{
    compile, fingerprint, ChainStage, ChainedEvaluator, CompileError, CompiledDtop, IterEvents,
    TreeCollector,
};
use xtt_transducer::{
    canonical_number, chain_domain_raw, compose, minimize, to_earliest, Dtop, DtopError, NormError,
};
use xtt_trees::Tree;
use xtt_typecheck::{guard_from_domain, CompiledDtta, TypecheckError};

use crate::specialize::{specialize_to_schema, specialize_to_symbols};

/// How a plan executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    Composed,
    Chained,
}

impl Strategy {
    pub fn as_str(self) -> &'static str {
        match self {
            Strategy::Composed => "composed",
            Strategy::Chained => "chained",
        }
    }
}

/// The caller's say in strategy selection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StrategyChoice {
    /// Let the cost model decide.
    #[default]
    Auto,
    Composed,
    Chained,
}

impl StrategyChoice {
    pub fn parse(s: &str) -> Option<StrategyChoice> {
        match s {
            "auto" => Some(StrategyChoice::Auto),
            "composed" => Some(StrategyChoice::Composed),
            "chained" => Some(StrategyChoice::Chained),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            StrategyChoice::Auto => "auto",
            StrategyChoice::Composed => "composed",
            StrategyChoice::Chained => "chained",
        }
    }
}

/// One resolved pipeline stage: a registered transducer and its name.
#[derive(Clone)]
pub struct StageDef {
    pub name: String,
    pub dtop: Arc<Dtop>,
}

/// Why planning failed. Serve maps `EmptyPipeline` / `EmptyComposition`
/// to 422 (the request names a pipeline that cannot transform anything).
#[derive(Debug)]
pub enum PlanError {
    EmptyPipeline,
    /// The composed transduction has an empty domain — no input is ever
    /// accepted (e.g. τ₁'s range misses τ₂'s domain entirely).
    EmptyComposition,
    Compose {
        stage: String,
        source: DtopError,
    },
    Specialize(DtopError),
    Norm(NormError),
    Compile(CompileError),
    Typecheck(TypecheckError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::EmptyPipeline => write!(f, "pipeline has no stages"),
            PlanError::EmptyComposition => {
                write!(f, "pipeline composition has an empty domain")
            }
            PlanError::Compose { stage, source } => {
                write!(f, "composing stage '{stage}': {source}")
            }
            PlanError::Specialize(e) => write!(f, "schema specialization: {e}"),
            PlanError::Norm(e) => write!(f, "normalizing composition: {e}"),
            PlanError::Compile(e) => write!(f, "compiling plan: {e}"),
            PlanError::Typecheck(e) => write!(f, "building pipeline guard: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// What the planner decided and why — rendered into `/pipelines/{name}`
/// responses and `BENCH_pipeline.json`.
#[derive(Clone, Debug)]
pub struct PlanReport {
    pub stages: Vec<String>,
    pub strategy: Strategy,
    /// `true` when the strategy was forced by an explicit choice rather
    /// than measured.
    pub forced: bool,
    pub schema: bool,
    pub composed_states: usize,
    pub composed_code_len: usize,
    pub chained_code_len: usize,
    /// Σ states×symbols of the per-stage jump tables before/after schema
    /// specialization (equal when no schema was given).
    pub jump_entries_unspecialized: usize,
    pub jump_entries_specialized: usize,
    /// Cost-probe measurements: total nanoseconds to run the probe corpus
    /// under each strategy (0 when the probe was skipped).
    pub probe_docs: usize,
    pub composed_probe_ns: u64,
    pub chained_probe_ns: u64,
    /// Fingerprint of the whole pipeline (stages + schema + choice) — the
    /// plan-cache key.
    pub fingerprint: u64,
}

impl PlanReport {
    /// Percentage of per-stage jump-table entries removed by schema
    /// specialization.
    pub fn jump_table_shrink_pct(&self) -> f64 {
        if self.jump_entries_unspecialized == 0 {
            return 0.0;
        }
        100.0 * (self.jump_entries_unspecialized - self.jump_entries_specialized) as f64
            / self.jump_entries_unspecialized as f64
    }

    pub fn json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            concat!(
                "{{\"stages\":[{}],\"strategy\":\"{}\",\"forced\":{},",
                "\"schema\":{},\"composed_states\":{},\"composed_code_len\":{},",
                "\"chained_code_len\":{},\"jump_entries_unspecialized\":{},",
                "\"jump_entries_specialized\":{},\"jump_table_shrink_pct\":{:.2},",
                "\"probe_docs\":{},\"composed_probe_ns\":{},\"chained_probe_ns\":{},",
                "\"fingerprint\":\"{:016x}\"}}"
            ),
            stages.join(","),
            self.strategy.as_str(),
            self.forced,
            self.schema,
            self.composed_states,
            self.composed_code_len,
            self.chained_code_len,
            self.jump_entries_unspecialized,
            self.jump_entries_specialized,
            self.jump_table_shrink_pct(),
            self.probe_docs,
            self.composed_probe_ns,
            self.chained_probe_ns,
            self.fingerprint,
        )
    }
}

/// An executable pipeline plan. Feed [`Plan::exec_stages`] plus
/// [`Plan::guard`] to [`xtt_engine::Engine::transform_chain`] (or its
/// batch/streaming variants); both strategies flow through the same entry
/// points — composed is simply a chain of length one.
pub struct Plan {
    pub strategy: Strategy,
    composed: Vec<ChainStage>,
    chained: Vec<ChainStage>,
    guard: Arc<CompiledDtta>,
    pub report: PlanReport,
}

impl Plan {
    /// The stage list the chosen strategy executes.
    pub fn exec_stages(&self) -> &[ChainStage] {
        self.stages_for(self.strategy)
    }

    /// The stage list a specific strategy executes (for differential
    /// tests and benches).
    pub fn stages_for(&self, strategy: Strategy) -> &[ChainStage] {
        match strategy {
            Strategy::Composed => &self.composed,
            Strategy::Chained => &self.chained,
        }
    }

    /// The shared domain guard: the exact chain domain
    /// `⋂ᵢ dom(Cᵢ) ∩ L(schema)` over the composed prefixes. Applying it
    /// to every request makes the two strategies byte-identical on
    /// rejections too (same position, same diagnostic).
    pub fn guard(&self) -> &CompiledDtta {
        &self.guard
    }

    pub fn guard_arc(&self) -> Arc<CompiledDtta> {
        Arc::clone(&self.guard)
    }
}

/// Probe-corpus knobs: enough documents to rank the strategies, small
/// enough that planning stays interactive.
const PROBE_MAX_DOCS: usize = 12;
const PROBE_MAX_SIZE: usize = 9;
const PROBE_REPS: usize = 24;

/// Plans a pipeline. `stages` are in application order (τ₁ first, the
/// order of the CLI's `--pipeline t1,t2`); `schema` constrains inputs and
/// enables specialization.
pub fn plan(
    stages: &[StageDef],
    schema: Option<&Dtta>,
    choice: StrategyChoice,
) -> Result<Plan, PlanError> {
    if stages.is_empty() {
        return Err(PlanError::EmptyPipeline);
    }
    let jump_entries = |c: &CompiledDtop| c.state_count() * c.symbol_count();

    // 1. Specialize each stage: the first against the schema product, the
    //    rest against the previous stage's emitted-symbol set.
    let mut chain_dtops: Vec<Arc<Dtop>> = Vec::with_capacity(stages.len());
    if let Some(schema) = schema {
        let sp = specialize_to_schema(&stages[0].dtop, schema).map_err(PlanError::Specialize)?;
        let mut emitted = sp.emitted;
        chain_dtops.push(Arc::new(sp.dtop));
        for stage in &stages[1..] {
            let sp = specialize_to_symbols(&stage.dtop, &emitted).map_err(PlanError::Specialize)?;
            emitted = sp.emitted;
            chain_dtops.push(Arc::new(sp.dtop));
        }
    } else {
        chain_dtops.extend(stages.iter().map(|s| Arc::clone(&s.dtop)));
    }

    // 2. Compose the specialized stages (left fold; compose(m2, m1) is
    //    "m1 first"), keeping every composed prefix — the guard needs all
    //    of them, not just the final product.
    let mut composed: Dtop = (*chain_dtops[0]).clone();
    let mut prefixes: Vec<Dtop> = vec![composed.clone()];
    for (stage, m) in stages[1..].iter().zip(&chain_dtops[1..]) {
        composed = compose(m, &composed).map_err(|e| PlanError::Compose {
            stage: stage.name.clone(),
            source: e,
        })?;
        prefixes.push(composed.clone());
    }

    // 3. Normalize the composition (earliest → minimize → canonical
    //    numbering). An empty domain is a planning error (nothing can ever
    //    be transformed); any other normalization failure falls back to
    //    the raw product, which is correct, just not minimal.
    let composed = match to_earliest(&composed, schema) {
        Ok(c) => match minimize(&c).and_then(|c| canonical_number(&c)) {
            Ok(min) => min.dtop,
            Err(_) => c.dtop,
        },
        Err(NormError::EmptyDomain) => return Err(PlanError::EmptyComposition),
        Err(_) => composed,
    };

    // 4. Compile both strategies and the shared guard.
    let composed_compiled = Arc::new(compile(&composed).map_err(PlanError::Compile)?);
    let mut chained: Vec<ChainStage> = Vec::with_capacity(chain_dtops.len());
    for m in &chain_dtops {
        chained.push(ChainStage {
            dtop: Arc::clone(m),
            compiled: Arc::new(compile(m).map_err(PlanError::Compile)?),
        });
    }
    // The guard accepts the exact *chain* domain ⋂ᵢ dom(Cᵢ) ∩ L(schema):
    // intersecting every composed prefix forces each intermediate stage
    // value to be fully defined, which is what stage-by-stage execution
    // requires. dom(composed) alone would over-accept wherever a later
    // stage deletes an earlier stage's partial output (normalization
    // preserves domains, so the un-normalized prefixes are equivalent).
    let prefix_refs: Vec<&Dtop> = prefixes.iter().collect();
    let chain_domain = chain_domain_raw(&prefix_refs, schema);
    let guard = Arc::new(guard_from_domain(&chain_domain).map_err(PlanError::Typecheck)?);
    let composed_stage = vec![ChainStage {
        dtop: Arc::new(composed.clone()),
        compiled: Arc::clone(&composed_compiled),
    }];

    // 5. Jump-table accounting: what the per-stage tables would cost
    //    without specialization vs what the specialized chain costs.
    let jump_specialized: usize = chained.iter().map(|s| jump_entries(&s.compiled)).sum();
    let jump_unspecialized: usize = if schema.is_some() {
        let mut total = 0;
        for stage in stages {
            total += jump_entries(&compile(&stage.dtop).map_err(PlanError::Compile)?);
        }
        total
    } else {
        jump_specialized
    };

    // 6. Cost model: sample the pipeline's own domain and race the two
    //    strategies. An empty probe corpus (empty or near-empty domain)
    //    falls back to the static size estimate.
    let domain = trim(&chain_domain.dtta);
    if is_empty(&domain) {
        return Err(PlanError::EmptyComposition);
    }
    let samples = enumerate_language(&domain, domain.initial(), PROBE_MAX_DOCS, PROBE_MAX_SIZE);
    let chained_code_len: usize = chained.iter().map(|s| s.compiled.code_len()).sum();
    let (composed_ns, chained_ns) = if samples.is_empty() {
        (0, 0)
    } else {
        (probe(&samples, &composed_stage), probe(&samples, &chained))
    };
    let (strategy, forced) = match choice {
        StrategyChoice::Composed => (Strategy::Composed, true),
        StrategyChoice::Chained => (Strategy::Chained, true),
        StrategyChoice::Auto => {
            let s = if samples.is_empty() {
                if composed_compiled.code_len() <= chained_code_len {
                    Strategy::Composed
                } else {
                    Strategy::Chained
                }
            } else if composed_ns <= chained_ns {
                Strategy::Composed
            } else {
                Strategy::Chained
            };
            (s, false)
        }
    };

    let report = PlanReport {
        stages: stages.iter().map(|s| s.name.clone()).collect(),
        strategy,
        forced,
        schema: schema.is_some(),
        composed_states: composed.state_count(),
        composed_code_len: composed_compiled.code_len(),
        chained_code_len,
        jump_entries_unspecialized: jump_unspecialized,
        jump_entries_specialized: jump_specialized,
        probe_docs: samples.len(),
        composed_probe_ns: composed_ns,
        chained_probe_ns: chained_ns,
        fingerprint: pipeline_fingerprint(stages, schema, choice),
    };
    Ok(Plan {
        strategy,
        composed: composed_stage,
        chained,
        guard,
        report,
    })
}

/// Total wall-clock nanoseconds to run `samples` through `stages`
/// (PROBE_REPS repetitions), using the same chained evaluator machinery
/// the engine uses — a chain of length one IS the composed strategy.
fn probe(samples: &[Tree], stages: &[ChainStage]) -> u64 {
    let refs: Vec<&CompiledDtop> = stages.iter().map(|s| &*s.compiled).collect();
    let mut chain = ChainedEvaluator::new();
    // Warm-up pass so allocation of evaluator scratch does not bias the
    // first strategy measured.
    for t in samples {
        let mut sink = TreeCollector::new();
        let _ = chain.eval_streaming(&refs, &mut IterEvents(t.events()), &mut sink);
    }
    let start = Instant::now();
    for _ in 0..PROBE_REPS {
        for t in samples {
            let mut sink = TreeCollector::new();
            let _ = chain.eval_streaming(&refs, &mut IterEvents(t.events()), &mut sink);
        }
    }
    start.elapsed().as_nanos() as u64
}

/// FNV-1a over the pipeline's identity: stage names + structural
/// fingerprints, the schema rendering, and the strategy choice. Cache key
/// and report field.
pub fn pipeline_fingerprint(
    stages: &[StageDef],
    schema: Option<&Dtta>,
    choice: StrategyChoice,
) -> u64 {
    fnv1a(pipeline_rendering(stages, schema, choice).as_bytes())
}

/// The exact rendering backing [`pipeline_fingerprint`] — stored next to
/// the hash in the plan cache so collisions cannot alias plans.
pub fn pipeline_rendering(
    stages: &[StageDef],
    schema: Option<&Dtta>,
    choice: StrategyChoice,
) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = write!(s, "choice={};", choice.as_str());
    for stage in stages {
        let _ = write!(s, "{}:{:016x};", stage.name, fingerprint(&stage.dtop));
    }
    if let Some(a) = schema {
        let _ = write!(s, "schema={a}");
    }
    s
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
