//! Differential property tests for the pipeline planner: the two
//! execution strategies (statically composed vs chained streaming) must
//! be **byte-identical** through the engine's public entry points — same
//! XML output on the pipeline's domain, same rejection (same position,
//! same diagnostic) outside it — and schema-specialized plans must guard
//! exactly the schema-valid subset of the domain.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xtt_engine::{tree_to_xml, DocFormat, Engine, EngineOptions, EvalMode};
use xtt_pipeline::{plan, PlanError, StageDef, Strategy, StrategyChoice};
use xtt_transducer::{domain_dtta, eval as walk_eval, random_partial_dtop, RandomDtopConfig};
use xtt_trees::{gen, RankedAlphabet, Tree};

/// XML-name-safe alphabets so `DocFormat::Xml` round-trips.
fn alphabets() -> (RankedAlphabet, RankedAlphabet, RankedAlphabet) {
    (
        RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("a", 0), ("b", 0)]),
        RankedAlphabet::from_pairs([("u", 2), ("v", 1), ("c", 0), ("d", 0)]),
        RankedAlphabet::from_pairs([("m", 2), ("n", 1), ("x", 0), ("y", 0)]),
    )
}

fn config() -> RandomDtopConfig {
    RandomDtopConfig {
        n_states: 3,
        max_rhs_depth: 3,
        call_percent: 55,
    }
}

fn workload(input: &RankedAlphabet, rng: &mut StdRng) -> Vec<Tree> {
    let mut trees = gen::enumerate_trees(input, 40, 7);
    for _ in 0..4 {
        trees.push(gen::random_tree(input, 40, rng));
    }
    trees
}

fn stage(name: &str, dtop: xtt_transducer::Dtop) -> StageDef {
    StageDef {
        name: name.to_owned(),
        dtop: std::sync::Arc::new(dtop),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Composed and chained strategies are byte-identical over XML on
    /// random partial two-stage pipelines: same output bytes on the
    /// domain, same error (position included) off it — in both the
    /// materialized (`tree`) and fused streaming modes.
    #[test]
    fn composed_and_chained_agree_byte_for_byte(seed in any::<u64>(), keep in 40u32..95) {
        let (alpha_a, alpha_b, alpha_c) = alphabets();
        let mut rng = StdRng::seed_from_u64(seed);
        let m1 = random_partial_dtop(&mut rng, &alpha_a, &alpha_b, &config(), keep);
        let m2 = random_partial_dtop(&mut rng, &alpha_b, &alpha_c, &config(), keep);
        let stages = vec![stage("s1", m1), stage("s2", m2)];
        let p = match plan(&stages, None, StrategyChoice::Auto) {
            Ok(p) => p,
            // A composition nothing can pass through is a registration
            // error upstream; there is no runtime behavior to compare.
            Err(PlanError::EmptyComposition) => return Ok(()),
            Err(e) => return Err(format!("plan failed: {e}")),
        };
        let engine = Engine::new(EngineOptions::default());
        for t in workload(&alpha_a, &mut rng) {
            let doc = tree_to_xml(&t);
            for mode in [EvalMode::Compiled, EvalMode::Streaming] {
                let composed = engine.transform_chain(
                    p.stages_for(Strategy::Composed),
                    &doc,
                    mode,
                    DocFormat::Xml,
                    Some(p.guard()),
                    None,
                ).map_err(|e| e.to_string());
                let chained = engine.transform_chain(
                    p.stages_for(Strategy::Chained),
                    &doc,
                    mode,
                    DocFormat::Xml,
                    Some(p.guard()),
                    None,
                ).map_err(|e| e.to_string());
                prop_assert_eq!(&composed, &chained, "mode {:?} on {}", mode, doc);
            }
        }
    }

    /// With an input schema, the plan's guard accepts **exactly** the
    /// schema-valid subset of the pipeline's domain: `t` passes iff
    /// `t ∈ L(schema)` and the (unspecialized) stage composition is
    /// defined on `t`.
    #[test]
    fn schema_specialized_guard_accepts_exactly_the_schema_valid_subset(
        seed in any::<u64>(),
        keep in 40u32..95,
    ) {
        let (alpha_a, alpha_b, _) = alphabets();
        let mut rng = StdRng::seed_from_u64(seed);
        let m1 = random_partial_dtop(&mut rng, &alpha_a, &alpha_b, &config(), keep);
        let m2 = random_partial_dtop(&mut rng, &alpha_b, &alpha_a, &config(), keep);
        // A random regular tree language over the input alphabet: the
        // domain automaton of yet another random partial dtop.
        let m_schema = random_partial_dtop(&mut rng, &alpha_a, &alpha_b, &config(), keep);
        let schema = domain_dtta(&m_schema, None);
        let stages = vec![stage("s1", m1.clone()), stage("s2", m2.clone())];
        let p = match plan(&stages, Some(&schema), StrategyChoice::Auto) {
            Ok(p) => p,
            Err(PlanError::EmptyComposition) => {
                // Then nothing may pass: the unspecialized composition
                // must indeed be undefined everywhere on the schema.
                for t in workload(&alpha_a, &mut rng) {
                    let defined = walk_eval(&m1, &t)
                        .and_then(|u| walk_eval(&m2, &u))
                        .is_some();
                    prop_assert!(
                        !(schema.accepts(&t) && defined),
                        "EmptyComposition but {} is schema-valid and defined", t
                    );
                }
                return Ok(());
            }
            Err(e) => return Err(format!("plan failed: {e}")),
        };
        for t in workload(&alpha_a, &mut rng) {
            let expected = schema.accepts(&t)
                && walk_eval(&m1, &t).and_then(|u| walk_eval(&m2, &u)).is_some();
            prop_assert_eq!(
                p.guard().accepts(&t),
                expected,
                "guard disagrees on {} (schema {}, defined {})",
                &t,
                schema.accepts(&t),
                walk_eval(&m1, &t).and_then(|u| walk_eval(&m2, &u)).is_some()
            );
        }
    }
}
