//! Golden pipeline corpus: fixed transducers, fixed documents, hardcoded
//! expected bytes. Every (strategy × eval-mode) pair must reproduce them
//! exactly — including the rejection diagnostic for the out-of-domain
//! document, which must be the same string everywhere.

use xtt_engine::{DocFormat, Engine, EngineOptions, EvalMode};
use xtt_pipeline::{plan, Plan, StageDef, Strategy, StrategyChoice};
use xtt_transducer::parse_dtop;

/// Stage 1: swap the children of every `f`, keep `g` and `a`. Partial:
/// no rule for `b` (the dead rule only keeps `b` in the alphabet), so
/// any document containing `b` is out of the pipeline's domain.
const SWAP: &str = "ax = <q,x0>\n\
                    q(f(x1,x2)) -> f(<q,x2>,<q,x1>)\n\
                    q(g(x1)) -> g(<q,x1>)\n\
                    q(a) -> a\n\
                    qdead(b) -> a\n";

/// Stage 2: relabel into a fresh alphabet, double-wrapping `g`.
const WRAP: &str = "ax = <r,x0>\n\
                    r(f(x1,x2)) -> u(<r,x1>,<r,x2>)\n\
                    r(g(x1)) -> v(v(<r,x1>))\n\
                    r(a) -> c\n";

/// Stage 3: drop every `v` wrapper (a *deleting* stage — the case where
/// the chain domain is strictly smaller than the composed domain).
const UNWRAP: &str = "ax = <s,x0>\n\
                      s(u(x1,x2)) -> m(<s,x1>,<s,x2>)\n\
                      s(v(x1)) -> <s,x1>\n\
                      s(c) -> x\n";

fn stage(name: &str, text: &str) -> StageDef {
    StageDef {
        name: name.to_owned(),
        dtop: std::sync::Arc::new(parse_dtop(text).unwrap()),
    }
}

const MODES: [EvalMode; 4] = [
    EvalMode::Compiled,
    EvalMode::Streaming,
    EvalMode::Dag,
    EvalMode::TreeWalk,
];

/// Runs `doc` through every strategy × mode and asserts one golden
/// result: `Ok(bytes)` for in-domain documents, `Err(diagnostic)` for
/// rejected ones — byte-identical across all eight executions.
fn assert_golden(p: &Plan, doc: &str, want: &Result<&str, &str>) {
    let engine = Engine::new(EngineOptions::default());
    for strategy in [Strategy::Composed, Strategy::Chained] {
        for mode in MODES {
            let got = engine
                .transform_chain(
                    p.stages_for(strategy),
                    doc,
                    mode,
                    DocFormat::Xml,
                    Some(p.guard()),
                    None,
                )
                .map_err(|e| e.to_string());
            assert_eq!(
                got.as_deref().map_err(String::as_str),
                *want,
                "{strategy:?}/{mode:?} on {doc}"
            );
        }
    }
}

#[test]
fn two_stage_golden_corpus() {
    let stages = vec![stage("swap", SWAP), stage("wrap", WRAP)];
    let p = plan(&stages, None, StrategyChoice::Auto).unwrap();
    for (doc, want) in [
        ("<a/>", Ok("<c/>")),
        (
            "<f><g><a/></g><a/></f>",
            Ok("<u><c/><v><v><c/></v></v></u>"),
        ),
        (
            "<g><f><a/><a/></f></g>",
            Ok("<v><v><u><c/><c/></u></v></v>"),
        ),
        (
            "<f><f><a/><a/></f><g><a/></g></f>",
            Ok("<u><v><v><c/></v></v><u><c/><c/></u></u>"),
        ),
    ] {
        assert_golden(&p, doc, &want);
    }
}

#[test]
fn two_stage_rejection_is_identical_everywhere() {
    let stages = vec![stage("swap", SWAP), stage("wrap", WRAP)];
    let p = plan(&stages, None, StrategyChoice::Auto).unwrap();
    // `b` at path 2 has no rule in stage 1: all eight executions must
    // report the *same* first-violation diagnostic.
    let engine = Engine::new(EngineOptions::default());
    let doc = "<f><a/><b/></f>";
    let mut errors = Vec::new();
    for strategy in [Strategy::Composed, Strategy::Chained] {
        for mode in MODES {
            let got = engine
                .transform_chain(
                    p.stages_for(strategy),
                    doc,
                    mode,
                    DocFormat::Xml,
                    Some(p.guard()),
                    None,
                )
                .map_err(|e| e.to_string());
            errors.push(got.expect_err(&format!("{strategy:?}/{mode:?} accepted {doc}")));
        }
    }
    assert!(
        errors[0].starts_with("type error at 2:"),
        "positioned diagnostic, got {}",
        errors[0]
    );
    assert!(
        errors.iter().all(|e| e == &errors[0]),
        "diagnostics diverge: {errors:?}"
    );
}

#[test]
fn three_stage_golden_corpus_with_deleting_stage() {
    let stages = vec![
        stage("swap", SWAP),
        stage("wrap", WRAP),
        stage("unwrap", UNWRAP),
    ];
    let p = plan(&stages, None, StrategyChoice::Auto).unwrap();
    for (doc, want) in [
        ("<a/>", Ok("<x/>")),
        ("<g><a/></g>", Ok("<x/>")),
        ("<f><g><a/></g><a/></f>", Ok("<m><x/><x/></m>")),
        (
            "<f><f><a/><a/></f><a/></f>",
            Ok("<m><x/><m><x/><x/></m></m>"),
        ),
        // Rejection flows through the shared guard identically here too.
        (
            "<g><b/></g>",
            Err("type error at 1: symbol b not allowed in state {q}|{r∘q}|{s∘r∘q}"),
        ),
    ] {
        assert_golden(&p, doc, &want);
    }
}
