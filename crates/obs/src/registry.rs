//! Named metrics behind one registry, rendered to Prometheus text.
//!
//! Registration hands back an `Arc` to the underlying atomic metric;
//! the hot path only ever touches that handle. The registry's mutex is
//! taken at registration and render time, never per record — so the
//! JSON `/stats` view and the `/metrics` exposition both read the very
//! same atomics and can never disagree.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A value that can move both ways (queue depth, open connections,
/// high-water marks via [`Gauge::record_max`]).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Saturating decrement (a racy double-sub must not wrap to 2^64).
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.0.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the gauge to `v` if larger — high-water-mark semantics.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn text(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    labels: Vec<(String, String)>,
    metric: Metric,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    entries: Vec<Entry>,
}

/// The metric namespace. Cheap to share (`Arc<Registry>`); all methods
/// take `&self`.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or retrieves) a counter under `name` + `labels`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.entry(name, help, Kind::Counter, labels, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in entry()"),
        }
    }

    /// Registers (or retrieves) a gauge under `name` + `labels`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.entry(name, help, Kind::Gauge, labels, || {
            Metric::Gauge(Arc::new(Gauge::new()))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in entry()"),
        }
    }

    /// Registers (or retrieves) a histogram under `name` + `labels`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.entry(name, help, Kind::Histogram, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in entry()"),
        }
    }

    fn entry(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut families = self.families.lock().expect("registry lock");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric '{name}' re-registered as a different kind"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_owned(),
                    help: help.to_owned(),
                    kind,
                    entries: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(e) = family.entries.iter().find(|e| {
            e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return clone_metric(&e.metric);
        }
        let metric = make();
        family.entries.push(Entry {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            metric: clone_metric(&metric),
        });
        metric
    }

    /// Renders the whole registry in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers, then one `name{labels} value` line
    /// per series (histograms as cumulative `_bucket{le=…}`, `_sum`,
    /// `_count`). Families render sorted by name so scrapes are
    /// deterministic.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("registry lock");
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by(|&a, &b| families[a].name.cmp(&families[b].name));
        let mut out = String::with_capacity(4096);
        for idx in order {
            let f = &families[idx];
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.text()));
            for e in &f.entries {
                match &e.metric {
                    Metric::Counter(c) => {
                        out.push_str(&series(&f.name, &e.labels, &[], &c.get().to_string()));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&series(&f.name, &e.labels, &[], &g.get().to_string()));
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let count = snap.count();
                        let bucket_name = format!("{}_bucket", f.name);
                        for (le, cum) in snap.cumulative() {
                            out.push_str(&series(
                                &bucket_name,
                                &e.labels,
                                &[("le", &le.to_string())],
                                &cum.to_string(),
                            ));
                        }
                        out.push_str(&series(
                            &bucket_name,
                            &e.labels,
                            &[("le", "+Inf")],
                            &count.to_string(),
                        ));
                        out.push_str(&series(
                            &format!("{}_sum", f.name),
                            &e.labels,
                            &[],
                            &snap.sum().to_string(),
                        ));
                        out.push_str(&series(
                            &format!("{}_count", f.name),
                            &e.labels,
                            &[],
                            &count.to_string(),
                        ));
                    }
                }
            }
        }
        out
    }
}

fn clone_metric(m: &Metric) -> Metric {
    match m {
        Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
        Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
        Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
    }
}

/// One exposition line: `name{k="v",…} value\n`.
fn series(name: &str, labels: &[(String, String)], extra: &[(&str, &str)], value: &str) -> String {
    let mut line = String::with_capacity(64);
    line.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        line.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(k);
            line.push_str("=\"");
            for ch in v.chars() {
                match ch {
                    '\\' => line.push_str("\\\\"),
                    '"' => line.push_str("\\\""),
                    '\n' => line.push_str("\\n"),
                    c => line.push(c),
                }
            }
            line.push('"');
        }
        line.push('}');
    }
    line.push(' ');
    line.push_str(value);
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shares_the_atomic() {
        let r = Registry::new();
        let a = r.counter(
            "xtt_requests_total",
            "Requests handled.",
            &[("endpoint", "transform")],
        );
        let b = r.counter(
            "xtt_requests_total",
            "Requests handled.",
            &[("endpoint", "transform")],
        );
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        let other = r.counter(
            "xtt_requests_total",
            "Requests handled.",
            &[("endpoint", "stats")],
        );
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_programming_errors() {
        let r = Registry::new();
        r.counter("xtt_thing", "", &[]);
        r.gauge("xtt_thing", "", &[]);
    }

    #[test]
    fn render_is_valid_exposition_format() {
        let r = Registry::new();
        r.counter(
            "xtt_requests_total",
            "Requests handled.",
            &[("endpoint", "transform")],
        )
        .add(7);
        r.gauge("xtt_queue_depth", "Jobs waiting.", &[]).set(2);
        let h = r.histogram(
            "xtt_latency_micros",
            "Request latency.",
            &[("endpoint", "transform")],
        );
        h.record(3);
        h.record(100);
        let text = r.render_prometheus();
        // The same lint CI applies: every line is # HELP, # TYPE, or
        // `name{labels} value`.
        for line in text.lines() {
            if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value in {line:?}"
            );
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad name in {line:?}"
            );
        }
        assert!(text.contains("# TYPE xtt_requests_total counter\n"));
        assert!(text.contains("xtt_requests_total{endpoint=\"transform\"} 7\n"));
        assert!(text.contains("xtt_queue_depth 2\n"));
        assert!(text.contains("xtt_latency_micros_bucket{endpoint=\"transform\",le=\"3\"} 1\n"));
        assert!(text.contains("xtt_latency_micros_bucket{endpoint=\"transform\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("xtt_latency_micros_sum{endpoint=\"transform\"} 103\n"));
        assert!(text.contains("xtt_latency_micros_count{endpoint=\"transform\"} 2\n"));
        // Families are sorted by name.
        let lat = text.find("xtt_latency_micros").unwrap();
        let que = text.find("xtt_queue_depth").unwrap();
        let req = text.find("xtt_requests_total").unwrap();
        assert!(lat < que && que < req);
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::new();
        g.add(1);
        g.sub(5);
        assert_eq!(g.get(), 0);
        g.record_max(9);
        g.record_max(4);
        assert_eq!(g.get(), 9);
    }
}
