//! `xtt-obs` — the observability core for the serving stack.
//!
//! Dependency-free (like `xtt-netio`) on purpose: everything on the
//! record path is a handful of relaxed atomics, so instrumentation can
//! stay enabled in production.
//!
//! Three layers:
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]): lock-free
//!   primitives. The histogram is log₂-bucketed — a fixed array of 65
//!   atomic buckets covering all of `u64` — so recording is one relaxed
//!   `fetch_add` into the right bucket (plus sum/max upkeep) and
//!   p50/p99/p999 read out from a snapshot without storing samples.
//! - **Registry** ([`Registry`]): names + help text + labels over those
//!   primitives, rendered to Prometheus text exposition format. Callers
//!   keep the returned `Arc` handles for the hot path; the registry's
//!   lock is touched only at registration and render time.
//! - **Tracing** ([`Trace`], [`TraceSampler`], [`EvalObserver`]): a
//!   sampled per-request pipeline trace stamping stage boundaries
//!   (tokenize → encode → guard → evaluate → emit). The engine accepts
//!   an `Option<&mut dyn EvalObserver>`; the unsampled path passes
//!   `None` and costs nothing — not even an `Instant::now()`.

mod hist;
mod registry;
mod trace;

pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, Registry};
pub use trace::{EvalObserver, Stage, Trace, TraceSampler};
