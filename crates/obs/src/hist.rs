//! Lock-free log₂-bucketed histogram.
//!
//! Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` holds values
//! in `[2^(i-1), 2^i)`. 65 buckets therefore cover all of `u64`, and a
//! record is a single relaxed `fetch_add` into one bucket (plus
//! relaxed sum/max upkeep). Quantiles read out of a [`HistogramSnapshot`]
//! by walking the cumulative counts and interpolating linearly inside
//! the landing bucket — no samples are ever stored, so the error is
//! bounded by the bucket width (a factor of 2 worst case), which is
//! plenty for latency dashboards.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrent histogram. All mutation is relaxed-atomic; readers take
/// a [`snapshot`](Histogram::snapshot) and compute on the copy.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Copies the current counts. Concurrent recording may tear *across*
    /// buckets (a record between two loads), never within one — fine for
    /// monitoring reads.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (slot, c) in counts.iter_mut().zip(&self.buckets) {
            *slot = c.load(Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// An owned, immutable copy of a [`Histogram`]'s state.
#[derive(Clone)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest value ever recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Per-bucket `(inclusive upper bound, cumulative count)` pairs up to
    /// the last non-empty bucket — the Prometheus `le` series.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let last = match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut cum = 0u64;
        (0..=last)
            .map(|i| {
                cum += self.counts[i];
                (bucket_hi(i), cum)
            })
            .collect()
    }

    /// Interpolated quantile, `q` in `[0, 1]`. Exact for the bucket (the
    /// answer lands in the same log₂ bucket as the true order statistic);
    /// linear interpolation positions it inside. Clamped to the recorded
    /// max so `quantile(1.0)` is exact.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i).min(self.max);
                let frac = (rank - cum) as f64 / c as f64;
                let v = lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                return (v as u64).min(self.max);
            }
            cum += c;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_pinned() {
        // The contract the quantile math and the Prometheus `le` series
        // both rely on: 0 is alone, then [2^(i-1), 2^i).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_of(bucket_hi(i)), i, "hi of bucket {i}");
        }
        assert_eq!(bucket_hi(0), 0);
        assert_eq!(bucket_hi(1), 1);
        assert_eq!(bucket_hi(10), 1023);
    }

    #[test]
    fn snapshot_counts_land_in_the_right_buckets() {
        let h = Histogram::new();
        for v in [0, 0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 9);
        assert_eq!(s.sum(), 1025);
        assert_eq!(s.max(), 1000);
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[1], 1);
        assert_eq!(s.counts[2], 2);
        assert_eq!(s.counts[3], 2);
        assert_eq!(s.counts[4], 1);
        assert_eq!(s.counts[10], 1);
    }

    /// Quantiles agree with a sorted reference up to bucket resolution:
    /// the histogram's answer must land in the same log₂ bucket as the
    /// true order statistic, and never exceed the recorded max.
    #[test]
    fn quantiles_match_sorted_reference_within_bucket_resolution() {
        // Deterministic LCG so the test is reproducible.
        let mut x: u64 = 0x2545F4914F6CDD1D;
        let mut values = Vec::with_capacity(10_000);
        let h = Histogram::new();
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Skewed distribution, like latencies: mostly small, long tail.
            let v = (x >> 33) % 1000 + ((x >> 17) % 100_000) * u64::from(x % 50 == 0);
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let reference = values[rank - 1];
            let got = snap.quantile(q);
            assert_eq!(
                bucket_of(got),
                bucket_of(reference),
                "q={q}: got {got}, reference {reference}"
            );
            assert!(got <= snap.max());
        }
        assert_eq!(snap.quantile(1.0), *values.last().unwrap());
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.cumulative().is_empty());
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 80_000);
        assert_eq!(s.max(), 79_999);
    }

    #[test]
    fn cumulative_series_is_monotone_and_ends_at_count() {
        let h = Histogram::new();
        for v in [1u64, 5, 9, 200, 200, 4096] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative();
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert_eq!(cum.last().unwrap().1, s.count());
    }
}
