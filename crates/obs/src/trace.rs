//! Sampled per-request pipeline tracing.
//!
//! A [`Trace`] stamps stage boundaries as a request flows through the
//! pipeline (tokenize → encode → guard → evaluate → emit). The engine
//! sees it only through the [`EvalObserver`] trait, passed as
//! `Option<&mut dyn EvalObserver>` — `None` on the unsampled path, so
//! an untraced request never even reads the clock. [`TraceSampler`]
//! picks 1-in-N requests with a single relaxed `fetch_add`.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant, SystemTime};

/// A pipeline stage boundary, in flow order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// Raw bytes → parse events / term parse.
    Tokenize,
    /// Unranked events → ranked encoding (fc/ns, DTD).
    Encode,
    /// Domain-guard validation.
    Guard,
    /// Transducer evaluation.
    Evaluate,
    /// Output serialization / decode back to XML.
    Emit,
}

impl Stage {
    pub fn name(self) -> &'static str {
        match self {
            Stage::Tokenize => "tokenize",
            Stage::Encode => "encode",
            Stage::Guard => "guard",
            Stage::Evaluate => "eval",
            Stage::Emit => "emit",
        }
    }
}

/// The hook the engine calls at stage boundaries. `stage(s)` means
/// "the work for `s` just finished" — implementations charge the time
/// since the previous stamp to `s`.
pub trait EvalObserver {
    fn stage(&mut self, stage: Stage);
}

impl EvalObserver for Trace {
    fn stage(&mut self, stage: Stage) {
        self.stamp(stage.name());
    }
}

/// One sampled request's stage breakdown. Stages repeat per document in
/// a batch request; repeated stamps accumulate into one entry, so the
/// rendered header stays bounded regardless of batch size.
pub struct Trace {
    id: u64,
    start: Instant,
    last: Instant,
    stages: Vec<(&'static str, Duration)>,
}

impl Trace {
    pub fn new(id: u64) -> Trace {
        let now = Instant::now();
        Trace {
            id,
            start: now,
            last: now,
            stages: Vec::with_capacity(6),
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    /// The trace id as it appears in `X-Xtt-Trace-Id` and the slow log.
    pub fn id_hex(&self) -> String {
        format!("{:016x}", self.id)
    }

    /// Charges the time since the previous stamp to `name`.
    pub fn stamp(&mut self, name: &'static str) {
        let now = Instant::now();
        let dur = now - self.last;
        self.last = now;
        match self.stages.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += dur,
            None => self.stages.push((name, dur)),
        }
    }

    /// Total wall time since the trace began.
    pub fn total(&self) -> Duration {
        self.last - self.start
    }

    /// The recorded `(stage, accumulated duration)` pairs, in first-seen
    /// order (which is pipeline order).
    pub fn stages(&self) -> &[(&'static str, Duration)] {
        &self.stages
    }

    /// `Server-Timing`-style header value:
    /// `tokenize;dur=0.123, guard;dur=0.045, eval;dur=1.200` (ms).
    pub fn server_timing(&self) -> String {
        let mut out = String::with_capacity(16 * self.stages.len());
        for (i, (name, dur)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(name);
            out.push_str(&format!(";dur={:.3}", dur.as_secs_f64() * 1e3));
        }
        out
    }

    /// `stage=micros` pairs for the structured slow-request log line.
    pub fn breakdown_micros(&self) -> String {
        let mut out = String::with_capacity(16 * self.stages.len());
        for (i, (name, dur)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{name}={}", dur.as_micros()));
        }
        out
    }
}

/// Picks 1-in-N requests for tracing. `every == 0` disables sampling
/// entirely; `every == 1` traces everything.
pub struct TraceSampler {
    every: u64,
    seq: AtomicU64,
    seed: u64,
}

impl TraceSampler {
    pub fn new(every: u64) -> TraceSampler {
        // Seed trace ids from the wall clock so ids from different
        // server runs don't collide in aggregated logs.
        let seed = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        TraceSampler {
            every,
            seq: AtomicU64::new(0),
            seed,
        }
    }

    /// The configured 1-in-N rate (0 = disabled).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// One relaxed `fetch_add`; returns a trace id for sampled requests.
    #[inline]
    pub fn sample(&self) -> Option<u64> {
        if self.every == 0 {
            return None;
        }
        let n = self.seq.fetch_add(1, Relaxed);
        if n % self.every == 0 {
            Some(splitmix64(self.seed ^ n.wrapping_add(1)))
        } else {
            None
        }
    }
}

/// SplitMix64 finalizer — spreads sequential inputs into distinctive ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_accumulate_by_stage_name() {
        let mut t = Trace::new(7);
        t.stage(Stage::Tokenize);
        t.stage(Stage::Evaluate);
        t.stage(Stage::Tokenize);
        t.stage(Stage::Emit);
        let names: Vec<&str> = t.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["tokenize", "eval", "emit"]);
        assert_eq!(t.id_hex().len(), 16);
        let header = t.server_timing();
        assert!(header.starts_with("tokenize;dur="), "{header}");
        assert_eq!(header.matches(";dur=").count(), 3, "{header}");
        let log = t.breakdown_micros();
        assert_eq!(log.split(' ').count(), 3, "{log}");
        assert!(log.starts_with("tokenize="), "{log}");
    }

    #[test]
    fn sampler_picks_one_in_n() {
        let s = TraceSampler::new(3);
        let picks: Vec<bool> = (0..9).map(|_| s.sample().is_some()).collect();
        assert_eq!(
            picks,
            [true, false, false, true, false, false, true, false, false]
        );
        // Sampled ids are distinct.
        let s = TraceSampler::new(1);
        let a = s.sample().unwrap();
        let b = s.sample().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn sampler_zero_disables() {
        let s = TraceSampler::new(0);
        assert!((0..100).all(|_| s.sample().is_none()));
        assert_eq!(s.every(), 0);
    }
}
