//! Lowering a [`Dtop`] into a flat, cache-friendly compiled form.
//!
//! The research representation (`HashMap<(QId, Symbol), Rhs>` with
//! `Rc`-shaped right-hand sides) is ideal for the normal-form and learning
//! algorithms but slow to *run*: every rule application hashes a tuple key
//! and clones a boxed tree. [`compile`] turns the transducer into:
//!
//! * a **dense jump table** `rules[q · |F| + f]` over interned input-symbol
//!   ids — rule lookup is two array reads, no hashing;
//! * a single **instruction arena**: every right-hand side is a flat
//!   pre-order sequence of [`Instr`]s, contiguous in one `Vec`;
//! * a `Symbol → dense id` translation table indexed by the global interner
//!   id, so input nodes are resolved once per document.
//!
//! The compiled object is immutable and `Send + Sync`; all per-evaluation
//! state lives in [`crate::eval::EvalScratch`].

use std::fmt;

use xtt_transducer::{Dtop, Rhs};
use xtt_trees::{RankedAlphabet, Symbol};

/// Dense-symbol sentinel for "not in the input alphabet".
pub const NO_SYM: u32 = u32::MAX;

/// One instruction of a lowered right-hand side (pre-order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Emit an output node; its `arity` children are produced by the
    /// following instructions.
    Out { sym: Symbol, arity: u32 },
    /// Evaluate state `q` on the `child`-th input subtree (0-based) and
    /// splice the result here. In an axiom, `child` is 0 = the whole input.
    Call { q: u16, child: u16 },
}

#[derive(Clone, Copy, Debug)]
struct RuleRange {
    start: u32,
    end: u32,
}

impl RuleRange {
    const NONE: RuleRange = RuleRange {
        start: u32::MAX,
        end: u32::MAX,
    };

    fn is_none(self) -> bool {
        self.start == u32::MAX
    }
}

/// Errors from [`compile`]; all of them are capacity limits far beyond any
/// transducer this workspace produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    TooManyStates(usize),
    TooManyVariables(usize),
    CodeTooLarge(usize),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyStates(n) => write!(f, "{n} states exceed the u16 state limit"),
            CompileError::TooManyVariables(n) => {
                write!(f, "variable x{} exceeds the u16 child limit", n + 1)
            }
            CompileError::CodeTooLarge(n) => write!(f, "{n} instructions exceed the u32 limit"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A [`Dtop`] lowered for execution; see the module docs.
#[derive(Debug, Clone)]
pub struct CompiledDtop {
    input: RankedAlphabet,
    n_states: usize,
    n_syms: u32,
    /// Global interner id → dense input-symbol id ([`NO_SYM`] if absent).
    sym_map: Vec<u32>,
    /// `(q · n_syms + dense_sym)` → code range.
    rules: Vec<RuleRange>,
    axiom: RuleRange,
    /// Distinct states called by the axiom, sorted.
    axiom_states: Vec<u16>,
    code: Vec<Instr>,
    fingerprint: u64,
}

/// A structural fingerprint of a transducer, used as the compiled-cache
/// key. Stable within a process (it hashes the deterministic `Display`
/// rendering, which sorts rules).
pub fn fingerprint(dtop: &Dtop) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(dtop.to_string().as_bytes());
    eat(&(dtop.state_count() as u64).to_le_bytes());
    eat(&(dtop.rule_count() as u64).to_le_bytes());
    h
}

/// Lowers a transducer. See the module docs for the layout.
pub fn compile(dtop: &Dtop) -> Result<CompiledDtop, CompileError> {
    let input = dtop.input().clone();
    let n_states = dtop.state_count();
    if n_states >= usize::from(u16::MAX) {
        return Err(CompileError::TooManyStates(n_states));
    }
    let n_syms = input.len() as u32;

    let max_gid = input
        .symbols()
        .iter()
        .map(|s| s.id() as usize)
        .max()
        .map_or(0, |m| m + 1);
    let mut sym_map = vec![NO_SYM; max_gid];
    for (dense, &sym) in input.symbols().iter().enumerate() {
        sym_map[sym.id() as usize] = dense as u32;
    }

    let mut code = Vec::new();
    let mut rules = vec![RuleRange::NONE; n_states * n_syms as usize];
    for (q, f, rhs) in dtop.rules() {
        let dense = sym_map[f.id() as usize];
        debug_assert_ne!(
            dense, NO_SYM,
            "builder guarantees rule symbols are declared"
        );
        let start = code.len() as u32;
        lower(rhs, &mut code)?;
        rules[q.index() * n_syms as usize + dense as usize] = RuleRange {
            start,
            end: code.len() as u32,
        };
    }
    let ax_start = code.len() as u32;
    lower(dtop.axiom(), &mut code)?;
    let axiom = RuleRange {
        start: ax_start,
        end: code.len() as u32,
    };
    if code.len() >= u32::MAX as usize {
        return Err(CompileError::CodeTooLarge(code.len()));
    }
    let axiom_states = dtop
        .axiom()
        .called_states()
        .into_iter()
        .map(|q| q.0 as u16)
        .collect();

    Ok(CompiledDtop {
        input,
        n_states,
        n_syms,
        sym_map,
        rules,
        axiom,
        axiom_states,
        code,
        fingerprint: fingerprint(dtop),
    })
}

fn lower(rhs: &Rhs, code: &mut Vec<Instr>) -> Result<(), CompileError> {
    match rhs {
        Rhs::Call { state, child } => {
            let q =
                u16::try_from(state.0).map_err(|_| CompileError::TooManyStates(state.index()))?;
            let child =
                u16::try_from(*child).map_err(|_| CompileError::TooManyVariables(*child))?;
            code.push(Instr::Call { q, child });
        }
        Rhs::Out(sym, children) => {
            code.push(Instr::Out {
                sym: *sym,
                arity: children.len() as u32,
            });
            for c in children {
                lower(c, code)?;
            }
        }
    }
    Ok(())
}

impl CompiledDtop {
    /// The input alphabet the transducer was compiled against.
    pub fn input(&self) -> &RankedAlphabet {
        &self.input
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states
    }

    /// Number of dense input symbols.
    pub fn symbol_count(&self) -> usize {
        self.n_syms as usize
    }

    /// Total lowered instructions (axiom + all rules).
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// The cache key; see [`fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The instruction arena.
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// Dense id of an input symbol, or [`NO_SYM`].
    #[inline]
    pub fn dense_sym(&self, sym: Symbol) -> u32 {
        self.sym_map
            .get(sym.id() as usize)
            .copied()
            .unwrap_or(NO_SYM)
    }

    /// Code range of `rhs(q, f)` for a dense symbol id, if the rule exists.
    #[inline]
    pub fn rule_range(&self, q: u16, dense_sym: u32) -> Option<(u32, u32)> {
        if dense_sym >= self.n_syms {
            return None;
        }
        let r = self.rules[q as usize * self.n_syms as usize + dense_sym as usize];
        if r.is_none() {
            None
        } else {
            Some((r.start, r.end))
        }
    }

    /// Code range of the axiom.
    #[inline]
    pub fn axiom_range(&self) -> (u32, u32) {
        (self.axiom.start, self.axiom.end)
    }

    /// Distinct states the axiom calls on the input root, sorted.
    pub fn axiom_states(&self) -> &[u16] {
        &self.axiom_states
    }

    /// Collects into `out` the sorted, deduplicated set of states that
    /// process child `child` of a node labeled `dense_sym`, given that
    /// `states` process the node itself. Used by the streaming front end
    /// to drive the run top-down in lockstep with the event stream.
    pub fn states_for_child(
        &self,
        states: &[u16],
        dense_sym: u32,
        child: usize,
        out: &mut Vec<u16>,
    ) {
        out.clear();
        for &q in states {
            if let Some((s, e)) = self.rule_range(q, dense_sym) {
                for instr in &self.code[s as usize..e as usize] {
                    if let Instr::Call { q: q2, child: c } = *instr {
                        if usize::from(c) == child {
                            out.push(q2);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_transducer::examples;

    #[test]
    fn flip_compiles_to_dense_tables() {
        let m = examples::flip().dtop;
        let c = compile(&m).unwrap();
        assert_eq!(c.state_count(), 4);
        assert_eq!(c.symbol_count(), 4);
        // every (q, f) with a rule resolves; others do not
        let mut found = 0;
        for q in 0..4u16 {
            for dense in 0..4u32 {
                if c.rule_range(q, dense).is_some() {
                    found += 1;
                }
            }
        }
        assert_eq!(found, m.rule_count());
        // code size equals |M| (one instruction per rhs node)
        assert_eq!(c.code_len(), m.size());
    }

    #[test]
    fn unknown_symbols_map_to_no_sym() {
        let c = compile(&examples::flip().dtop).unwrap();
        assert_eq!(c.dense_sym(Symbol::new("certainly-not-declared")), NO_SYM);
        assert_eq!(c.rule_range(0, NO_SYM), None);
    }

    #[test]
    fn fingerprints_separate_structures() {
        let flip = examples::flip().dtop;
        let lib = examples::library().dtop;
        assert_ne!(fingerprint(&flip), fingerprint(&lib));
        assert_eq!(fingerprint(&flip), fingerprint(&examples::flip().dtop));
        assert_eq!(compile(&flip).unwrap().fingerprint(), fingerprint(&flip));
    }

    #[test]
    fn axiom_states_are_sorted_distinct() {
        // ax = root(<q1,x0>,<q2,x0>); the fixture names q1..q4 are QIds 0..3.
        let c = compile(&examples::flip().dtop).unwrap();
        assert_eq!(c.axiom_states(), &[0, 1]);
    }

    #[test]
    fn states_for_child_follows_rules() {
        let m = examples::flip().dtop;
        let c = compile(&m).unwrap();
        let root = c.dense_sym(Symbol::new("root"));
        let mut out = Vec::new();
        // q1(root(x1,x2)) -> <q3,x2>, q2(root(x1,x2)) -> <q4,x1>
        c.states_for_child(&[0, 1], root, 1, &mut out);
        assert_eq!(out, vec![2]); // q3
        c.states_for_child(&[0, 1], root, 0, &mut out);
        assert_eq!(out, vec![3]); // q4
    }
}
