//! # xtt-engine
//!
//! The production runtime for learned top-down tree transducers: where
//! `xtt-transducer` implements the *theory* of PODS 2010 (normal forms,
//! learning, characteristic samples), this crate turns a finished
//! [`Dtop`](xtt_transducer::Dtop) into something you can serve traffic
//! with. Related work treats the transducer exactly this way — as a
//! compiled object applied to document streams (Janssen et al. on XSLT's
//! transformation power; Martens & Neven on typechecking top-down
//! transformations) — and this crate is that missing layer.
//!
//! Three layers:
//!
//! * [`compile`] — lowers a `Dtop` into a [`CompiledDtop`]: dense
//!   `(state, symbol)` jump tables over interned symbol ids and a flat
//!   instruction arena. No hashing, no `Rc`, no rule cloning on the hot
//!   path.
//! * [`eval`] / [`stream`] — two executions of the same instruction set:
//!   the **compiled evaluator** (flatten the document once, dense memo
//!   table, reusable [`EvalScratch`], optional [`TreeDag`] output for
//!   exponentially large results), and the **streaming front end**
//!   ([`StreamEvaluator`]) which runs directly over SAX-style events and
//!   keeps only the spine of the input — deleted subtrees are skipped,
//!   not built.
//! * [`engine`] — the batch/serving API: [`Engine::transform_batch`]
//!   shards newline-delimited documents across a worker pool, with an LRU
//!   cache of compiled transducers keyed by structural [`fingerprint`].
//!   The `xtt-transform` binary is a thin CLI over it.
//!
//! Semantics are bit-for-bit Definition 1: for every input, every layer
//! returns exactly what `xtt_transducer::eval::eval` returns (including
//! `None` outside the domain) — enforced by differential property tests.
//!
//! [`TreeDag`]: xtt_trees::TreeDag

pub mod compile;
pub mod engine;
pub mod eval;
pub mod stream;

pub use compile::{compile, fingerprint, CompileError, CompiledDtop, Instr};
pub use engine::{
    CacheStats, ChainStage, DocFormat, Engine, EngineError, EngineOptions, EvalMode, LruCache,
    StreamOutcome, ValidationStats,
};
pub use eval::{DagSink, EvalScratch, Sink, TreeSink};
pub use stream::{
    ranked_tree_from_xml, ranked_tree_from_xml_bounded, tree_to_xml, tree_to_xml_attrs,
    unknown_symbol, xml_ranked_events, xml_ranked_events_bounded, xml_serializable,
    xml_serializable_attrs, ChainedEvaluator, EmitStats, Feed, FnSink, GuardedSource,
    GuardedXmlError, IterEvents, OutputSink, StreamEvaluator, StreamRun, TreeCollector,
    TreeEventSource, XmlRankedEvents,
};
/// Re-exported from `xtt-typecheck`: the typed diagnostic carried by
/// [`EngineError::Type`] under guarded evaluation.
pub use xtt_typecheck::TypeError;
/// Re-exported from `xtt-unranked`: the encoding handle behind
/// [`DocFormat::Encoded`].
pub use xtt_unranked::XmlCodec;
