//! The compiled evaluator: an iterative, allocation-free interpreter for
//! [`CompiledDtop`] instruction sequences.
//!
//! Semantics are exactly Definition 1 (`⟦M⟧`, see `xtt_transducer::eval`),
//! but the execution strategy is engineered for throughput:
//!
//! * the input tree is **flattened once** into dense arrays (symbol id,
//!   child range) — no pointer chasing or `Rc` traffic afterwards;
//! * memoization uses a **dense table** indexed by `q · n_nodes + node`
//!   instead of a hash map, so copying transducers stay linear without
//!   hashing on the hot path;
//! * the interpreter runs on **explicit stacks** (activation records +
//!   value/frame stacks), so arbitrarily deep inputs cannot overflow the
//!   call stack;
//! * all per-evaluation state lives in a reusable [`EvalScratch`]: after
//!   warm-up, steady-state evaluation performs no allocations beyond the
//!   output itself.
//!
//! Output construction is pluggable through [`Sink`]: [`TreeSink`] builds
//! materialized [`Tree`]s, [`DagSink`] interns directly into a
//! [`TreeDag`] so exponential outputs stay minimal-DAG-sized (the paper's
//! Section 1 trick).

use xtt_trees::{DagId, Symbol, Tree, TreeDag};

use crate::compile::{CompiledDtop, Instr};

/// Builds output values bottom-up; the machine is generic over this.
pub trait Sink {
    type Val: Clone;

    /// Whether values are context-free and may be cached per instruction
    /// across documents (true for owned trees; false for arena ids, which
    /// are only meaningful inside one arena).
    const CACHE_LEAVES: bool;

    /// Whether equal nodes should be interned across documents (the
    /// paper's minimal-DAG sharing applied as value hash-consing). Only
    /// sound together with a faithful [`Sink::identity`].
    const INTERN: bool = false;

    /// A stable identity for a value: `identity(a) == identity(b)` must
    /// imply structural equality *while both values are alive*.
    fn identity(_val: &Self::Val) -> u64 {
        0
    }

    /// Builds the node `sym(vals[base..])`, consuming `vals[base..]`.
    fn node(&mut self, sym: Symbol, vals: &mut Vec<Self::Val>, base: usize) -> Self::Val;
}

/// Builds materialized [`Tree`]s.
#[derive(Debug, Default, Clone, Copy)]
pub struct TreeSink;

impl Sink for TreeSink {
    type Val = Tree;
    const CACHE_LEAVES: bool = true;
    // `Rc` address identity: equal addresses are the same tree. The
    // intern table keeps its values alive, so addresses cannot be reused
    // while they key the table.
    const INTERN: bool = true;

    fn identity(val: &Tree) -> u64 {
        val.addr() as u64
    }

    fn node(&mut self, sym: Symbol, vals: &mut Vec<Tree>, base: usize) -> Tree {
        Tree::new(sym, vals.split_off(base))
    }
}

/// Interns output nodes into a [`TreeDag`] arena: equal subtrees are
/// stored once, so exponential outputs cost linear space.
pub struct DagSink<'a>(pub &'a mut TreeDag);

impl Sink for DagSink<'_> {
    type Val = DagId;
    // A DagId is only valid inside the arena of one `eval_dag` call chain;
    // the scratch may later be used with a different arena.
    const CACHE_LEAVES: bool = false;

    fn node(&mut self, sym: Symbol, vals: &mut Vec<DagId>, base: usize) -> DagId {
        let id = self.0.intern_node(sym, vals[base..].to_vec());
        vals.truncate(base);
        id
    }
}

/// A node of the flattened input tree.
#[derive(Clone, Copy, Debug)]
struct FlatNode {
    /// Dense input-symbol id, or [`crate::compile::NO_SYM`].
    sym: u32,
    child_start: u32,
    child_count: u32,
}

/// Virtual axiom node id (its single "child" is the input root).
const VIRT: u32 = u32::MAX;
/// Activation-record state marker for the axiom (not memoized).
const NO_Q: u16 = u16::MAX;

/// A suspended rule application: instructions `ip..end` of `rhs(q, node)`.
#[derive(Clone, Copy, Debug)]
struct Activation {
    ip: u32,
    end: u32,
    node: u32,
    q: u16,
    /// Frame-stack depth when the activation started; frames above it
    /// belong to this rule body.
    fbase: u32,
}

/// A pending output node awaiting `arity` children on the value stack.
#[derive(Clone, Copy, Debug)]
struct Frame {
    sym: Symbol,
    base: u32,
    arity: u32,
}

/// One interned output node: the exact key (symbol + child identities)
/// plus the shared value. Values are kept alive by the table, which is
/// what makes identity-based keys sound.
struct InternEntry<V> {
    sym: u32,
    children: Box<[u64]>,
    val: V,
}

/// Trivial hasher for pre-mixed `u64` keys.
#[derive(Default)]
struct PremixedHasher(u64);

impl std::hash::Hasher for PremixedHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("intern keys are written as u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type InternMap<V> = std::collections::HashMap<
    u64,
    Vec<InternEntry<V>>,
    std::hash::BuildHasherDefault<PremixedHasher>,
>;

/// Intern-table size bound; crossing it clears the table (bulk workloads
/// re-warm it within a document or two).
const INTERN_CAP: usize = 1 << 17;

/// Reusable evaluation state. Create once per worker thread and pass to
/// every [`CompiledDtop::eval`] call; buffers are retained across
/// documents, so steady-state evaluation allocates nothing.
#[derive(Default)]
pub struct EvalScratch<V> {
    nodes: Vec<FlatNode>,
    children: Vec<u32>,
    memo: Vec<Option<V>>,
    /// Memo slots written during the current document; resetting clears
    /// exactly these instead of the whole table.
    dirty: Vec<usize>,
    /// Per-instruction cache of leaf values (see [`Sink::CACHE_LEAVES`]),
    /// valid for the compiled transducer identified by `cached_fp`.
    leaf_cache: Vec<Option<V>>,
    cached_fp: Option<u64>,
    /// Cross-document hash-consing of output nodes (see [`Sink::INTERN`]).
    intern: InternMap<V>,
    interned: usize,
    acts: Vec<Activation>,
    vals: Vec<V>,
    frames: Vec<Frame>,
}

impl<V: Clone> EvalScratch<V> {
    pub fn new() -> EvalScratch<V> {
        EvalScratch {
            nodes: Vec::new(),
            children: Vec::new(),
            memo: Vec::new(),
            dirty: Vec::new(),
            leaf_cache: Vec::new(),
            cached_fp: None,
            intern: InternMap::default(),
            interned: 0,
            acts: Vec::new(),
            vals: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Flattens `input` and resets the memo table for `c`.
    fn prepare(&mut self, c: &CompiledDtop, input: &Tree) {
        if self.cached_fp != Some(c.fingerprint()) {
            self.cached_fp = Some(c.fingerprint());
            self.leaf_cache.clear();
            self.leaf_cache.resize(c.code_len(), None);
        }
        self.nodes.clear();
        self.children.clear();
        self.nodes.push(FlatNode {
            sym: c.dense_sym(input.symbol()),
            child_start: 0,
            child_count: input.arity() as u32,
        });
        let mut stack: Vec<(&Tree, u32)> = vec![(input, 0)];
        while let Some((t, id)) = stack.pop() {
            let cs = self.children.len() as u32;
            self.nodes[id as usize].child_start = cs;
            for child in t.children() {
                let cid = self.nodes.len() as u32;
                self.nodes.push(FlatNode {
                    sym: c.dense_sym(child.symbol()),
                    child_start: 0,
                    child_count: child.arity() as u32,
                });
                self.children.push(cid);
            }
            for (i, child) in t.children().iter().enumerate() {
                stack.push((child, self.children[cs as usize + i]));
            }
        }
        assert!(self.nodes.len() < VIRT as usize, "input too large");
        for slot in self.dirty.drain(..) {
            self.memo[slot] = None;
        }
        let len = c.state_count() * self.nodes.len();
        if self.memo.len() < len {
            self.memo.resize(len, None);
        }
    }
}

impl CompiledDtop {
    /// Evaluates `⟦M⟧(input)` with reusable scratch state. `None` iff
    /// `input ∉ dom(⟦M⟧)` — bit-for-bit the partiality of
    /// `xtt_transducer::eval::eval`.
    pub fn eval(&self, input: &Tree, scratch: &mut EvalScratch<Tree>) -> Option<Tree> {
        scratch.prepare(self, input);
        run(self, scratch, &mut TreeSink)
    }

    /// One-shot convenience wrapper around [`CompiledDtop::eval`].
    pub fn eval_once(&self, input: &Tree) -> Option<Tree> {
        self.eval(input, &mut EvalScratch::new())
    }

    /// Evaluates into a [`TreeDag`]: the output is returned as a node of
    /// the arena and shared subtrees are stored once, so exponential
    /// outputs cost linear time and space.
    pub fn eval_dag(
        &self,
        input: &Tree,
        scratch: &mut EvalScratch<DagId>,
        dag: &mut TreeDag,
    ) -> Option<DagId> {
        scratch.prepare(self, input);
        run(self, scratch, &mut DagSink(dag))
    }
}

/// The interpreter loop. Executes the axiom's instruction sequence; every
/// `Call` either hits the memo table or pushes an activation record for
/// the callee's rule. Returns `None` on the first missing rule or
/// out-of-range variable (partiality propagates to the top, so aborting
/// early is exact).
///
/// The current activation is kept in locals (only suspended rules touch
/// the activation stack), leaf instructions hit the per-instruction value
/// cache when the sink allows it, and memo writes are dirty-tracked so
/// the next document resets only what this one touched.
fn run<S: Sink>(c: &CompiledDtop, sc: &mut EvalScratch<S::Val>, sink: &mut S) -> Option<S::Val> {
    let n_nodes = sc.nodes.len();
    sc.acts.clear();
    sc.vals.clear();
    sc.frames.clear();
    let code = c.code();
    let (ax_start, ax_end) = c.axiom_range();
    let mut act = Activation {
        ip: ax_start,
        end: ax_end,
        node: VIRT,
        q: NO_Q,
        fbase: 0,
    };
    loop {
        while act.ip < act.end {
            let instr = code[act.ip as usize];
            let at = act.ip as usize;
            act.ip += 1;
            match instr {
                Instr::Out { sym, arity: 0 } => {
                    let v = if S::CACHE_LEAVES {
                        match &sc.leaf_cache[at] {
                            Some(v) => v.clone(),
                            None => {
                                let base = sc.vals.len();
                                let v = sink.node(sym, &mut sc.vals, base);
                                sc.leaf_cache[at] = Some(v.clone());
                                v
                            }
                        }
                    } else {
                        let base = sc.vals.len();
                        sink.node(sym, &mut sc.vals, base)
                    };
                    sc.vals.push(v);
                    complete_frames(sc, sink, act.fbase);
                }
                Instr::Out { sym, arity } => sc.frames.push(Frame {
                    sym,
                    base: sc.vals.len() as u32,
                    arity,
                }),
                Instr::Call { q, child } => {
                    let node = if act.node == VIRT {
                        0 // axiom calls target the input root (x0)
                    } else {
                        let n = sc.nodes[act.node as usize];
                        if u32::from(child) >= n.child_count {
                            return None; // variable beyond the node's children
                        }
                        sc.children[(n.child_start + u32::from(child)) as usize]
                    };
                    let slot = q as usize * n_nodes + node as usize;
                    if let Some(v) = sc.memo[slot].clone() {
                        sc.vals.push(v);
                        complete_frames(sc, sink, act.fbase);
                    } else {
                        let sym = sc.nodes[node as usize].sym;
                        let (start, end) = c.rule_range(q, sym)?;
                        sc.acts.push(act);
                        act = Activation {
                            ip: start,
                            end,
                            node,
                            q,
                            fbase: sc.frames.len() as u32,
                        };
                    }
                }
            }
        }
        // Rule body finished: its single value is on top of `vals`.
        debug_assert_eq!(sc.frames.len() as u32, act.fbase);
        if act.q != NO_Q {
            let v = sc.vals.last().expect("rule produced a value").clone();
            let slot = act.q as usize * n_nodes + act.node as usize;
            sc.memo[slot] = Some(v);
            sc.dirty.push(slot);
        }
        match sc.acts.pop() {
            None => {
                debug_assert_eq!(sc.vals.len(), 1);
                return sc.vals.pop();
            }
            Some(parent) => {
                act = parent;
                complete_frames(sc, sink, act.fbase);
            }
        }
    }
}

/// Pops every frame (down to `floor`) whose children are all on the value
/// stack, building the corresponding output nodes.
fn complete_frames<S: Sink>(sc: &mut EvalScratch<S::Val>, sink: &mut S, floor: u32) {
    while sc.frames.len() as u32 > floor {
        let f = *sc.frames.last().expect("frame");
        if sc.vals.len() as u32 != f.base + f.arity {
            break;
        }
        sc.frames.pop();
        let v = make_node(
            &mut sc.vals,
            &mut sc.intern,
            &mut sc.interned,
            sink,
            f.sym,
            f.base as usize,
        );
        sc.vals.push(v);
    }
}

/// Builds `sym(vals[base..])` through the sink, hash-consing the node
/// across documents when the sink supports it: if an identical node
/// (same symbol, same child identities) was built before, the shared
/// value is reused and no construction happens at all.
fn make_node<S: Sink>(
    vals: &mut Vec<S::Val>,
    intern: &mut InternMap<S::Val>,
    interned: &mut usize,
    sink: &mut S,
    sym: Symbol,
    base: usize,
) -> S::Val {
    if !S::INTERN {
        return sink.node(sym, vals, base);
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(sym.id());
    h = h.wrapping_mul(0x100_0000_01b3);
    for v in &vals[base..] {
        h ^= S::identity(v);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if let Some(bucket) = intern.get(&h) {
        'entry: for entry in bucket {
            if entry.sym != sym.id() || entry.children.len() != vals.len() - base {
                continue;
            }
            for (&id, v) in entry.children.iter().zip(&vals[base..]) {
                if id != S::identity(v) {
                    continue 'entry;
                }
            }
            let val = entry.val.clone();
            vals.truncate(base);
            return val;
        }
    }
    let children: Box<[u64]> = vals[base..].iter().map(S::identity).collect();
    let val = sink.node(sym, vals, base);
    if *interned >= INTERN_CAP {
        intern.clear();
        *interned = 0;
    }
    intern.entry(h).or_default().push(InternEntry {
        sym: sym.id(),
        children,
        val: val.clone(),
    });
    *interned += 1;
    val
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use xtt_transducer::{eval as walk_eval, examples};
    use xtt_trees::{gen::enumerate_trees, parse_tree};

    #[test]
    fn agrees_with_tree_walk_on_fixtures() {
        for fix in [
            examples::flip(),
            examples::library(),
            examples::monadic_to_binary(),
            examples::flip_k(3),
            examples::relabel_chain(4),
        ] {
            let c = compile(&fix.dtop).unwrap();
            let mut scratch = EvalScratch::new();
            for t in enumerate_trees(fix.dtop.input(), 120, 9) {
                assert_eq!(c.eval(&t, &mut scratch), walk_eval(&fix.dtop, &t), "on {t}");
            }
        }
    }

    #[test]
    fn flip_paper_pairs() {
        let c = compile(&examples::flip().dtop).unwrap();
        let mut scratch = EvalScratch::new();
        let cases = [
            ("root(#,#)", "root(#,#)"),
            ("root(a(#,#),#)", "root(#,a(#,#))"),
            ("root(#,b(#,#))", "root(b(#,#),#)"),
            (
                "root(a(#,a(#,#)),b(#,b(#,#)))",
                "root(b(#,b(#,#)),a(#,a(#,#)))",
            ),
        ];
        for (input, expected) in cases {
            let s = parse_tree(input).unwrap();
            assert_eq!(
                c.eval(&s, &mut scratch).unwrap().to_string(),
                expected,
                "on {input}"
            );
        }
        // partiality: an a-list where the b-list belongs
        assert_eq!(
            c.eval(&parse_tree("root(#,a(#,#))").unwrap(), &mut scratch),
            None
        );
        // out-of-alphabet symbol anywhere reachable is undefined
        assert_eq!(c.eval(&parse_tree("zzz(#,#)").unwrap(), &mut scratch), None);
    }

    #[test]
    fn copying_is_linear_and_shares_output() {
        let c = compile(&examples::monadic_to_binary().dtop).unwrap();
        let mut input = Tree::leaf_named("e");
        for _ in 0..24 {
            input = Tree::node("f", vec![input]);
        }
        let out = c.eval_once(&input).unwrap();
        assert_eq!(out.size(), (1 << 25) - 1);
        assert_eq!(out.height(), 24);
    }

    #[test]
    fn dag_output_is_minimal_for_copying() {
        let c = compile(&examples::monadic_to_binary().dtop).unwrap();
        let mut scratch = EvalScratch::new();
        let mut dag = TreeDag::new();
        let mut input = Tree::leaf_named("e");
        for _ in 0..40 {
            input = Tree::node("f", vec![input]);
        }
        // 2^41 - 1 output nodes as a 41-node DAG, without materializing.
        let id = c.eval_dag(&input, &mut scratch, &mut dag).unwrap();
        let stats = dag.stats(id);
        assert_eq!(stats.tree_size, (1u64 << 41) - 1);
        assert_eq!(stats.dag_size, 41);
    }

    #[test]
    fn dag_output_extracts_to_walk_result() {
        for fix in [examples::flip(), examples::library()] {
            let c = compile(&fix.dtop).unwrap();
            let mut scratch = EvalScratch::new();
            let mut dag = TreeDag::new();
            for t in enumerate_trees(fix.dtop.input(), 60, 8) {
                let via_dag = c
                    .eval_dag(&t, &mut scratch, &mut dag)
                    .map(|id| dag.extract(id));
                assert_eq!(via_dag, walk_eval(&fix.dtop, &t), "on {t}");
            }
        }
    }

    #[test]
    fn deep_monadic_input_no_stack_overflow() {
        let c = compile(&examples::relabel_chain(2).dtop).unwrap();
        let mut t = Tree::leaf_named("e");
        for _ in 0..200_000 {
            t = Tree::node("f", vec![t]);
        }
        // The relabeling of a 200k-deep monadic chain must not recurse on
        // input depth (explicit activation stack).
        let mut scratch = EvalScratch::new();
        let out = c.eval(&t, &mut scratch).unwrap();
        assert_eq!(out.size(), t.size());
    }

    #[test]
    fn scratch_reuse_is_sound_across_documents() {
        let c = compile(&examples::flip().dtop).unwrap();
        let mut scratch = EvalScratch::new();
        let a = parse_tree("root(a(#,#),b(#,#))").unwrap();
        let bad = parse_tree("root(b(#,#),#)").unwrap();
        for _ in 0..3 {
            assert_eq!(
                c.eval(&a, &mut scratch).unwrap().to_string(),
                "root(b(#,#),a(#,#))"
            );
            assert_eq!(c.eval(&bad, &mut scratch), None);
        }
    }

    #[test]
    fn constant_axiom_ignores_input() {
        let c = compile(&examples::constant_m1().dtop).unwrap();
        let mut scratch = EvalScratch::new();
        for text in ["a", "f(a,a)", "f(f(a,a),a)"] {
            let t = parse_tree(text).unwrap();
            assert_eq!(c.eval(&t, &mut scratch).unwrap().to_string(), "b");
        }
    }
}
