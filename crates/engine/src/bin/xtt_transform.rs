//! `xtt-transform` — transform newline-delimited documents at throughput.
//!
//! ```console
//! $ printf 'root(a(#,#),b(#,#))\n' | xtt-transform --example flip
//! root(b(#,#),a(#,#))
//! $ xtt-transform --example flip --demo 100000 --mode compiled --quiet
//! ... throughput stats on stderr ...
//! ```
//!
//! One document per input line; results (or `!error: …`) one per output
//! line, in input order. `--demo N` generates a synthetic corpus for the
//! chosen example instead of reading stdin, which is how the CI smoke
//! test and quick benchmarking run it.

use std::io::{BufWriter, Read, Write};
use std::time::Instant;

use xtt_engine::{tree_to_xml, DocFormat, Engine, EngineOptions, EvalMode};
use xtt_transducer::{examples, Dtop};
use xtt_trees::Tree;

const USAGE: &str = "\
xtt-transform: apply a dtop to newline-delimited documents

USAGE: xtt-transform [OPTIONS]

OPTIONS:
  --example <flip|library|copy>  built-in transducer        [default: flip]
  --mode <compiled|stream|dag|walk>  evaluator              [default: compiled]
  --format <term|xml>            document syntax            [default: term]
  --jobs <N>                     worker threads (0 = auto)  [default: 0]
  --demo <N>                     generate N demo documents instead of stdin
  --validate                     guarded evaluation: reject out-of-domain
                                 documents with a typed violation path
  --quiet                        suppress per-document output
  --help                         print this help
";

struct Args {
    example: String,
    mode: EvalMode,
    format: DocFormat,
    jobs: usize,
    demo: Option<usize>,
    validate: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        example: "flip".to_owned(),
        mode: EvalMode::Compiled,
        format: DocFormat::Term,
        jobs: 0,
        demo: None,
        validate: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--example" => args.example = value("--example")?,
            "--mode" => {
                let name = value("--mode")?;
                args.mode =
                    EvalMode::parse(&name).ok_or_else(|| format!("unknown mode '{name}'"))?;
            }
            "--format" => {
                let name = value("--format")?;
                args.format =
                    DocFormat::parse(&name).ok_or_else(|| format!("unknown format '{name}'"))?;
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs value".to_owned())?
            }
            "--demo" => {
                args.demo = Some(
                    value("--demo")?
                        .parse()
                        .map_err(|_| "bad --demo value".to_owned())?,
                )
            }
            "--validate" => args.validate = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(args)
}

fn example_dtop(name: &str) -> Result<Dtop, String> {
    match name {
        "flip" => Ok(examples::flip().dtop),
        "library" => Ok(examples::library().dtop),
        "copy" => Ok(examples::monadic_to_binary().dtop),
        other => Err(format!(
            "unknown example '{other}' (expected flip, library, or copy)"
        )),
    }
}

fn demo_doc(example: &str, i: usize) -> Tree {
    match example {
        "library" => examples::library_input(i % 6 + 1),
        "copy" => {
            let mut t = Tree::leaf_named("e");
            for _ in 0..(i % 12 + 1) {
                t = Tree::node("f", vec![t]);
            }
            t
        }
        _ => examples::flip_input(i % 8 + 1, i % 5 + 1),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let dtop = match example_dtop(&args.example) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let docs: Vec<String> = match args.demo {
        Some(n) => (0..n)
            .map(|i| {
                let t = demo_doc(&args.example, i);
                match args.format {
                    DocFormat::Term => t.to_string(),
                    DocFormat::Xml => tree_to_xml(&t),
                }
            })
            .collect(),
        None => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() {
                eprintln!("error: stdin is not valid UTF-8");
                std::process::exit(2);
            }
            buf.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(str::to_owned)
                .collect()
        }
    };

    let engine = Engine::new(EngineOptions {
        workers: args.jobs,
        mode: args.mode,
        format: args.format,
        validate: args.validate,
        ..EngineOptions::default()
    });

    let in_bytes: usize = docs.iter().map(String::len).sum();
    let t0 = Instant::now();
    let results = engine.transform_batch(&dtop, &docs);
    let elapsed = t0.elapsed();

    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let mut failures = 0usize;
    for result in &results {
        match result {
            Ok(text) => {
                if !args.quiet {
                    writeln!(out, "{text}").expect("write stdout");
                }
            }
            Err(e) => {
                failures += 1;
                if !args.quiet {
                    writeln!(out, "!error: {e}").expect("write stdout");
                }
            }
        }
    }
    out.flush().expect("flush stdout");

    let secs = elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "{} docs ({} ok, {} failed) in {:.3}s — {:.0} docs/s, {:.2} MB/s in",
        docs.len(),
        docs.len() - failures,
        failures,
        secs,
        docs.len() as f64 / secs,
        in_bytes as f64 / secs / 1e6,
    );
}
