//! The serving layer: a worker pool over the compiled evaluator with an
//! LRU cache of compiled transducers.
//!
//! [`Engine::transform_batch`] takes documents as *text* (term syntax or
//! XML) and returns transformed text, which keeps the API `Send`-clean —
//! the `Rc`-based [`xtt_trees::Tree`] never crosses a thread boundary;
//! each worker parses, evaluates (with its own warm [`EvalScratch`] /
//! [`StreamEvaluator`]), and serializes locally. Work is distributed by an
//! atomic cursor, so skewed document sizes cannot starve workers.
//!
//! Compiled transducers are cached by [`crate::fingerprint`] in a small
//! LRU behind a mutex and shared as `Arc<CompiledDtop>`; repeat traffic
//! for the same transducer never recompiles.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use xtt_transducer::{eval as walk_eval, Dtop};
use xtt_trees::{parse_tree, DagId, TreeDag};

use crate::compile::{compile, fingerprint, CompileError, CompiledDtop};
use crate::eval::EvalScratch;
use crate::stream::{ranked_tree_from_xml_bounded, tree_to_xml, StreamEvaluator};

/// Which evaluator the engine runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Flatten the document and run the compiled interpreter (fastest).
    #[default]
    Compiled,
    /// Run over the event stream, keeping only the spine in memory.
    Streaming,
    /// Evaluate into a [`TreeDag`] arena (shared subtrees built once) and
    /// extract; worthwhile for copying transducers with large outputs.
    Dag,
    /// The research evaluator `xtt_transducer::eval` (baseline).
    TreeWalk,
}

impl EvalMode {
    /// Parses the names used by the CLI and the HTTP API
    /// (`tree`/`compiled`, `stream`, `dag`, `walk`).
    pub fn parse(name: &str) -> Option<EvalMode> {
        match name {
            "tree" | "compiled" => Some(EvalMode::Compiled),
            "stream" | "streaming" => Some(EvalMode::Streaming),
            "dag" => Some(EvalMode::Dag),
            "walk" | "treewalk" => Some(EvalMode::TreeWalk),
            _ => None,
        }
    }
}

/// How documents are parsed and results serialized.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DocFormat {
    /// The workspace term syntax, e.g. `root(a(#,#),b(#,#))`.
    #[default]
    Term,
    /// XML (lenient), via [`crate::xml_ranked_events`].
    Xml,
}

impl DocFormat {
    /// Parses the names used by the CLI and the HTTP API.
    pub fn parse(name: &str) -> Option<DocFormat> {
        match name {
            "term" => Some(DocFormat::Term),
            "xml" => Some(DocFormat::Xml),
            _ => None,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Worker threads for [`Engine::transform_batch`]; 0 = one per
    /// available CPU.
    pub workers: usize,
    /// Capacity of the compiled-transducer LRU cache.
    pub cache_capacity: usize,
    pub mode: EvalMode,
    pub format: DocFormat,
    /// When set, documents whose *output tree* would exceed this many
    /// nodes fail with [`EngineError::OutputTooLarge`] instead of being
    /// materialized. The bound is checked with a linear-time DAG
    /// pre-flight (copying transducers produce exponentially large
    /// outputs from tiny inputs — a server must not materialize them).
    /// `None` = unbounded (library/CLI default).
    ///
    /// Trade-off: the pre-flight needs the input tree, so with a bound
    /// configured `EvalMode::Streaming` over XML materializes the input
    /// (the output was never spine-only — it is built in full in every
    /// mode) instead of running directly over the tokenizer events.
    pub max_output_nodes: Option<u64>,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            workers: 0,
            cache_capacity: 8,
            mode: EvalMode::Compiled,
            format: DocFormat::Term,
            max_output_nodes: None,
        }
    }
}

/// Per-document failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The document is not parseable in the configured [`DocFormat`].
    Parse(String),
    /// The document is outside `dom(⟦M⟧)`.
    Undefined,
    /// The transducer exceeded a compiled-form capacity limit.
    Compile(String),
    /// The evaluator panicked on this document; the rest of the batch is
    /// unaffected (the worker recovers with fresh scratch state).
    Internal(String),
    /// The output tree exceeds [`EngineOptions::max_output_nodes`]
    /// (`.0` is the measured size, saturating at `u64::MAX`).
    OutputTooLarge(u64),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse error: {e}"),
            EngineError::Undefined => write!(f, "input outside the transduction domain"),
            EngineError::Compile(e) => write!(f, "compile error: {e}"),
            EngineError::Internal(e) => write!(f, "internal error: {e}"),
            EngineError::OutputTooLarge(n) => {
                write!(f, "output too large: {n} nodes exceed the configured bound")
            }
        }
    }
}

impl std::error::Error for EngineError {}

struct CacheEntry {
    fp: u64,
    /// The exact rendering the fingerprint hashed; compared on every hit
    /// so a 64-bit collision can never serve the wrong transducer.
    rendering: String,
    last_used: u64,
    compiled: Arc<CompiledDtop>,
}

#[derive(Default)]
struct Cache {
    entries: Vec<CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Cache observability counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// A reusable transformation service; see the module docs.
pub struct Engine {
    opts: EngineOptions,
    cache: Mutex<Cache>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineOptions::default())
    }
}

impl Engine {
    pub fn new(opts: EngineOptions) -> Engine {
        Engine {
            opts,
            cache: Mutex::new(Cache::default()),
        }
    }

    /// A shareable handle, for long-lived services (`xtt-serve`) that hand
    /// one engine to many connection handlers.
    pub fn shared(opts: EngineOptions) -> Arc<Engine> {
        Arc::new(Engine::new(opts))
    }

    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The compiled form of `dtop`, from the LRU cache when its
    /// fingerprint was seen before (hits are verified against the exact
    /// rendered structure, not just the hash).
    pub fn compiled(&self, dtop: &Dtop) -> Result<Arc<CompiledDtop>, CompileError> {
        let fp = fingerprint(dtop);
        let rendering = dtop.to_string();
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache
            .entries
            .iter_mut()
            .find(|e| e.fp == fp && e.rendering == rendering)
        {
            entry.last_used = tick;
            let hit = Arc::clone(&entry.compiled);
            cache.hits += 1;
            return Ok(hit);
        }
        let compiled = Arc::new(compile(dtop)?);
        cache.misses += 1;
        let capacity = self.opts.cache_capacity.max(1);
        if cache.entries.len() >= capacity {
            let (evict, _) = cache
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("cache not empty");
            cache.entries.swap_remove(evict);
        }
        cache.entries.push(CacheEntry {
            fp,
            rendering,
            last_used: tick,
            compiled: Arc::clone(&compiled),
        });
        Ok(compiled)
    }

    /// Cache counters (for observability and tests).
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            entries: cache.entries.len(),
        }
    }

    /// Transforms one document with the engine's configured mode/format
    /// (no thread pool; uses a transient scratch).
    pub fn transform(&self, dtop: &Dtop, doc: &str) -> Result<String, EngineError> {
        self.transform_with(dtop, doc, self.opts.mode, self.opts.format)
    }

    /// Transforms one document with an explicit mode/format — the
    /// per-request override used by `xtt-serve`'s `?mode=`/`?format=`.
    pub fn transform_with(
        &self,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: DocFormat,
    ) -> Result<String, EngineError> {
        let compiled = self
            .compiled(dtop)
            .map_err(|e| EngineError::Compile(e.to_string()))?;
        let limit = self.opts.max_output_nodes;
        Worker::new().transform(&compiled, dtop, doc, mode, format, limit)
    }

    /// Transforms a batch of documents, sharded across the worker pool.
    /// Results are in input order; each document fails independently.
    pub fn transform_batch(
        &self,
        dtop: &Dtop,
        docs: &[String],
    ) -> Vec<Result<String, EngineError>> {
        self.transform_batch_with(dtop, docs, self.opts.mode, self.opts.format)
    }

    /// [`Engine::transform_batch`] with an explicit mode/format.
    ///
    /// Failure is strictly per-document and positional: parse errors,
    /// out-of-domain inputs, and even evaluator panics surface as
    /// `Err` at the failing document's index while every other document
    /// still completes.
    pub fn transform_batch_with(
        &self,
        dtop: &Dtop,
        docs: &[String],
        mode: EvalMode,
        format: DocFormat,
    ) -> Vec<Result<String, EngineError>> {
        let compiled = match self.compiled(dtop) {
            Ok(c) => c,
            Err(e) => {
                let err = EngineError::Compile(e.to_string());
                return docs.iter().map(|_| Err(err.clone())).collect();
            }
        };
        let limit = self.opts.max_output_nodes;
        let workers = effective_workers(self.opts.workers, docs.len());
        if workers <= 1 {
            let mut worker = Worker::new();
            return docs
                .iter()
                .map(|d| worker.transform_caught(&compiled, dtop, d, mode, format, limit))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let chunks: Vec<Vec<(usize, Result<String, EngineError>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let compiled = &compiled;
                    let next = &next;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut worker = Worker::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= docs.len() {
                                break;
                            }
                            out.push((
                                i,
                                worker.transform_caught(
                                    compiled, dtop, &docs[i], mode, format, limit,
                                ),
                            ));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine worker panicked"))
                .collect()
        });
        let mut results =
            vec![Err(EngineError::Internal("result was never produced".into())); docs.len()];
        for chunk in chunks {
            for (i, r) in chunk {
                results[i] = r;
            }
        }
        results
    }
}

fn effective_workers(configured: usize, docs: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let w = if configured == 0 { auto } else { configured };
    w.min(docs.max(1))
}

/// Per-thread evaluation state: warm scratches for every mode, plus the
/// DAG arena for [`EvalMode::Dag`]. One per batch worker, recreated after
/// a caught panic (a panic can leave the scratches inconsistent).
struct Worker {
    scratch: EvalScratch<xtt_trees::Tree>,
    stream: StreamEvaluator,
    dag: TreeDag,
    dag_scratch: EvalScratch<DagId>,
}

impl Worker {
    fn new() -> Worker {
        Worker {
            scratch: EvalScratch::new(),
            stream: StreamEvaluator::new(),
            dag: TreeDag::new(),
            dag_scratch: EvalScratch::new(),
        }
    }

    /// [`Worker::transform`] with panic isolation: a panicking document
    /// yields `Err(EngineError::Internal)` instead of poisoning the whole
    /// batch, and the worker continues with fresh scratch state.
    fn transform_caught(
        &mut self,
        compiled: &CompiledDtop,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: DocFormat,
        limit: Option<u64>,
    ) -> Result<String, EngineError> {
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.transform(compiled, dtop, doc, mode, format, limit)
        }));
        result.unwrap_or_else(|panic| {
            *self = Worker::new();
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "evaluator panicked".to_owned());
            Err(EngineError::Internal(msg))
        })
    }

    fn transform(
        &mut self,
        compiled: &CompiledDtop,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: DocFormat,
        limit: Option<u64>,
    ) -> Result<String, EngineError> {
        match format {
            DocFormat::Term => {
                let input = parse_tree(doc).map_err(|e| EngineError::Parse(e.to_string()))?;
                let preflight = self.check_output_bound(compiled, &input, limit)?;
                let output = self.eval_tree(compiled, dtop, &input, mode, preflight)?;
                Ok(output.to_string())
            }
            DocFormat::Xml => {
                let output = match (mode, limit) {
                    (EvalMode::Streaming, None) => self
                        .stream
                        .eval_xml(compiled, doc)
                        .map_err(|e| EngineError::Parse(e.to_string()))?
                        .ok_or(EngineError::Undefined)?,
                    _ => {
                        let input = ranked_tree_from_xml_bounded(doc)
                            .map_err(|e| EngineError::Parse(e.to_string()))?;
                        let preflight = self.check_output_bound(compiled, &input, limit)?;
                        match mode {
                            EvalMode::Streaming => self
                                .stream
                                .eval_tree(compiled, &input)
                                .ok_or(EngineError::Undefined)?,
                            _ => self.eval_tree(compiled, dtop, &input, mode, preflight)?,
                        }
                    }
                };
                if !crate::stream::xml_serializable(&output) {
                    return Err(EngineError::Parse(
                        "output has inner symbols that are not XML names; use the term format"
                            .into(),
                    ));
                }
                Ok(tree_to_xml(&output))
            }
        }
    }

    /// Enforces [`EngineOptions::max_output_nodes`]: a linear-time DAG
    /// evaluation measures the output-tree size *without materializing
    /// it* (the DAG is small even when the tree is exponential), so an
    /// over-limit document is rejected before any large allocation.
    /// Returns the DAG root id when a bound was evaluated, so Dag mode
    /// can reuse it instead of evaluating twice.
    fn check_output_bound(
        &mut self,
        compiled: &CompiledDtop,
        input: &xtt_trees::Tree,
        limit: Option<u64>,
    ) -> Result<Option<DagId>, EngineError> {
        let Some(limit) = limit else {
            return Ok(None);
        };
        let id = compiled
            .eval_dag(input, &mut self.dag_scratch, &mut self.dag)
            .ok_or(EngineError::Undefined)?;
        let size = self.dag.tree_size(id);
        if size > limit {
            return Err(EngineError::OutputTooLarge(size));
        }
        Ok(Some(id))
    }

    fn eval_tree(
        &mut self,
        compiled: &CompiledDtop,
        dtop: &Dtop,
        input: &xtt_trees::Tree,
        mode: EvalMode,
        preflight: Option<DagId>,
    ) -> Result<xtt_trees::Tree, EngineError> {
        match mode {
            EvalMode::Compiled => compiled.eval(input, &mut self.scratch),
            EvalMode::Streaming => self.stream.eval_tree(compiled, input),
            // The bound pre-flight (if any) already ran this exact DAG
            // evaluation; reuse its root instead of evaluating again.
            EvalMode::Dag => preflight
                .or_else(|| compiled.eval_dag(input, &mut self.dag_scratch, &mut self.dag))
                .map(|id| self.dag.extract(id)),
            EvalMode::TreeWalk => walk_eval(dtop, input),
        }
        .ok_or(EngineError::Undefined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_transducer::examples;

    fn flip_docs(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| examples::flip_input(i % 5 + 1, (i + 2) % 4 + 1).to_string())
            .collect()
    }

    #[test]
    fn batch_results_are_in_input_order() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            workers: 4,
            ..EngineOptions::default()
        });
        let docs = flip_docs(101);
        let results = engine.transform_batch(&fix.dtop, &docs);
        assert_eq!(results.len(), docs.len());
        let mut scratch = EvalScratch::new();
        let compiled = engine.compiled(&fix.dtop).unwrap();
        for (doc, result) in docs.iter().zip(&results) {
            let expected = compiled
                .eval(&parse_tree(doc).unwrap(), &mut scratch)
                .unwrap()
                .to_string();
            assert_eq!(result.as_ref().unwrap(), &expected);
        }
    }

    #[test]
    fn documents_fail_independently() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            workers: 2,
            ..EngineOptions::default()
        });
        let docs = vec![
            "root(a(#,#),b(#,#))".to_owned(),
            "root(b(#,#),#)".to_owned(), // outside the domain
            "((".to_owned(),             // unparseable
            "root(#,#)".to_owned(),
        ];
        let results = engine.transform_batch(&fix.dtop, &docs);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(EngineError::Undefined));
        assert!(matches!(results[2], Err(EngineError::Parse(_))));
        assert_eq!(results[3].as_deref(), Ok("root(#,#)"));
    }

    #[test]
    fn all_modes_agree_on_batches() {
        let fix = examples::flip();
        let docs = flip_docs(40);
        let mut outputs: Vec<Vec<Result<String, EngineError>>> = Vec::new();
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let engine = Engine::new(EngineOptions {
                workers: 3,
                mode,
                ..EngineOptions::default()
            });
            outputs.push(engine.transform_batch(&fix.dtop, &docs));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
        assert_eq!(outputs[0], outputs[3]);
    }

    /// Regression test for the serving contract: a large batch with
    /// malformed and out-of-domain documents sprinkled in reports each
    /// failure *positionally* — no abort on first error, every other
    /// document still transformed, in every mode and at any worker count.
    #[test]
    fn batch_errors_are_positional_not_aborting() {
        let fix = examples::flip();
        let mut docs = flip_docs(100);
        docs[13] = "root(".to_owned(); // malformed
        docs[57] = "root(b(#,#),#)".to_owned(); // outside the domain
        docs[99] = "((".to_owned(); // malformed
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            for workers in [1, 4] {
                let engine = Engine::new(EngineOptions {
                    workers,
                    mode,
                    ..EngineOptions::default()
                });
                let results = engine.transform_batch(&fix.dtop, &docs);
                assert_eq!(results.len(), docs.len());
                assert!(matches!(results[13], Err(EngineError::Parse(_))));
                assert_eq!(results[57], Err(EngineError::Undefined));
                assert!(matches!(results[99], Err(EngineError::Parse(_))));
                let ok = results.iter().filter(|r| r.is_ok()).count();
                assert_eq!(ok, 97, "every well-formed document must succeed");
            }
        }
    }

    /// With a bound configured, a copying transducer cannot be used to
    /// materialize an exponential output — the DAG pre-flight rejects the
    /// document (in every mode) while small documents still succeed.
    #[test]
    fn output_bound_rejects_exponential_outputs_cheaply() {
        let copier = examples::monadic_to_binary().dtop; // output 2^(depth+1)-1 nodes
        let engine = Engine::new(EngineOptions {
            max_output_nodes: Some(10_000),
            workers: 1,
            ..EngineOptions::default()
        });
        let mut deep = String::from("e");
        for _ in 0..200 {
            deep = format!("f({deep})"); // output ~2^201 nodes, saturates u64
        }
        let docs = vec!["f(f(e))".to_owned(), deep, "e".to_owned()];
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let results = engine.transform_batch_with(&copier, &docs, mode, DocFormat::Term);
            assert_eq!(results[0].as_deref(), Ok("g(g(e,e),g(e,e))"), "{mode:?}");
            assert!(
                matches!(results[1], Err(EngineError::OutputTooLarge(n)) if n > 10_000),
                "{mode:?}: {:?}",
                results[1]
            );
            assert_eq!(results[2].as_deref(), Ok("e"), "{mode:?}");
        }
        // Unbounded engines are unaffected.
        let unbounded = Engine::new(EngineOptions::default());
        assert!(unbounded.transform(&copier, "f(f(f(e)))").is_ok());
    }

    #[test]
    fn per_request_mode_and_format_override_engine_defaults() {
        let fix = examples::flip();
        let engine = Engine::shared(EngineOptions::default()); // Term + Compiled
        let out = engine
            .transform_with(
                &fix.dtop,
                "<root><a># #</a><b># #</b></root>",
                EvalMode::Streaming,
                DocFormat::Xml,
            )
            .unwrap();
        assert_eq!(out, "<root><b># #</b><a># #</a></root>");
        let batch = engine.transform_batch_with(
            &fix.dtop,
            &["root(a(#,#),b(#,#))".to_owned()],
            EvalMode::Dag,
            DocFormat::Term,
        );
        assert_eq!(batch[0].as_deref(), Ok("root(b(#,#),a(#,#))"));
    }

    #[test]
    fn xml_format_roundtrips() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            format: DocFormat::Xml,
            mode: EvalMode::Streaming,
            workers: 1,
            ..EngineOptions::default()
        });
        let out = engine
            .transform(&fix.dtop, "<root><a># #</a><b># #</b></root>")
            .unwrap();
        assert_eq!(out, "<root><b># #</b><a># #</a></root>");
    }

    #[test]
    fn compiled_cache_hits_by_fingerprint() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions::default());
        let a = engine.compiled(&fix.dtop).unwrap();
        let b = engine.compiled(&examples::flip().dtop).unwrap(); // rebuilt, same structure
        assert_eq!(a.fingerprint(), b.fingerprint());
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let engine = Engine::new(EngineOptions {
            cache_capacity: 2,
            ..EngineOptions::default()
        });
        let m1 = examples::flip().dtop;
        let m2 = examples::library().dtop;
        let m3 = examples::monadic_to_binary().dtop;
        engine.compiled(&m1).unwrap();
        engine.compiled(&m2).unwrap();
        engine.compiled(&m1).unwrap(); // refresh m1
        engine.compiled(&m3).unwrap(); // evicts m2
        engine.compiled(&m1).unwrap(); // still cached
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        engine.compiled(&m2).unwrap(); // was evicted → miss
        assert_eq!(engine.cache_stats().misses, 4);
    }
}
