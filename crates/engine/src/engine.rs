//! The serving layer: a worker pool over the compiled evaluator with an
//! LRU cache of compiled transducers.
//!
//! [`Engine::transform_batch`] takes documents as *text* (term syntax or
//! XML) and returns transformed text, which keeps the API `Send`-clean —
//! the `Rc`-based [`xtt_trees::Tree`] never crosses a thread boundary;
//! each worker parses, evaluates (with its own warm [`EvalScratch`] /
//! [`StreamEvaluator`]), and serializes locally. Work is distributed by an
//! atomic cursor, so skewed document sizes cannot starve workers.
//!
//! Compiled transducers are cached by [`crate::fingerprint`] in a small
//! LRU behind a mutex and shared as `Arc<CompiledDtop>`; repeat traffic
//! for the same transducer never recompiles.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use xtt_transducer::{eval as walk_eval, Dtop};
use xtt_trees::{parse_tree, DagId, TreeDag};
use xtt_typecheck::{domain_guard, CompiledDtta, TypeError};
use xtt_unranked::{UnrankedError, XmlCodec};

use crate::compile::{compile, fingerprint, CompileError, CompiledDtop};
use crate::eval::EvalScratch;
use crate::stream::{
    ranked_tree_from_xml_bounded, tree_to_xml, GuardedSource, GuardedXmlError, IterEvents,
    StreamEvaluator,
};

/// Which evaluator the engine runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Flatten the document and run the compiled interpreter (fastest).
    #[default]
    Compiled,
    /// Run over the event stream, keeping only the spine in memory.
    Streaming,
    /// Evaluate into a [`TreeDag`] arena (shared subtrees built once) and
    /// extract; worthwhile for copying transducers with large outputs.
    Dag,
    /// The research evaluator `xtt_transducer::eval` (baseline).
    TreeWalk,
}

impl EvalMode {
    /// Parses the names used by the CLI and the HTTP API
    /// (`tree`/`compiled`, `stream`, `dag`, `walk`).
    pub fn parse(name: &str) -> Option<EvalMode> {
        match name {
            "tree" | "compiled" => Some(EvalMode::Compiled),
            "stream" | "streaming" => Some(EvalMode::Streaming),
            "dag" => Some(EvalMode::Dag),
            "walk" | "treewalk" => Some(EvalMode::TreeWalk),
            _ => None,
        }
    }
}

/// How documents are parsed and results serialized.
#[derive(Clone, Debug, Default)]
pub enum DocFormat {
    /// The workspace term syntax, e.g. `root(a(#,#),b(#,#))`.
    #[default]
    Term,
    /// XML read as a ranked tree directly (elements = symbols of their
    /// child arity, text = whitespace-separated leaf tokens), via
    /// [`crate::xml_ranked_events`].
    Xml,
    /// Genuine unranked XML through a ranked encoding
    /// ([`xtt_unranked::XmlCodec`]): documents are encoded
    /// *incrementally* off the SAX tokenizer (fc/ns or a DTD-based
    /// encoding — in streaming mode with no intermediate tree at all)
    /// and output trees are decoded back to unranked XML text.
    Encoded(XmlCodec),
}

impl DocFormat {
    /// Parses the names used by the CLI and the HTTP API. Named DTD
    /// encodings are resolved by the server's encoding registry; here
    /// only `fcns` is nameable.
    pub fn parse(name: &str) -> Option<DocFormat> {
        match name {
            "term" => Some(DocFormat::Term),
            "xml" => Some(DocFormat::Xml),
            "fcns" => Some(DocFormat::Encoded(XmlCodec::fcns_bounded(
                crate::stream::unknown_symbol(),
            ))),
            _ => None,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Worker threads for [`Engine::transform_batch`]; 0 = one per
    /// available CPU.
    pub workers: usize,
    /// Capacity of the compiled-transducer LRU cache.
    pub cache_capacity: usize,
    pub mode: EvalMode,
    pub format: DocFormat,
    /// When set, documents whose *output tree* would exceed this many
    /// nodes fail with [`EngineError::OutputTooLarge`] instead of being
    /// materialized. The bound is checked with a linear-time DAG
    /// pre-flight (copying transducers produce exponentially large
    /// outputs from tiny inputs — a server must not materialize them).
    /// `None` = unbounded (library/CLI default).
    ///
    /// Trade-off: the pre-flight needs the input tree, so with a bound
    /// configured `EvalMode::Streaming` over XML materializes the input
    /// (the output was never spine-only — it is built in full in every
    /// mode) instead of running directly over the tokenizer events.
    pub max_output_nodes: Option<u64>,
    /// Guarded evaluation: run every document through the transducer's
    /// compiled domain guard (`xtt-typecheck`). Out-of-domain documents
    /// fail with a typed [`EngineError::Type`] diagnostic naming the
    /// first violating node — as a pre-flight in tree/dag/walk modes, and
    /// in lockstep with the event stream in streaming mode (where an
    /// out-of-domain document is rejected without consuming the rest of
    /// its events). Can be overridden per request via
    /// [`Engine::transform_with_validation`].
    pub validate: bool,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            workers: 0,
            cache_capacity: 8,
            mode: EvalMode::Compiled,
            format: DocFormat::Term,
            max_output_nodes: None,
            validate: false,
        }
    }
}

/// Per-document failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The document is not parseable in the configured [`DocFormat`].
    Parse(String),
    /// The document is outside `dom(⟦M⟧)`.
    Undefined,
    /// The transducer exceeded a compiled-form capacity limit.
    Compile(String),
    /// The evaluator panicked on this document; the rest of the batch is
    /// unaffected (the worker recovers with fresh scratch state).
    Internal(String),
    /// With [`DocFormat::Encoded`]: the document does not match the
    /// encoding's DTD, or the output tree is not decodable as unranked
    /// XML under the output encoding.
    Encoding(String),
    /// The output tree exceeds [`EngineOptions::max_output_nodes`]
    /// (`.0` is the measured size, saturating at `u64::MAX`).
    OutputTooLarge(u64),
    /// Guarded evaluation rejected the document: it is outside
    /// `dom(⟦M⟧)`, and the diagnostic names the first violating node.
    /// Only produced when validation is enabled (otherwise out-of-domain
    /// documents surface as [`EngineError::Undefined`]).
    Type(TypeError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse error: {e}"),
            EngineError::Undefined => write!(f, "input outside the transduction domain"),
            EngineError::Compile(e) => write!(f, "compile error: {e}"),
            EngineError::Internal(e) => write!(f, "internal error: {e}"),
            EngineError::Encoding(e) => write!(f, "encoding error: {e}"),
            EngineError::OutputTooLarge(n) => {
                write!(f, "output too large: {n} nodes exceed the configured bound")
            }
            EngineError::Type(e) => write!(f, "type error {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

struct LruEntry<V> {
    fp: u64,
    /// The exact rendering the fingerprint hashed; compared on every hit
    /// so a 64-bit collision can never serve the wrong transducer.
    rendering: String,
    last_used: u64,
    value: V,
}

/// The one LRU discipline behind both the compiled-transducer cache and
/// the domain-guard cache: fingerprint + exact-rendering lookup,
/// least-recently-used eviction on insert.
struct LruCache<V> {
    entries: Vec<LruEntry<V>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<V> Default for LruCache<V> {
    fn default() -> LruCache<V> {
        LruCache {
            entries: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }
}

impl<V: Clone> LruCache<V> {
    fn get_or_insert_with<E>(
        &mut self,
        fp: u64,
        rendering: String,
        capacity: usize,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.fp == fp && e.rendering == rendering)
        {
            entry.last_used = tick;
            self.hits += 1;
            return Ok(entry.value.clone());
        }
        let value = build()?;
        self.misses += 1;
        if self.entries.len() >= capacity.max(1) {
            let (evict, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("cache not empty");
            self.entries.swap_remove(evict);
        }
        self.entries.push(LruEntry {
            fp,
            rendering,
            last_used: tick,
            value: value.clone(),
        });
        Ok(value)
    }
}

/// Cache observability counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// Violation counters for guarded evaluation (see
/// [`Engine::validation_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidationStats {
    /// Documents that went through a domain guard.
    pub docs_validated: u64,
    /// Documents the guard rejected before (or instead of) evaluation.
    pub docs_rejected_pre_eval: u64,
    /// Domain guards built (guard-cache misses).
    pub guards_compiled: u64,
}

#[derive(Default)]
struct ValidationCounters {
    validated: AtomicU64,
    rejected: AtomicU64,
}

/// A reusable transformation service; see the module docs.
pub struct Engine {
    opts: EngineOptions,
    cache: Mutex<LruCache<Arc<CompiledDtop>>>,
    guards: Mutex<LruCache<Arc<CompiledDtta>>>,
    validation: ValidationCounters,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineOptions::default())
    }
}

impl Engine {
    pub fn new(opts: EngineOptions) -> Engine {
        Engine {
            opts,
            cache: Mutex::new(LruCache::default()),
            guards: Mutex::new(LruCache::default()),
            validation: ValidationCounters::default(),
        }
    }

    /// A shareable handle, for long-lived services (`xtt-serve`) that hand
    /// one engine to many connection handlers.
    pub fn shared(opts: EngineOptions) -> Arc<Engine> {
        Arc::new(Engine::new(opts))
    }

    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The compiled form of `dtop`, from the LRU cache when its
    /// fingerprint was seen before (hits are verified against the exact
    /// rendered structure, not just the hash).
    pub fn compiled(&self, dtop: &Dtop) -> Result<Arc<CompiledDtop>, CompileError> {
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.get_or_insert_with(
            fingerprint(dtop),
            dtop.to_string(),
            self.opts.cache_capacity,
            || compile(dtop).map(Arc::new),
        )
    }

    /// Cache counters (for observability and tests).
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            entries: cache.entries.len(),
        }
    }

    /// The compiled domain guard of `dtop`, from its own LRU cache (same
    /// fingerprint key and verification as [`Engine::compiled`]). The
    /// subset construction can blow up on adversarial transducers; a
    /// capacity overrun surfaces as [`EngineError::Compile`] instead of
    /// taking the process down.
    pub fn guard(&self, dtop: &Dtop) -> Result<Arc<CompiledDtta>, EngineError> {
        let mut guards = self.guards.lock().unwrap_or_else(|e| e.into_inner());
        guards.get_or_insert_with(
            fingerprint(dtop),
            dtop.to_string(),
            self.opts.cache_capacity,
            || {
                catch_unwind(AssertUnwindSafe(|| domain_guard(dtop)))
                    .map_err(|_| EngineError::Compile("domain guard construction blew up".into()))?
                    .map(Arc::new)
                    .map_err(|e| EngineError::Compile(e.to_string()))
            },
        )
    }

    /// Guarded-evaluation counters (for `/stats` and tests).
    pub fn validation_stats(&self) -> ValidationStats {
        ValidationStats {
            docs_validated: self.validation.validated.load(Ordering::Relaxed),
            docs_rejected_pre_eval: self.validation.rejected.load(Ordering::Relaxed),
            guards_compiled: self.guards.lock().unwrap_or_else(|e| e.into_inner()).misses,
        }
    }

    /// Counts one batch's guard activity into the violation counters.
    /// Documents that never reached a guard (parse or compile failures)
    /// do not count as validated.
    fn record_validation(&self, results: &[Result<String, EngineError>]) {
        let validated = results
            .iter()
            .filter(|r| !matches!(r, Err(EngineError::Parse(_) | EngineError::Compile(_))))
            .count() as u64;
        let rejected = results
            .iter()
            .filter(|r| matches!(r, Err(EngineError::Type(_))))
            .count() as u64;
        self.validation
            .validated
            .fetch_add(validated, Ordering::Relaxed);
        self.validation
            .rejected
            .fetch_add(rejected, Ordering::Relaxed);
    }

    /// Transforms one document with the engine's configured mode/format
    /// (no thread pool; uses a transient scratch).
    pub fn transform(&self, dtop: &Dtop, doc: &str) -> Result<String, EngineError> {
        self.transform_with(dtop, doc, self.opts.mode, self.opts.format.clone())
    }

    /// Transforms one document with an explicit mode/format — the
    /// per-request override used by `xtt-serve`'s `?mode=`/`?format=`.
    /// Validation follows [`EngineOptions::validate`].
    pub fn transform_with(
        &self,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: DocFormat,
    ) -> Result<String, EngineError> {
        self.transform_with_validation(dtop, doc, mode, format, self.opts.validate)
    }

    /// [`Engine::transform_with`] with an explicit validation override
    /// (the `?validate=` request parameter of `xtt-serve`).
    pub fn transform_with_validation(
        &self,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: DocFormat,
        validate: bool,
    ) -> Result<String, EngineError> {
        let compiled = self
            .compiled(dtop)
            .map_err(|e| EngineError::Compile(e.to_string()))?;
        let guard = if validate {
            Some(self.guard(dtop)?)
        } else {
            None
        };
        let limit = self.opts.max_output_nodes;
        let result =
            Worker::new().transform(&compiled, dtop, doc, mode, &format, limit, guard.as_deref());
        if validate {
            self.record_validation(std::slice::from_ref(&result));
        }
        result
    }

    /// Transforms a batch of documents, sharded across the worker pool.
    /// Results are in input order; each document fails independently.
    pub fn transform_batch(
        &self,
        dtop: &Dtop,
        docs: &[String],
    ) -> Vec<Result<String, EngineError>> {
        self.transform_batch_with(dtop, docs, self.opts.mode, self.opts.format.clone())
    }

    /// [`Engine::transform_batch`] with an explicit mode/format.
    /// Validation follows [`EngineOptions::validate`].
    pub fn transform_batch_with(
        &self,
        dtop: &Dtop,
        docs: &[String],
        mode: EvalMode,
        format: DocFormat,
    ) -> Vec<Result<String, EngineError>> {
        self.transform_batch_with_validation(dtop, docs, mode, format, self.opts.validate)
    }

    /// [`Engine::transform_batch_with`] with an explicit validation
    /// override.
    ///
    /// Failure is strictly per-document and positional: parse errors,
    /// out-of-domain inputs (typed violations under validation), and even
    /// evaluator panics surface as `Err` at the failing document's index
    /// while every other document still completes.
    pub fn transform_batch_with_validation(
        &self,
        dtop: &Dtop,
        docs: &[String],
        mode: EvalMode,
        format: DocFormat,
        validate: bool,
    ) -> Vec<Result<String, EngineError>> {
        let compiled = match self.compiled(dtop) {
            Ok(c) => c,
            Err(e) => {
                let err = EngineError::Compile(e.to_string());
                return docs.iter().map(|_| Err(err.clone())).collect();
            }
        };
        let guard = if validate {
            match self.guard(dtop) {
                Ok(g) => Some(g),
                Err(e) => return docs.iter().map(|_| Err(e.clone())).collect(),
            }
        } else {
            None
        };
        let guard = guard.as_deref();
        let limit = self.opts.max_output_nodes;
        let workers = effective_workers(self.opts.workers, docs.len());
        let format = &format;
        let results = if workers <= 1 {
            let mut worker = Worker::new();
            docs.iter()
                .map(|d| worker.transform_caught(&compiled, dtop, d, mode, format, limit, guard))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let chunks: Vec<Vec<(usize, Result<String, EngineError>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            let compiled = &compiled;
                            let next = &next;
                            scope.spawn(move || {
                                let mut out = Vec::new();
                                let mut worker = Worker::new();
                                loop {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    if i >= docs.len() {
                                        break;
                                    }
                                    out.push((
                                        i,
                                        worker.transform_caught(
                                            compiled, dtop, &docs[i], mode, format, limit, guard,
                                        ),
                                    ));
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("engine worker panicked"))
                        .collect()
                });
            let mut results =
                vec![Err(EngineError::Internal("result was never produced".into())); docs.len()];
            for chunk in chunks {
                for (i, r) in chunk {
                    results[i] = r;
                }
            }
            results
        };
        if validate {
            self.record_validation(&results);
        }
        results
    }
}

/// Maps a streaming-pipeline failure onto the engine's error taxonomy:
/// XML syntax errors are parse errors, DTD/encoding mismatches are
/// encoding errors.
fn encoded_error(e: UnrankedError) -> EngineError {
    match e {
        UnrankedError::Xml(x) => EngineError::Parse(x.to_string()),
        UnrankedError::Encode(x) => EngineError::Encoding(x.to_string()),
    }
}

fn effective_workers(configured: usize, docs: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let w = if configured == 0 { auto } else { configured };
    w.min(docs.max(1))
}

/// Per-thread evaluation state: warm scratches for every mode, plus the
/// DAG arena for [`EvalMode::Dag`]. One per batch worker, recreated after
/// a caught panic (a panic can leave the scratches inconsistent).
struct Worker {
    scratch: EvalScratch<xtt_trees::Tree>,
    stream: StreamEvaluator,
    dag: TreeDag,
    dag_scratch: EvalScratch<DagId>,
}

impl Worker {
    fn new() -> Worker {
        Worker {
            scratch: EvalScratch::new(),
            stream: StreamEvaluator::new(),
            dag: TreeDag::new(),
            dag_scratch: EvalScratch::new(),
        }
    }

    /// [`Worker::transform`] with panic isolation: a panicking document
    /// yields `Err(EngineError::Internal)` instead of poisoning the whole
    /// batch, and the worker continues with fresh scratch state.
    #[allow(clippy::too_many_arguments)]
    fn transform_caught(
        &mut self,
        compiled: &CompiledDtop,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: &DocFormat,
        limit: Option<u64>,
        guard: Option<&CompiledDtta>,
    ) -> Result<String, EngineError> {
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.transform(compiled, dtop, doc, mode, format, limit, guard)
        }));
        result.unwrap_or_else(|panic| {
            *self = Worker::new();
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "evaluator panicked".to_owned());
            Err(EngineError::Internal(msg))
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn transform(
        &mut self,
        compiled: &CompiledDtop,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: &DocFormat,
        limit: Option<u64>,
        guard: Option<&CompiledDtta>,
    ) -> Result<String, EngineError> {
        match format {
            DocFormat::Term => {
                let input = parse_tree(doc).map_err(|e| EngineError::Parse(e.to_string()))?;
                if let Some(g) = guard {
                    if mode == EvalMode::Streaming && limit.is_none() {
                        // Lockstep with the event stream — identical
                        // diagnostics (same DttaRun), exercised here so
                        // term and XML streaming share one guarded path.
                        let output = self.eval_stream_guarded(compiled, g, input.events())?;
                        return Ok(output.to_string());
                    }
                    g.check_tree(&input).map_err(EngineError::Type)?;
                }
                let preflight = self.check_output_bound(compiled, &input, limit)?;
                let output = self.eval_tree(compiled, dtop, &input, mode, preflight)?;
                Ok(output.to_string())
            }
            DocFormat::Xml => {
                let output = match (mode, limit) {
                    (EvalMode::Streaming, None) => match guard {
                        // The fully streaming guarded path: the guard runs
                        // in lockstep with the tokenizer, so an
                        // out-of-domain document stops being tokenized at
                        // its first violating node.
                        Some(g) => self.eval_xml_stream_guarded(compiled, g, doc)?,
                        None => self
                            .stream
                            .eval_xml(compiled, doc)
                            .map_err(|e| EngineError::Parse(e.to_string()))?
                            .ok_or(EngineError::Undefined)?,
                    },
                    _ => {
                        let input = ranked_tree_from_xml_bounded(doc)
                            .map_err(|e| EngineError::Parse(e.to_string()))?;
                        if let Some(g) = guard {
                            g.check_tree(&input).map_err(EngineError::Type)?;
                        }
                        let preflight = self.check_output_bound(compiled, &input, limit)?;
                        match mode {
                            EvalMode::Streaming => self
                                .stream
                                .eval_tree(compiled, &input)
                                .ok_or(EngineError::Undefined)?,
                            _ => self.eval_tree(compiled, dtop, &input, mode, preflight)?,
                        }
                    }
                };
                if !crate::stream::xml_serializable(&output) {
                    return Err(EngineError::Parse(
                        "output has inner symbols that are not XML names; use the term format"
                            .into(),
                    ));
                }
                Ok(tree_to_xml(&output))
            }
            DocFormat::Encoded(codec) => {
                let output = match (mode, limit) {
                    // The fully streaming encoded path: tokenizer →
                    // incremental encoder → (lockstep guard) →
                    // evaluator; no intermediate tree of the input.
                    (EvalMode::Streaming, None) => {
                        self.eval_encoded_stream(compiled, guard, codec, doc)?
                    }
                    _ => {
                        // The same streaming encoder, collected — every
                        // mode validates documents identically.
                        let input = codec.ranked_tree(doc).map_err(encoded_error)?;
                        if let Some(g) = guard {
                            g.check_tree(&input).map_err(EngineError::Type)?;
                        }
                        let preflight = self.check_output_bound(compiled, &input, limit)?;
                        match mode {
                            EvalMode::Streaming => self
                                .stream
                                .eval_tree(compiled, &input)
                                .ok_or(EngineError::Undefined)?,
                            _ => self.eval_tree(compiled, dtop, &input, mode, preflight)?,
                        }
                    }
                };
                codec
                    .decode_tree(&output)
                    .map_err(|e| EngineError::Encoding(e.to_string()))
            }
        }
    }

    /// Streaming evaluation with the domain guard in lockstep: the guard
    /// sees every event first and cuts the stream at the first violation.
    fn eval_stream_guarded(
        &mut self,
        compiled: &CompiledDtop,
        guard: &CompiledDtta,
        events: impl Iterator<Item = xtt_trees::TreeEvent>,
    ) -> Result<xtt_trees::Tree, EngineError> {
        let mut source = GuardedSource::new(guard, IterEvents(events));
        let result = self.stream.eval_source(compiled, &mut source);
        if let Some(violation) = source.take_violation() {
            return Err(EngineError::Type(violation));
        }
        result.ok_or(EngineError::Undefined)
    }

    /// Streaming evaluation over an *encoded* unranked document: ranked
    /// events are produced incrementally by the codec's encoder and fed
    /// straight to the evaluator, with the domain guard composed in
    /// lockstep when validation is on. A guard violation wins over a
    /// later tokenizer/encoding error by construction (the guard cuts
    /// the stream first).
    fn eval_encoded_stream(
        &mut self,
        compiled: &CompiledDtop,
        guard: Option<&CompiledDtta>,
        codec: &XmlCodec,
        doc: &str,
    ) -> Result<xtt_trees::Tree, EngineError> {
        let mut failure: Option<UnrankedError> = None;
        let mut violation: Option<TypeError> = None;
        let result = {
            let events = codec.events(doc).map_while(|r| match r {
                Ok(event) => Some(event),
                Err(e) => {
                    failure = Some(e);
                    None
                }
            });
            match guard {
                Some(g) => {
                    let mut source = GuardedSource::new(g, IterEvents(events));
                    let result = self.stream.eval_source(compiled, &mut source);
                    violation = source.take_violation();
                    result
                }
                None => self.stream.eval(compiled, events),
            }
        };
        if let Some(v) = violation {
            return Err(EngineError::Type(v));
        }
        if let Some(e) = failure {
            return Err(encoded_error(e));
        }
        result.ok_or(EngineError::Undefined)
    }

    /// [`Worker::eval_stream_guarded`] straight off the XML tokenizer —
    /// the input tree is never materialized, and a rejected document's
    /// tail is never tokenized.
    fn eval_xml_stream_guarded(
        &mut self,
        compiled: &CompiledDtop,
        guard: &CompiledDtta,
        xml: &str,
    ) -> Result<xtt_trees::Tree, EngineError> {
        self.stream
            .eval_xml_guarded(compiled, guard, xml)
            .map_err(|e| match e {
                GuardedXmlError::Type(violation) => EngineError::Type(violation),
                GuardedXmlError::Xml(e) => EngineError::Parse(e.to_string()),
            })?
            .ok_or(EngineError::Undefined)
    }

    /// Enforces [`EngineOptions::max_output_nodes`]: a linear-time DAG
    /// evaluation measures the output-tree size *without materializing
    /// it* (the DAG is small even when the tree is exponential), so an
    /// over-limit document is rejected before any large allocation.
    /// Returns the DAG root id when a bound was evaluated, so Dag mode
    /// can reuse it instead of evaluating twice.
    fn check_output_bound(
        &mut self,
        compiled: &CompiledDtop,
        input: &xtt_trees::Tree,
        limit: Option<u64>,
    ) -> Result<Option<DagId>, EngineError> {
        let Some(limit) = limit else {
            return Ok(None);
        };
        let id = compiled
            .eval_dag(input, &mut self.dag_scratch, &mut self.dag)
            .ok_or(EngineError::Undefined)?;
        let size = self.dag.tree_size(id);
        if size > limit {
            return Err(EngineError::OutputTooLarge(size));
        }
        Ok(Some(id))
    }

    fn eval_tree(
        &mut self,
        compiled: &CompiledDtop,
        dtop: &Dtop,
        input: &xtt_trees::Tree,
        mode: EvalMode,
        preflight: Option<DagId>,
    ) -> Result<xtt_trees::Tree, EngineError> {
        match mode {
            EvalMode::Compiled => compiled.eval(input, &mut self.scratch),
            EvalMode::Streaming => self.stream.eval_tree(compiled, input),
            // The bound pre-flight (if any) already ran this exact DAG
            // evaluation; reuse its root instead of evaluating again.
            EvalMode::Dag => preflight
                .or_else(|| compiled.eval_dag(input, &mut self.dag_scratch, &mut self.dag))
                .map(|id| self.dag.extract(id)),
            EvalMode::TreeWalk => walk_eval(dtop, input),
        }
        .ok_or(EngineError::Undefined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_transducer::examples;

    fn flip_docs(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| examples::flip_input(i % 5 + 1, (i + 2) % 4 + 1).to_string())
            .collect()
    }

    #[test]
    fn batch_results_are_in_input_order() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            workers: 4,
            ..EngineOptions::default()
        });
        let docs = flip_docs(101);
        let results = engine.transform_batch(&fix.dtop, &docs);
        assert_eq!(results.len(), docs.len());
        let mut scratch = EvalScratch::new();
        let compiled = engine.compiled(&fix.dtop).unwrap();
        for (doc, result) in docs.iter().zip(&results) {
            let expected = compiled
                .eval(&parse_tree(doc).unwrap(), &mut scratch)
                .unwrap()
                .to_string();
            assert_eq!(result.as_ref().unwrap(), &expected);
        }
    }

    #[test]
    fn documents_fail_independently() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            workers: 2,
            ..EngineOptions::default()
        });
        let docs = vec![
            "root(a(#,#),b(#,#))".to_owned(),
            "root(b(#,#),#)".to_owned(), // outside the domain
            "((".to_owned(),             // unparseable
            "root(#,#)".to_owned(),
        ];
        let results = engine.transform_batch(&fix.dtop, &docs);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(EngineError::Undefined));
        assert!(matches!(results[2], Err(EngineError::Parse(_))));
        assert_eq!(results[3].as_deref(), Ok("root(#,#)"));
    }

    #[test]
    fn all_modes_agree_on_batches() {
        let fix = examples::flip();
        let docs = flip_docs(40);
        let mut outputs: Vec<Vec<Result<String, EngineError>>> = Vec::new();
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let engine = Engine::new(EngineOptions {
                workers: 3,
                mode,
                ..EngineOptions::default()
            });
            outputs.push(engine.transform_batch(&fix.dtop, &docs));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
        assert_eq!(outputs[0], outputs[3]);
    }

    /// Regression test for the serving contract: a large batch with
    /// malformed and out-of-domain documents sprinkled in reports each
    /// failure *positionally* — no abort on first error, every other
    /// document still transformed, in every mode and at any worker count.
    #[test]
    fn batch_errors_are_positional_not_aborting() {
        let fix = examples::flip();
        let mut docs = flip_docs(100);
        docs[13] = "root(".to_owned(); // malformed
        docs[57] = "root(b(#,#),#)".to_owned(); // outside the domain
        docs[99] = "((".to_owned(); // malformed
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            for workers in [1, 4] {
                let engine = Engine::new(EngineOptions {
                    workers,
                    mode,
                    ..EngineOptions::default()
                });
                let results = engine.transform_batch(&fix.dtop, &docs);
                assert_eq!(results.len(), docs.len());
                assert!(matches!(results[13], Err(EngineError::Parse(_))));
                assert_eq!(results[57], Err(EngineError::Undefined));
                assert!(matches!(results[99], Err(EngineError::Parse(_))));
                let ok = results.iter().filter(|r| r.is_ok()).count();
                assert_eq!(ok, 97, "every well-formed document must succeed");
            }
        }
    }

    /// With a bound configured, a copying transducer cannot be used to
    /// materialize an exponential output — the DAG pre-flight rejects the
    /// document (in every mode) while small documents still succeed.
    #[test]
    fn output_bound_rejects_exponential_outputs_cheaply() {
        let copier = examples::monadic_to_binary().dtop; // output 2^(depth+1)-1 nodes
        let engine = Engine::new(EngineOptions {
            max_output_nodes: Some(10_000),
            workers: 1,
            ..EngineOptions::default()
        });
        let mut deep = String::from("e");
        for _ in 0..200 {
            deep = format!("f({deep})"); // output ~2^201 nodes, saturates u64
        }
        let docs = vec!["f(f(e))".to_owned(), deep, "e".to_owned()];
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let results = engine.transform_batch_with(&copier, &docs, mode, DocFormat::Term);
            assert_eq!(results[0].as_deref(), Ok("g(g(e,e),g(e,e))"), "{mode:?}");
            assert!(
                matches!(results[1], Err(EngineError::OutputTooLarge(n)) if n > 10_000),
                "{mode:?}: {:?}",
                results[1]
            );
            assert_eq!(results[2].as_deref(), Ok("e"), "{mode:?}");
        }
        // Unbounded engines are unaffected.
        let unbounded = Engine::new(EngineOptions::default());
        assert!(unbounded.transform(&copier, "f(f(f(e)))").is_ok());
    }

    #[test]
    fn per_request_mode_and_format_override_engine_defaults() {
        let fix = examples::flip();
        let engine = Engine::shared(EngineOptions::default()); // Term + Compiled
        let out = engine
            .transform_with(
                &fix.dtop,
                "<root><a># #</a><b># #</b></root>",
                EvalMode::Streaming,
                DocFormat::Xml,
            )
            .unwrap();
        assert_eq!(out, "<root><b># #</b><a># #</a></root>");
        let batch = engine.transform_batch_with(
            &fix.dtop,
            &["root(a(#,#),b(#,#))".to_owned()],
            EvalMode::Dag,
            DocFormat::Term,
        );
        assert_eq!(batch[0].as_deref(), Ok("root(b(#,#),a(#,#))"));
    }

    #[test]
    fn xml_format_roundtrips() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            format: DocFormat::Xml,
            mode: EvalMode::Streaming,
            workers: 1,
            ..EngineOptions::default()
        });
        let out = engine
            .transform(&fix.dtop, "<root><a># #</a><b># #</b></root>")
            .unwrap();
        assert_eq!(out, "<root><b># #</b><a># #</a></root>");
    }

    /// Guarded evaluation: the typed diagnostic (with the violation path
    /// of the first undefined node) is bit-identical across all four eval
    /// modes and both validation entry points, and in-domain documents
    /// are unaffected.
    #[test]
    fn validation_diagnostics_identical_across_modes() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            validate: true,
            workers: 1,
            ..EngineOptions::default()
        });
        let bad = "root(a(#,b(#,#)),b(#,#))"; // violation at node 1.2
        let good = "root(a(#,#),b(#,#))";
        let mut rendered: Vec<String> = Vec::new();
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let results = engine.transform_batch_with(
                &fix.dtop,
                &[good.to_owned(), bad.to_owned()],
                mode,
                DocFormat::Term,
            );
            assert_eq!(results[0].as_deref(), Ok("root(b(#,#),a(#,#))"), "{mode:?}");
            match &results[1] {
                Err(EngineError::Type(e)) => {
                    assert_eq!(e.path().to_string(), "1.2", "{mode:?}");
                    rendered.push(e.to_string());
                }
                other => panic!("{mode:?}: expected a type error, got {other:?}"),
            }
        }
        rendered.dedup();
        assert_eq!(rendered.len(), 1, "diagnostics differ across modes");
        // Violation counters: 8 validated, 4 rejected.
        let stats = engine.validation_stats();
        assert_eq!(stats.docs_validated, 8);
        assert_eq!(stats.docs_rejected_pre_eval, 4);
        assert_eq!(stats.guards_compiled, 1, "guard cache must hit");
    }

    /// The guarded XML streaming path rejects with the same diagnostic as
    /// the tree-based modes, without validation only an opaque
    /// `Undefined` surfaces, and per-request validation overrides the
    /// engine default.
    #[test]
    fn validation_overrides_and_xml_streaming() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions::default()); // validate off
        let bad_xml = "<root><a># <b># #</b></a><b># #</b></root>";
        let unguarded = engine
            .transform_with(&fix.dtop, bad_xml, EvalMode::Streaming, DocFormat::Xml)
            .unwrap_err();
        assert_eq!(unguarded, EngineError::Undefined);
        let guarded = engine
            .transform_with_validation(
                &fix.dtop,
                bad_xml,
                EvalMode::Streaming,
                DocFormat::Xml,
                true,
            )
            .unwrap_err();
        let EngineError::Type(e) = &guarded else {
            panic!("expected a type error, got {guarded:?}");
        };
        assert_eq!(e.path().to_string(), "1.2");
        // Same violation through the tree-based XML path.
        let walked = engine
            .transform_with_validation(&fix.dtop, bad_xml, EvalMode::TreeWalk, DocFormat::Xml, true)
            .unwrap_err();
        assert_eq!(walked, guarded);
        // Deleted junk stays accepted under validation (guard ≡ eval).
        let junk_xml = "<root><a>zzz-not-in-alphabet<a># #</a></a><b># #</b></root>";
        for mode in [EvalMode::Streaming, EvalMode::Compiled] {
            let out = engine
                .transform_with_validation(&fix.dtop, junk_xml, mode, DocFormat::Xml, true)
                .unwrap();
            assert_eq!(out, "<root><b># #</b><a>#<a># #</a></a></root>");
        }
    }

    /// Validation composes with the output bound: the guard's typed error
    /// wins on out-of-domain documents, the bound still rejects oversized
    /// in-domain ones.
    #[test]
    fn validation_composes_with_output_bound() {
        let copier = examples::monadic_to_binary().dtop;
        let engine = Engine::new(EngineOptions {
            validate: true,
            max_output_nodes: Some(1_000),
            workers: 1,
            ..EngineOptions::default()
        });
        let mut deep = String::from("e");
        for _ in 0..30 {
            deep = format!("f({deep})");
        }
        let docs = vec![
            "f(f(e))".to_owned(),
            deep,
            "f(zzz)".to_owned(), // out of domain at 1
        ];
        for mode in [EvalMode::Compiled, EvalMode::Streaming, EvalMode::Dag] {
            let results = engine.transform_batch_with(&copier, &docs, mode, DocFormat::Term);
            assert_eq!(results[0].as_deref(), Ok("g(g(e,e),g(e,e))"), "{mode:?}");
            assert!(
                matches!(results[1], Err(EngineError::OutputTooLarge(_))),
                "{mode:?}: {:?}",
                results[1]
            );
            match &results[2] {
                Err(EngineError::Type(e)) => assert_eq!(e.path().to_string(), "1"),
                other => panic!("{mode:?}: expected type error, got {other:?}"),
            }
        }
    }

    /// A dtop over the fc/ns alphabet: drop every `b` element, keep the
    /// rest (used by the encoded-format tests; deletion exercises the
    /// skip fast path through the whole encoded pipeline).
    fn fcns_prune() -> Dtop {
        let alpha =
            xtt_trees::RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("#", 0)]);
        let mut b = xtt_transducer::DtopBuilder::new(alpha.clone(), alpha);
        b.add_state("q0");
        b.add_state("q");
        b.set_axiom_str("<q0,x0>").unwrap();
        b.add_rule_str("q0", "root", "root(<q,x1>,<q,x2>)").unwrap();
        b.add_rule_str("q", "a", "a(<q,x1>,<q,x2>)").unwrap();
        b.add_rule_str("q", "b", "<q,x2>").unwrap();
        b.add_rule_str("q", "#", "#").unwrap();
        b.build().unwrap()
    }

    /// Genuine unranked XML through the fc/ns codec: all four eval modes
    /// produce byte-identical decoded XML, including under validation
    /// and the output bound.
    #[test]
    fn encoded_fcns_agrees_across_modes() {
        let prune = fcns_prune();
        let format = DocFormat::parse("fcns").unwrap();
        let docs = vec![
            "<root><a><b><a/></b><a/></a><b/></root>".to_owned(),
            "<root/>".to_owned(),
            "<root><b/><b/><a/></root>".to_owned(),
            "<notroot/>".to_owned(), // out of domain (no q0 rule)
        ];
        let mut outputs: Vec<Vec<Result<String, ()>>> = Vec::new();
        for validate in [false, true] {
            for mode in [
                EvalMode::Compiled,
                EvalMode::Streaming,
                EvalMode::Dag,
                EvalMode::TreeWalk,
            ] {
                let engine = Engine::new(EngineOptions {
                    workers: 1,
                    max_output_nodes: if validate { Some(10_000) } else { None },
                    ..EngineOptions::default()
                });
                let results = engine.transform_batch_with_validation(
                    &prune,
                    &docs,
                    mode,
                    format.clone(),
                    validate,
                );
                assert_eq!(
                    results[0].as_deref().unwrap(),
                    "<root><a><a/></a></root>",
                    "{mode:?} validate={validate}"
                );
                assert_eq!(results[1].as_deref().unwrap(), "<root/>");
                assert_eq!(results[2].as_deref().unwrap(), "<root><a/></root>");
                assert!(results[3].is_err(), "{mode:?}: {:?}", results[3]);
                outputs.push(results.iter().map(|r| r.clone().map_err(|_| ())).collect());
            }
        }
        // The Ok outputs are identical everywhere.
        let oks: Vec<_> = outputs
            .iter()
            .map(|rs| {
                rs.iter()
                    .filter_map(|r| r.as_ref().ok())
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(oks.windows(2).all(|w| w[0] == w[1]));
    }

    /// The DTD-encoded path end to end: the paper's `xmlflip` applied to
    /// real XML — input encoded with the `(a*,b*)` DTD, output decoded
    /// with the `(b*,a*)` DTD, across all four modes.
    #[test]
    fn encoded_dtd_xmlflip_end_to_end() {
        use xtt_xml::xmlflip;
        let m = xmlflip::target_dtop();
        let codec = XmlCodec::dtd_pair(
            std::sync::Arc::new(xmlflip::input_encoding()),
            std::sync::Arc::new(xmlflip::output_encoding()),
        );
        let format = DocFormat::Encoded(codec);
        let engine = Engine::new(EngineOptions {
            workers: 1,
            ..EngineOptions::default()
        });
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let out = engine
                .transform_with(&m, "<root><a/><a/><b/></root>", mode, format.clone())
                .unwrap();
            assert_eq!(out, "<root><b/><a/><a/></root>", "{mode:?}");
            // A DTD-invalid document is an encoding error, positionally.
            let bad = engine
                .transform_with(&m, "<root><b/><a/></root>", mode, format.clone())
                .unwrap_err();
            assert!(matches!(bad, EngineError::Encoding(_)), "{mode:?}: {bad:?}");
        }
    }

    /// Encoded + validation: the lockstep guard rejects out-of-domain
    /// encoded documents with the same typed diagnostic in streaming and
    /// pre-flight modes.
    #[test]
    fn encoded_validation_diagnostics_agree() {
        let prune = fcns_prune();
        let format = DocFormat::parse("fcns").unwrap();
        let engine = Engine::new(EngineOptions {
            validate: true,
            workers: 1,
            ..EngineOptions::default()
        });
        // `c` is not in prune's alphabet and sits in an inspected
        // position: a typed violation, not an opaque Undefined.
        let bad = "<root><a/><c/><a/></root>";
        let mut rendered: Vec<String> = Vec::new();
        for mode in [EvalMode::Streaming, EvalMode::Compiled, EvalMode::TreeWalk] {
            match engine.transform_with(&prune, bad, mode, format.clone()) {
                Err(EngineError::Type(e)) => rendered.push(e.to_string()),
                other => panic!("{mode:?}: expected a type error, got {other:?}"),
            }
        }
        rendered.dedup();
        assert_eq!(rendered.len(), 1, "diagnostics differ across modes");
    }

    #[test]
    fn compiled_cache_hits_by_fingerprint() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions::default());
        let a = engine.compiled(&fix.dtop).unwrap();
        let b = engine.compiled(&examples::flip().dtop).unwrap(); // rebuilt, same structure
        assert_eq!(a.fingerprint(), b.fingerprint());
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let engine = Engine::new(EngineOptions {
            cache_capacity: 2,
            ..EngineOptions::default()
        });
        let m1 = examples::flip().dtop;
        let m2 = examples::library().dtop;
        let m3 = examples::monadic_to_binary().dtop;
        engine.compiled(&m1).unwrap();
        engine.compiled(&m2).unwrap();
        engine.compiled(&m1).unwrap(); // refresh m1
        engine.compiled(&m3).unwrap(); // evicts m2
        engine.compiled(&m1).unwrap(); // still cached
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        engine.compiled(&m2).unwrap(); // was evicted → miss
        assert_eq!(engine.cache_stats().misses, 4);
    }
}
