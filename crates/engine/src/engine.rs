//! The serving layer: a worker pool over the compiled evaluator with an
//! LRU cache of compiled transducers.
//!
//! [`Engine::transform_batch`] takes documents as *text* (term syntax or
//! XML) and returns transformed text, which keeps the API `Send`-clean —
//! the `Rc`-based [`xtt_trees::Tree`] never crosses a thread boundary;
//! each worker parses, evaluates (with its own warm [`EvalScratch`] /
//! [`StreamEvaluator`]), and serializes locally. Work is distributed by an
//! atomic cursor, so skewed document sizes cannot starve workers.
//!
//! Compiled transducers are cached by [`crate::fingerprint`] in a small
//! LRU behind a mutex and shared as `Arc<CompiledDtop>`; repeat traffic
//! for the same transducer never recompiles.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use xtt_transducer::{eval as walk_eval, Dtop};
use xtt_trees::parse_tree;

use crate::compile::{compile, fingerprint, CompileError, CompiledDtop};
use crate::eval::EvalScratch;
use crate::stream::{ranked_tree_from_xml_bounded, tree_to_xml, StreamEvaluator};

/// Which evaluator the engine runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Flatten the document and run the compiled interpreter (fastest).
    #[default]
    Compiled,
    /// Run over the event stream, keeping only the spine in memory.
    Streaming,
    /// The research evaluator `xtt_transducer::eval` (baseline).
    TreeWalk,
}

/// How documents are parsed and results serialized.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DocFormat {
    /// The workspace term syntax, e.g. `root(a(#,#),b(#,#))`.
    #[default]
    Term,
    /// XML (lenient), via [`crate::xml_ranked_events`].
    Xml,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Worker threads for [`Engine::transform_batch`]; 0 = one per
    /// available CPU.
    pub workers: usize,
    /// Capacity of the compiled-transducer LRU cache.
    pub cache_capacity: usize,
    pub mode: EvalMode,
    pub format: DocFormat,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            workers: 0,
            cache_capacity: 8,
            mode: EvalMode::Compiled,
            format: DocFormat::Term,
        }
    }
}

/// Per-document failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The document is not parseable in the configured [`DocFormat`].
    Parse(String),
    /// The document is outside `dom(⟦M⟧)`.
    Undefined,
    /// The transducer exceeded a compiled-form capacity limit.
    Compile(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse error: {e}"),
            EngineError::Undefined => write!(f, "input outside the transduction domain"),
            EngineError::Compile(e) => write!(f, "compile error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

struct CacheEntry {
    fp: u64,
    /// The exact rendering the fingerprint hashed; compared on every hit
    /// so a 64-bit collision can never serve the wrong transducer.
    rendering: String,
    last_used: u64,
    compiled: Arc<CompiledDtop>,
}

#[derive(Default)]
struct Cache {
    entries: Vec<CacheEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Cache observability counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// A reusable transformation service; see the module docs.
pub struct Engine {
    opts: EngineOptions,
    cache: Mutex<Cache>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineOptions::default())
    }
}

impl Engine {
    pub fn new(opts: EngineOptions) -> Engine {
        Engine {
            opts,
            cache: Mutex::new(Cache::default()),
        }
    }

    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The compiled form of `dtop`, from the LRU cache when its
    /// fingerprint was seen before (hits are verified against the exact
    /// rendered structure, not just the hash).
    pub fn compiled(&self, dtop: &Dtop) -> Result<Arc<CompiledDtop>, CompileError> {
        let fp = fingerprint(dtop);
        let rendering = dtop.to_string();
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache
            .entries
            .iter_mut()
            .find(|e| e.fp == fp && e.rendering == rendering)
        {
            entry.last_used = tick;
            let hit = Arc::clone(&entry.compiled);
            cache.hits += 1;
            return Ok(hit);
        }
        let compiled = Arc::new(compile(dtop)?);
        cache.misses += 1;
        let capacity = self.opts.cache_capacity.max(1);
        if cache.entries.len() >= capacity {
            let (evict, _) = cache
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("cache not empty");
            cache.entries.swap_remove(evict);
        }
        cache.entries.push(CacheEntry {
            fp,
            rendering,
            last_used: tick,
            compiled: Arc::clone(&compiled),
        });
        Ok(compiled)
    }

    /// Cache counters (for observability and tests).
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            entries: cache.entries.len(),
        }
    }

    /// Transforms one document (no thread pool; uses a transient scratch).
    pub fn transform(&self, dtop: &Dtop, doc: &str) -> Result<String, EngineError> {
        let compiled = self
            .compiled(dtop)
            .map_err(|e| EngineError::Compile(e.to_string()))?;
        let mut scratch = EvalScratch::new();
        let mut stream = StreamEvaluator::new();
        transform_doc(&compiled, dtop, doc, self.opts, &mut scratch, &mut stream)
    }

    /// Transforms a batch of documents, sharded across the worker pool.
    /// Results are in input order; each document fails independently.
    pub fn transform_batch(
        &self,
        dtop: &Dtop,
        docs: &[String],
    ) -> Vec<Result<String, EngineError>> {
        let compiled = match self.compiled(dtop) {
            Ok(c) => c,
            Err(e) => {
                let err = EngineError::Compile(e.to_string());
                return docs.iter().map(|_| Err(err.clone())).collect();
            }
        };
        let workers = effective_workers(self.opts.workers, docs.len());
        if workers <= 1 {
            let mut scratch = EvalScratch::new();
            let mut stream = StreamEvaluator::new();
            return docs
                .iter()
                .map(|d| transform_doc(&compiled, dtop, d, self.opts, &mut scratch, &mut stream))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let opts = self.opts;
        let chunks: Vec<Vec<(usize, Result<String, EngineError>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let compiled = &compiled;
                    let next = &next;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut scratch = EvalScratch::new();
                        let mut stream = StreamEvaluator::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= docs.len() {
                                break;
                            }
                            out.push((
                                i,
                                transform_doc(
                                    compiled,
                                    dtop,
                                    &docs[i],
                                    opts,
                                    &mut scratch,
                                    &mut stream,
                                ),
                            ));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("engine worker panicked"))
                .collect()
        });
        let mut results = vec![Err(EngineError::Undefined); docs.len()];
        for chunk in chunks {
            for (i, r) in chunk {
                results[i] = r;
            }
        }
        results
    }
}

fn effective_workers(configured: usize, docs: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let w = if configured == 0 { auto } else { configured };
    w.min(docs.max(1))
}

fn transform_doc(
    compiled: &CompiledDtop,
    dtop: &Dtop,
    doc: &str,
    opts: EngineOptions,
    scratch: &mut EvalScratch<xtt_trees::Tree>,
    stream: &mut StreamEvaluator,
) -> Result<String, EngineError> {
    match opts.format {
        DocFormat::Term => {
            let input = parse_tree(doc).map_err(|e| EngineError::Parse(e.to_string()))?;
            let output = match opts.mode {
                EvalMode::Compiled => compiled.eval(&input, scratch),
                EvalMode::Streaming => stream.eval_tree(compiled, &input),
                EvalMode::TreeWalk => walk_eval(dtop, &input),
            }
            .ok_or(EngineError::Undefined)?;
            Ok(output.to_string())
        }
        DocFormat::Xml => {
            let output = match opts.mode {
                EvalMode::Streaming => stream
                    .eval_xml(compiled, doc)
                    .map_err(|e| EngineError::Parse(e.to_string()))?,
                EvalMode::Compiled | EvalMode::TreeWalk => {
                    let input = ranked_tree_from_xml_bounded(doc)
                        .map_err(|e| EngineError::Parse(e.to_string()))?;
                    match opts.mode {
                        EvalMode::Compiled => compiled.eval(&input, scratch),
                        _ => walk_eval(dtop, &input),
                    }
                }
            }
            .ok_or(EngineError::Undefined)?;
            if !crate::stream::xml_serializable(&output) {
                return Err(EngineError::Parse(
                    "output has inner symbols that are not XML names; use the term format".into(),
                ));
            }
            Ok(tree_to_xml(&output))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_transducer::examples;

    fn flip_docs(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| examples::flip_input(i % 5 + 1, (i + 2) % 4 + 1).to_string())
            .collect()
    }

    #[test]
    fn batch_results_are_in_input_order() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            workers: 4,
            ..EngineOptions::default()
        });
        let docs = flip_docs(101);
        let results = engine.transform_batch(&fix.dtop, &docs);
        assert_eq!(results.len(), docs.len());
        let mut scratch = EvalScratch::new();
        let compiled = engine.compiled(&fix.dtop).unwrap();
        for (doc, result) in docs.iter().zip(&results) {
            let expected = compiled
                .eval(&parse_tree(doc).unwrap(), &mut scratch)
                .unwrap()
                .to_string();
            assert_eq!(result.as_ref().unwrap(), &expected);
        }
    }

    #[test]
    fn documents_fail_independently() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            workers: 2,
            ..EngineOptions::default()
        });
        let docs = vec![
            "root(a(#,#),b(#,#))".to_owned(),
            "root(b(#,#),#)".to_owned(), // outside the domain
            "((".to_owned(),             // unparseable
            "root(#,#)".to_owned(),
        ];
        let results = engine.transform_batch(&fix.dtop, &docs);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(EngineError::Undefined));
        assert!(matches!(results[2], Err(EngineError::Parse(_))));
        assert_eq!(results[3].as_deref(), Ok("root(#,#)"));
    }

    #[test]
    fn all_modes_agree_on_batches() {
        let fix = examples::flip();
        let docs = flip_docs(40);
        let mut outputs: Vec<Vec<Result<String, EngineError>>> = Vec::new();
        for mode in [EvalMode::Compiled, EvalMode::Streaming, EvalMode::TreeWalk] {
            let engine = Engine::new(EngineOptions {
                workers: 3,
                mode,
                ..EngineOptions::default()
            });
            outputs.push(engine.transform_batch(&fix.dtop, &docs));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn xml_format_roundtrips() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            format: DocFormat::Xml,
            mode: EvalMode::Streaming,
            workers: 1,
            ..EngineOptions::default()
        });
        let out = engine
            .transform(&fix.dtop, "<root><a># #</a><b># #</b></root>")
            .unwrap();
        assert_eq!(out, "<root><b># #</b><a># #</a></root>");
    }

    #[test]
    fn compiled_cache_hits_by_fingerprint() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions::default());
        let a = engine.compiled(&fix.dtop).unwrap();
        let b = engine.compiled(&examples::flip().dtop).unwrap(); // rebuilt, same structure
        assert_eq!(a.fingerprint(), b.fingerprint());
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let engine = Engine::new(EngineOptions {
            cache_capacity: 2,
            ..EngineOptions::default()
        });
        let m1 = examples::flip().dtop;
        let m2 = examples::library().dtop;
        let m3 = examples::monadic_to_binary().dtop;
        engine.compiled(&m1).unwrap();
        engine.compiled(&m2).unwrap();
        engine.compiled(&m1).unwrap(); // refresh m1
        engine.compiled(&m3).unwrap(); // evicts m2
        engine.compiled(&m1).unwrap(); // still cached
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        engine.compiled(&m2).unwrap(); // was evicted → miss
        assert_eq!(engine.cache_stats().misses, 4);
    }
}
