//! The serving layer: a worker pool over the compiled evaluator with an
//! LRU cache of compiled transducers.
//!
//! [`Engine::transform_batch`] takes documents as *text* (term syntax or
//! XML) and returns transformed text, which keeps the API `Send`-clean —
//! the `Rc`-based [`xtt_trees::Tree`] never crosses a thread boundary;
//! each worker parses, evaluates (with its own warm [`EvalScratch`] /
//! [`StreamEvaluator`]), and serializes locally. Work is distributed by an
//! atomic cursor, so skewed document sizes cannot starve workers.
//!
//! Compiled transducers are cached by [`crate::fingerprint`] in a small
//! LRU behind a mutex and shared as `Arc<CompiledDtop>`; repeat traffic
//! for the same transducer never recompiles.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use xtt_obs::{EvalObserver, Stage};
use xtt_transducer::{eval as walk_eval, Dtop};
use xtt_trees::{parse_tree, DagId, Symbol, Tree, TreeDag, TreeEvent};
use xtt_typecheck::{domain_guard, CompiledDtta, TypeError};
use xtt_unranked::{UnrankedError, UnrankedEvents, XmlCodec, XmlWriter};

use crate::compile::{compile, fingerprint, CompileError, CompiledDtop};
use crate::eval::EvalScratch;
use crate::stream::{
    tree_to_xml, ChainedEvaluator, EmitStats, GuardedSource, IterEvents, OutputSink,
    StreamEvaluator, TreeCollector, TreeEventSource, XmlRankedEvents,
};

/// Which evaluator the engine runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Flatten the document and run the compiled interpreter (fastest).
    #[default]
    Compiled,
    /// Run over the event stream, keeping only the spine in memory.
    Streaming,
    /// Evaluate into a [`TreeDag`] arena (shared subtrees built once) and
    /// extract; worthwhile for copying transducers with large outputs.
    Dag,
    /// The research evaluator `xtt_transducer::eval` (baseline).
    TreeWalk,
}

impl EvalMode {
    /// Parses the names used by the CLI and the HTTP API
    /// (`tree`/`compiled`, `stream`, `dag`, `walk`).
    pub fn parse(name: &str) -> Option<EvalMode> {
        match name {
            "tree" | "compiled" => Some(EvalMode::Compiled),
            "stream" | "streaming" => Some(EvalMode::Streaming),
            "dag" => Some(EvalMode::Dag),
            "walk" | "treewalk" => Some(EvalMode::TreeWalk),
            _ => None,
        }
    }
}

/// How documents are parsed and results serialized.
#[derive(Clone, Debug, Default)]
pub enum DocFormat {
    /// The workspace term syntax, e.g. `root(a(#,#),b(#,#))`.
    #[default]
    Term,
    /// XML read as a ranked tree directly (elements = symbols of their
    /// child arity, text = whitespace-separated leaf tokens), via
    /// [`crate::xml_ranked_events`].
    Xml,
    /// [`DocFormat::Xml`] with attributes surfaced: an element with
    /// attributes gains an `@attrs` first child (one `@name` node per
    /// attribute, value tokens as its leaves) on the way in, and `@attrs`
    /// children decode back to `name="value"` syntax on the way out — so
    /// transducer rules can address attributes like any child subtree.
    /// Named `xml+attrs` in the CLI and HTTP API.
    XmlAttrs,
    /// Genuine unranked XML through a ranked encoding
    /// ([`xtt_unranked::XmlCodec`]): documents are encoded
    /// *incrementally* off the SAX tokenizer (fc/ns or a DTD-based
    /// encoding — in streaming mode with no intermediate tree at all)
    /// and output trees are decoded back to unranked XML text.
    Encoded(XmlCodec),
}

impl DocFormat {
    /// Parses the names used by the CLI and the HTTP API. Named DTD
    /// encodings are resolved by the server's encoding registry; here
    /// only `fcns` is nameable.
    pub fn parse(name: &str) -> Option<DocFormat> {
        match name {
            "term" => Some(DocFormat::Term),
            "xml" => Some(DocFormat::Xml),
            "xml+attrs" => Some(DocFormat::XmlAttrs),
            "fcns" => Some(DocFormat::Encoded(XmlCodec::fcns_bounded(
                crate::stream::unknown_symbol(),
            ))),
            _ => None,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Worker threads for [`Engine::transform_batch`]; 0 = one per
    /// available CPU.
    pub workers: usize,
    /// Capacity of the compiled-transducer LRU cache.
    pub cache_capacity: usize,
    pub mode: EvalMode,
    pub format: DocFormat,
    /// When set, documents whose *output tree* would exceed this many
    /// nodes fail with [`EngineError::OutputTooLarge`] instead of being
    /// materialized. The bound is checked with a linear-time DAG
    /// pre-flight (copying transducers produce exponentially large
    /// outputs from tiny inputs — a server must not materialize them).
    /// `None` = unbounded (library/CLI default).
    ///
    /// Trade-off: the pre-flight needs the input tree, so with a bound
    /// configured `EvalMode::Streaming` over XML materializes the input
    /// (the output was never spine-only — it is built in full in every
    /// mode) instead of running directly over the tokenizer events.
    pub max_output_nodes: Option<u64>,
    /// Guarded evaluation: run every document through the transducer's
    /// compiled domain guard (`xtt-typecheck`). Out-of-domain documents
    /// fail with a typed [`EngineError::Type`] diagnostic naming the
    /// first violating node — as a pre-flight in tree/dag/walk modes, and
    /// in lockstep with the event stream in streaming mode (where an
    /// out-of-domain document is rejected without consuming the rest of
    /// its events). Can be overridden per request via
    /// [`Engine::transform_with_validation`].
    pub validate: bool,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            workers: 0,
            cache_capacity: 8,
            mode: EvalMode::Compiled,
            format: DocFormat::Term,
            max_output_nodes: None,
            validate: false,
        }
    }
}

/// Per-document failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The document is not parseable in the configured [`DocFormat`].
    Parse(String),
    /// The document is outside `dom(⟦M⟧)`.
    Undefined,
    /// The transducer exceeded a compiled-form capacity limit.
    Compile(String),
    /// The evaluator panicked on this document; the rest of the batch is
    /// unaffected (the worker recovers with fresh scratch state).
    Internal(String),
    /// With [`DocFormat::Encoded`]: the document does not match the
    /// encoding's DTD, or the output tree is not decodable as unranked
    /// XML under the output encoding.
    Encoding(String),
    /// The output tree exceeds [`EngineOptions::max_output_nodes`]
    /// (`.0` is the measured size, saturating at `u64::MAX`).
    OutputTooLarge(u64),
    /// Guarded evaluation rejected the document: it is outside
    /// `dom(⟦M⟧)`, and the diagnostic names the first violating node.
    /// Only produced when validation is enabled (otherwise out-of-domain
    /// documents surface as [`EngineError::Undefined`]).
    Type(TypeError),
    /// Streaming emission ([`Engine::transform_streaming`]): the output
    /// writer failed mid-document. `kind` preserves the [`io::ErrorKind`]
    /// so a serving layer can distinguish a slow client
    /// (`TimedOut`/`WouldBlock`) from a disconnect.
    Write {
        kind: io::ErrorKind,
        message: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse error: {e}"),
            EngineError::Undefined => write!(f, "input outside the transduction domain"),
            EngineError::Compile(e) => write!(f, "compile error: {e}"),
            EngineError::Internal(e) => write!(f, "internal error: {e}"),
            EngineError::Encoding(e) => write!(f, "encoding error: {e}"),
            EngineError::OutputTooLarge(n) => {
                write!(f, "output too large: {n} nodes exceed the configured bound")
            }
            EngineError::Type(e) => write!(f, "type error {e}"),
            EngineError::Write { kind, message } => write!(f, "write error ({kind:?}): {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

struct LruEntry<V> {
    fp: u64,
    /// The exact rendering the fingerprint hashed; compared on every hit
    /// so a 64-bit collision can never serve the wrong transducer.
    rendering: String,
    last_used: u64,
    value: V,
}

/// The one LRU discipline behind the compiled-transducer cache, the
/// domain-guard cache, and `xtt-pipeline`'s compiled-plan cache:
/// fingerprint + exact-rendering lookup (a 64-bit collision can never
/// serve the wrong value), least-recently-used eviction on insert.
pub struct LruCache<V> {
    entries: Vec<LruEntry<V>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<V> Default for LruCache<V> {
    fn default() -> LruCache<V> {
        LruCache {
            entries: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }
}

impl<V> LruCache<V> {
    pub fn new() -> LruCache<V> {
        LruCache::default()
    }

    /// Hit/miss/occupancy counters (monotonic over the cache's life).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
        }
    }
}

impl<V: Clone> LruCache<V> {
    /// Returns the cached value for `(fp, rendering)`, building and
    /// inserting it (evicting the least-recently-used entry at
    /// `capacity`) on a miss. A failed `build` caches nothing.
    pub fn get_or_insert_with<E>(
        &mut self,
        fp: u64,
        rendering: String,
        capacity: usize,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.fp == fp && e.rendering == rendering)
        {
            entry.last_used = tick;
            self.hits += 1;
            return Ok(entry.value.clone());
        }
        let value = build()?;
        self.misses += 1;
        if self.entries.len() >= capacity.max(1) {
            let (evict, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("cache not empty");
            self.entries.swap_remove(evict);
        }
        self.entries.push(LruEntry {
            fp,
            rendering,
            last_used: tick,
            value: value.clone(),
        });
        Ok(value)
    }
}

/// Cache observability counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// Violation counters for guarded evaluation (see
/// [`Engine::validation_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidationStats {
    /// Documents that went through a domain guard.
    pub docs_validated: u64,
    /// Documents the guard rejected before (or instead of) evaluation.
    pub docs_rejected_pre_eval: u64,
    /// Domain guards built (guard-cache misses).
    pub guards_compiled: u64,
}

#[derive(Default)]
struct ValidationCounters {
    validated: AtomicU64,
    rejected: AtomicU64,
}

/// What one [`Engine::transform_streaming`] run did (per-document
/// observability; `xtt-serve` aggregates these into `/stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Bytes handed to the output writer.
    pub bytes_written: u64,
    /// Output events emitted before the input was fully consumed.
    pub events_emitted_early: u64,
    /// Total output events.
    pub events_total: u64,
    /// High-water mark of buffered (permuting/copying) output frames;
    /// 0 on a fully order-preserving run.
    pub peak_buffered_frames: usize,
    /// Deleted subtrees fast-forwarded at the tokenizer.
    pub skipped_subtrees: u64,
}

/// One pre-compiled stage of an executable pipeline chain (built by
/// `xtt-pipeline`, executed by the [`Engine::transform_batch_chain`] /
/// [`Engine::transform_streaming_chain`] entry points). Stages carry
/// their own compiled form — the engine's transducer LRU is not
/// consulted; the pipeline layer caches whole plans instead.
#[derive(Clone)]
pub struct ChainStage {
    pub dtop: Arc<Dtop>,
    pub compiled: Arc<CompiledDtop>,
}

/// A reusable transformation service; see the module docs.
pub struct Engine {
    opts: EngineOptions,
    cache: Mutex<LruCache<Arc<CompiledDtop>>>,
    guards: Mutex<LruCache<Arc<CompiledDtta>>>,
    validation: ValidationCounters,
    /// Deleted subtrees fast-forwarded at the tokenizer, across all
    /// documents and eval paths that stream their input.
    skips: AtomicU64,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new(EngineOptions::default())
    }
}

impl Engine {
    pub fn new(opts: EngineOptions) -> Engine {
        Engine {
            opts,
            cache: Mutex::new(LruCache::default()),
            guards: Mutex::new(LruCache::default()),
            validation: ValidationCounters::default(),
            skips: AtomicU64::new(0),
        }
    }

    /// A shareable handle, for long-lived services (`xtt-serve`) that hand
    /// one engine to many connection handlers.
    pub fn shared(opts: EngineOptions) -> Arc<Engine> {
        Arc::new(Engine::new(opts))
    }

    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The compiled form of `dtop`, from the LRU cache when its
    /// fingerprint was seen before (hits are verified against the exact
    /// rendered structure, not just the hash).
    pub fn compiled(&self, dtop: &Dtop) -> Result<Arc<CompiledDtop>, CompileError> {
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.get_or_insert_with(
            fingerprint(dtop),
            dtop.to_string(),
            self.opts.cache_capacity,
            || compile(dtop).map(Arc::new),
        )
    }

    /// Cache counters (for observability and tests).
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            entries: cache.entries.len(),
        }
    }

    /// The compiled domain guard of `dtop`, from its own LRU cache (same
    /// fingerprint key and verification as [`Engine::compiled`]). The
    /// subset construction can blow up on adversarial transducers; a
    /// capacity overrun surfaces as [`EngineError::Compile`] instead of
    /// taking the process down.
    pub fn guard(&self, dtop: &Dtop) -> Result<Arc<CompiledDtta>, EngineError> {
        let mut guards = self.guards.lock().unwrap_or_else(|e| e.into_inner());
        guards.get_or_insert_with(
            fingerprint(dtop),
            dtop.to_string(),
            self.opts.cache_capacity,
            || {
                catch_unwind(AssertUnwindSafe(|| domain_guard(dtop)))
                    .map_err(|_| EngineError::Compile("domain guard construction blew up".into()))?
                    .map(Arc::new)
                    .map_err(|e| EngineError::Compile(e.to_string()))
            },
        )
    }

    /// Guarded-evaluation counters (for `/stats` and tests).
    pub fn validation_stats(&self) -> ValidationStats {
        ValidationStats {
            docs_validated: self.validation.validated.load(Ordering::Relaxed),
            docs_rejected_pre_eval: self.validation.rejected.load(Ordering::Relaxed),
            guards_compiled: self.guards.lock().unwrap_or_else(|e| e.into_inner()).misses,
        }
    }

    /// Deleted subtrees fast-forwarded at the tokenizer (the PR-5 skip
    /// fast path), totalled across every document this engine streamed —
    /// raw-XML and encoded paths alike.
    pub fn skipped_subtrees(&self) -> u64 {
        self.skips.load(Ordering::Relaxed)
    }

    /// Counts one batch's guard activity into the violation counters.
    /// Documents that never reached a guard (parse or compile failures)
    /// do not count as validated.
    fn record_validation<T>(&self, results: &[Result<T, EngineError>]) {
        let validated = results
            .iter()
            .filter(|r| !matches!(r, Err(EngineError::Parse(_) | EngineError::Compile(_))))
            .count() as u64;
        let rejected = results
            .iter()
            .filter(|r| matches!(r, Err(EngineError::Type(_))))
            .count() as u64;
        self.validation
            .validated
            .fetch_add(validated, Ordering::Relaxed);
        self.validation
            .rejected
            .fetch_add(rejected, Ordering::Relaxed);
    }

    /// Transforms one document with the engine's configured mode/format
    /// (no thread pool; uses a transient scratch).
    pub fn transform(&self, dtop: &Dtop, doc: &str) -> Result<String, EngineError> {
        self.transform_with(dtop, doc, self.opts.mode, self.opts.format.clone())
    }

    /// Transforms one document with an explicit mode/format — the
    /// per-request override used by `xtt-serve`'s `?mode=`/`?format=`.
    /// Validation follows [`EngineOptions::validate`].
    pub fn transform_with(
        &self,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: DocFormat,
    ) -> Result<String, EngineError> {
        self.transform_with_validation(dtop, doc, mode, format, self.opts.validate)
    }

    /// [`Engine::transform_with`] with an explicit validation override
    /// (the `?validate=` request parameter of `xtt-serve`).
    pub fn transform_with_validation(
        &self,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: DocFormat,
        validate: bool,
    ) -> Result<String, EngineError> {
        self.transform_observed(dtop, doc, mode, format, validate, None)
    }

    /// [`Engine::transform_with_validation`] with a pipeline observer:
    /// `obs` is stamped at every stage boundary the document crosses
    /// (tokenize → encode → guard → evaluate → emit). `None` is the
    /// production path and costs nothing — not even a clock read.
    pub fn transform_observed(
        &self,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: DocFormat,
        validate: bool,
        obs: Option<&mut dyn EvalObserver>,
    ) -> Result<String, EngineError> {
        let compiled = self
            .compiled(dtop)
            .map_err(|e| EngineError::Compile(e.to_string()))?;
        let guard = if validate {
            Some(self.guard(dtop)?)
        } else {
            None
        };
        let limit = self.opts.max_output_nodes;
        let result = Worker::new().transform(
            &compiled,
            dtop,
            doc,
            mode,
            &format,
            limit,
            guard.as_deref(),
            &self.skips,
            obs,
        );
        if validate {
            self.record_validation(std::slice::from_ref(&result));
        }
        result
    }

    /// Sequential batch transformation with a pipeline observer — the
    /// sampled-request path of `xtt-serve`. One warm [`Worker`] runs the
    /// documents in order (panic-isolated per document, like
    /// [`Engine::transform_batch_with_validation`]); repeated stage
    /// stamps accumulate in the observer, so the trace reports where the
    /// whole request spent its time. Tracing is 1-in-N, so forgoing the
    /// batch pool's parallelism here does not move throughput.
    pub fn transform_batch_observed(
        &self,
        dtop: &Dtop,
        docs: &[String],
        mode: EvalMode,
        format: DocFormat,
        validate: bool,
        mut obs: Option<&mut dyn EvalObserver>,
    ) -> Vec<Result<String, EngineError>> {
        let compiled = match self.compiled(dtop) {
            Ok(c) => c,
            Err(e) => {
                let err = EngineError::Compile(e.to_string());
                return docs.iter().map(|_| Err(err.clone())).collect();
            }
        };
        let guard = if validate {
            match self.guard(dtop) {
                Ok(g) => Some(g),
                Err(e) => return docs.iter().map(|_| Err(e.clone())).collect(),
            }
        } else {
            None
        };
        let limit = self.opts.max_output_nodes;
        let mut worker = Worker::new();
        let results: Vec<Result<String, EngineError>> = docs
            .iter()
            .map(|d| {
                worker.transform_caught(
                    &compiled,
                    dtop,
                    d,
                    mode,
                    &format,
                    limit,
                    guard.as_deref(),
                    &self.skips,
                    obs.as_deref_mut(),
                )
            })
            .collect();
        if validate {
            self.record_validation(&results);
        }
        results
    }

    /// Event-driven transformation: output **bytes** flow to `out` as
    /// they are produced, instead of a tree materializing at root-close.
    /// Order-preserving regions of the transducer stream straight through
    /// (the first output byte leaves before the input is fully read);
    /// permuting/copying regions buffer only their own subtree. Uses the
    /// engine's configured format and validation; evaluation is always
    /// streaming.
    ///
    /// On `Err`, a partial output prefix may already have been written —
    /// inherent to streaming emission. [`EngineError::Write`] carries the
    /// writer's [`io::ErrorKind`] so serving layers can classify slow
    /// clients vs disconnects.
    pub fn transform_streaming(
        &self,
        dtop: &Dtop,
        doc: &str,
        out: &mut dyn io::Write,
    ) -> Result<StreamOutcome, EngineError> {
        self.transform_streaming_with(dtop, doc, self.opts.format.clone(), self.opts.validate, out)
    }

    /// [`Engine::transform_streaming`] with explicit format and
    /// validation overrides (the `?format=`/`?validate=` request
    /// parameters of `xtt-serve`'s `mode=stream`).
    pub fn transform_streaming_with(
        &self,
        dtop: &Dtop,
        doc: &str,
        format: DocFormat,
        validate: bool,
        out: &mut dyn io::Write,
    ) -> Result<StreamOutcome, EngineError> {
        self.transform_streaming_observed(dtop, doc, format, validate, out, None)
    }

    /// [`Engine::transform_streaming_with`] with a pipeline observer (see
    /// [`Engine::transform_observed`]). The streamed paths fuse
    /// tokenize/guard/evaluate into one pass, so the fused work is
    /// charged to `eval`; any post-run serialization is charged to
    /// `emit`.
    pub fn transform_streaming_observed(
        &self,
        dtop: &Dtop,
        doc: &str,
        format: DocFormat,
        validate: bool,
        out: &mut dyn io::Write,
        obs: Option<&mut dyn EvalObserver>,
    ) -> Result<StreamOutcome, EngineError> {
        let compiled = self
            .compiled(dtop)
            .map_err(|e| EngineError::Compile(e.to_string()))?;
        let guard = if validate {
            Some(self.guard(dtop)?)
        } else {
            None
        };
        let result = Worker::new().transform_streaming(
            &[&*compiled],
            doc,
            &format,
            guard.as_deref(),
            self.opts.max_output_nodes,
            out,
            &self.skips,
            obs,
        );
        if validate {
            self.record_validation(std::slice::from_ref(&result));
        }
        result
    }

    /// Transforms a batch of documents, sharded across the worker pool.
    /// Results are in input order; each document fails independently.
    pub fn transform_batch(
        &self,
        dtop: &Dtop,
        docs: &[String],
    ) -> Vec<Result<String, EngineError>> {
        self.transform_batch_with(dtop, docs, self.opts.mode, self.opts.format.clone())
    }

    /// [`Engine::transform_batch`] with an explicit mode/format.
    /// Validation follows [`EngineOptions::validate`].
    pub fn transform_batch_with(
        &self,
        dtop: &Dtop,
        docs: &[String],
        mode: EvalMode,
        format: DocFormat,
    ) -> Vec<Result<String, EngineError>> {
        self.transform_batch_with_validation(dtop, docs, mode, format, self.opts.validate)
    }

    /// [`Engine::transform_batch_with`] with an explicit validation
    /// override.
    ///
    /// Failure is strictly per-document and positional: parse errors,
    /// out-of-domain inputs (typed violations under validation), and even
    /// evaluator panics surface as `Err` at the failing document's index
    /// while every other document still completes.
    pub fn transform_batch_with_validation(
        &self,
        dtop: &Dtop,
        docs: &[String],
        mode: EvalMode,
        format: DocFormat,
        validate: bool,
    ) -> Vec<Result<String, EngineError>> {
        let compiled = match self.compiled(dtop) {
            Ok(c) => c,
            Err(e) => {
                let err = EngineError::Compile(e.to_string());
                return docs.iter().map(|_| Err(err.clone())).collect();
            }
        };
        let guard = if validate {
            match self.guard(dtop) {
                Ok(g) => Some(g),
                Err(e) => return docs.iter().map(|_| Err(e.clone())).collect(),
            }
        } else {
            None
        };
        let guard = guard.as_deref();
        let limit = self.opts.max_output_nodes;
        let workers = effective_workers(self.opts.workers, docs.len());
        let format = &format;
        let skips = &self.skips;
        let results = if workers <= 1 {
            let mut worker = Worker::new();
            docs.iter()
                .map(|d| {
                    worker.transform_caught(
                        &compiled, dtop, d, mode, format, limit, guard, skips, None,
                    )
                })
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let chunks: Vec<Vec<(usize, Result<String, EngineError>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            let compiled = &compiled;
                            let next = &next;
                            scope.spawn(move || {
                                let mut out = Vec::new();
                                let mut worker = Worker::new();
                                loop {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    if i >= docs.len() {
                                        break;
                                    }
                                    out.push((
                                        i,
                                        worker.transform_caught(
                                            compiled, dtop, &docs[i], mode, format, limit, guard,
                                            skips, None,
                                        ),
                                    ));
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("engine worker panicked"))
                        .collect()
                });
            let mut results =
                vec![Err(EngineError::Internal("result was never produced".into())); docs.len()];
            for chunk in chunks {
                for (i, r) in chunk {
                    results[i] = r;
                }
            }
            results
        };
        if validate {
            self.record_validation(&results);
        }
        results
    }

    /// Executes a pre-compiled pipeline chain τₙ ∘ … ∘ τ₁ on one
    /// document (`stages[0]` runs first). `guard` is the domain guard of
    /// the **whole chain** — `xtt-pipeline` builds it from the composed
    /// transducer, with the input schema folded in — so rejection
    /// surfaces as a positioned [`EngineError::Type`] exactly like
    /// single-transducer validation. In [`EvalMode::Streaming`] with no
    /// output bound the stages are fused: stage i's committed output
    /// events feed stage i+1 without materializing intermediate trees;
    /// the other modes evaluate stage by stage. The output-node bound
    /// applies to the **final** stage's output only (the chain's output
    /// — intermediate sizes are an execution detail the statically
    /// composed strategy never sees). `stage_events`, when given,
    /// receives each stage's output event count.
    pub fn transform_chain(
        &self,
        stages: &[ChainStage],
        doc: &str,
        mode: EvalMode,
        format: DocFormat,
        guard: Option<&CompiledDtta>,
        stage_events: Option<&dyn Fn(usize, u64)>,
    ) -> Result<String, EngineError> {
        let limit = self.opts.max_output_nodes;
        let result = Worker::new().transform_chain_caught(
            stages,
            doc,
            mode,
            &format,
            limit,
            guard,
            &self.skips,
            stage_events,
        );
        if guard.is_some() {
            self.record_validation(std::slice::from_ref(&result));
        }
        result
    }

    /// [`Engine::transform_chain`] over a batch, sharded across the
    /// worker pool exactly like [`Engine::transform_batch`]: results in
    /// input order, strictly per-document failure. `stage_events` may be
    /// called from several worker threads concurrently.
    pub fn transform_batch_chain(
        &self,
        stages: &[ChainStage],
        docs: &[String],
        mode: EvalMode,
        format: DocFormat,
        guard: Option<&CompiledDtta>,
        stage_events: Option<&(dyn Fn(usize, u64) + Sync)>,
    ) -> Vec<Result<String, EngineError>> {
        let limit = self.opts.max_output_nodes;
        let workers = effective_workers(self.opts.workers, docs.len());
        let format = &format;
        let skips = &self.skips;
        let results = if workers <= 1 {
            let mut worker = Worker::new();
            docs.iter()
                .map(|d| {
                    worker.transform_chain_caught(
                        stages,
                        d,
                        mode,
                        format,
                        limit,
                        guard,
                        skips,
                        stage_events.map(|cb| cb as &dyn Fn(usize, u64)),
                    )
                })
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let chunks: Vec<Vec<(usize, Result<String, EngineError>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            let next = &next;
                            scope.spawn(move || {
                                let mut out = Vec::new();
                                let mut worker = Worker::new();
                                loop {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    if i >= docs.len() {
                                        break;
                                    }
                                    out.push((
                                        i,
                                        worker.transform_chain_caught(
                                            stages,
                                            &docs[i],
                                            mode,
                                            format,
                                            limit,
                                            guard,
                                            skips,
                                            stage_events.map(|cb| cb as &dyn Fn(usize, u64)),
                                        ),
                                    ));
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("engine worker panicked"))
                        .collect()
                });
            let mut results =
                vec![Err(EngineError::Internal("result was never produced".into())); docs.len()];
            for chunk in chunks {
                for (i, r) in chunk {
                    results[i] = r;
                }
            }
            results
        };
        if guard.is_some() {
            self.record_validation(&results);
        }
        results
    }

    /// Event-driven chain execution: like
    /// [`Engine::transform_streaming`], but through every stage of a
    /// pre-compiled pipeline — output **bytes** leave as the final
    /// stage's prefix commits, and no intermediate tree materializes
    /// outside buffered (permuting/copying) regions.
    pub fn transform_streaming_chain(
        &self,
        stages: &[ChainStage],
        doc: &str,
        format: DocFormat,
        guard: Option<&CompiledDtta>,
        out: &mut dyn io::Write,
        stage_events: Option<&dyn Fn(usize, u64)>,
    ) -> Result<StreamOutcome, EngineError> {
        let refs: Vec<&CompiledDtop> = stages.iter().map(|s| &*s.compiled).collect();
        let mut worker = Worker::new();
        let result = worker.transform_streaming(
            &refs,
            doc,
            &format,
            guard,
            self.opts.max_output_nodes,
            out,
            &self.skips,
            None,
        );
        if let (Ok(outcome), Some(cb)) = (&result, stage_events) {
            if refs.len() > 1 {
                for (i, st) in worker.chain.stage_stats().enumerate() {
                    cb(i, st.events_total);
                }
            } else {
                cb(0, outcome.events_total);
            }
        }
        if guard.is_some() {
            self.record_validation(std::slice::from_ref(&result));
        }
        result
    }
}

/// Maps a streaming-pipeline failure onto the engine's error taxonomy:
/// XML syntax errors are parse errors, DTD/encoding mismatches are
/// encoding errors.
fn encoded_error(e: UnrankedError) -> EngineError {
    match e {
        UnrankedError::Xml(x) => EngineError::Parse(x.to_string()),
        UnrankedError::Encode(x) => EngineError::Encoding(x.to_string()),
    }
}

/// [`TreeEventSource`] over the codec's incremental encoder
/// ([`UnrankedEvents`]), with the raw fast-forward wired through and the
/// first pipeline error captured for the caller to classify.
struct EncodedSource<'a> {
    inner: UnrankedEvents<'a>,
    error: Option<UnrankedError>,
}

impl<'a> EncodedSource<'a> {
    fn new(inner: UnrankedEvents<'a>) -> EncodedSource<'a> {
        EncodedSource { inner, error: None }
    }
}

impl TreeEventSource for EncodedSource<'_> {
    fn next_event(&mut self) -> Option<TreeEvent> {
        if self.error.is_some() {
            return None;
        }
        match self.inner.next()? {
            Ok(event) => Some(event),
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }

    fn skip_subtree(&mut self) -> bool {
        match self.inner.skip_subtree() {
            Ok(engaged) => engaged,
            Err(e) => {
                // The fast-forward hit a structural error: the stream is
                // over either way. Report the skip as taken; the next
                // `next_event` returns `None` and the error surfaces.
                self.error = Some(e);
                true
            }
        }
    }
}

/// [`OutputSink`] that streams the output tree as term syntax,
/// byte-identical to `Tree::to_string()`.
struct TermSink<'w> {
    out: &'w mut dyn io::Write,
    bytes: u64,
    /// An `Open`ed symbol whose leaf-vs-inner classification waits on the
    /// next event.
    pending: Option<Symbol>,
    /// The next node at this position follows a sibling (needs a comma).
    sep: bool,
}

impl<'w> TermSink<'w> {
    fn new(out: &'w mut dyn io::Write) -> TermSink<'w> {
        TermSink {
            out,
            bytes: 0,
            pending: None,
            sep: false,
        }
    }

    fn put(&mut self, s: &str) -> io::Result<()> {
        self.out.write_all(s.as_bytes())?;
        self.bytes += s.len() as u64;
        Ok(())
    }
}

impl OutputSink for TermSink<'_> {
    fn event(&mut self, ev: TreeEvent) -> io::Result<()> {
        match ev {
            TreeEvent::Open(sym) => {
                if let Some(parent) = self.pending.take() {
                    self.put(parent.name())?;
                    self.put("(")?;
                } else if self.sep {
                    self.put(",")?;
                }
                self.pending = Some(sym);
                self.sep = false;
            }
            TreeEvent::Close => {
                match self.pending.take() {
                    Some(leaf) => self.put(leaf.name())?,
                    None => self.put(")")?,
                }
                self.sep = true;
            }
        }
        Ok(())
    }
}

/// [`OutputSink`] that streams the output tree as ranked XML,
/// byte-identical to [`tree_to_xml`]; inner symbols that are not XML
/// names are rejected mid-stream (`failure`), matching the batch path's
/// serializability check.
struct RankedXmlSink<'w> {
    out: &'w mut dyn io::Write,
    bytes: u64,
    pending: Option<Symbol>,
    /// Per open element: was the previously written child a text leaf?
    stack: Vec<(Symbol, bool)>,
    failure: Option<String>,
}

impl<'w> RankedXmlSink<'w> {
    fn new(out: &'w mut dyn io::Write) -> RankedXmlSink<'w> {
        RankedXmlSink {
            out,
            bytes: 0,
            pending: None,
            stack: Vec::new(),
            failure: None,
        }
    }

    fn put(&mut self, s: &str) -> io::Result<()> {
        self.out.write_all(s.as_bytes())?;
        self.bytes += s.len() as u64;
        Ok(())
    }
}

impl OutputSink for RankedXmlSink<'_> {
    fn event(&mut self, ev: TreeEvent) -> io::Result<()> {
        match ev {
            TreeEvent::Open(sym) => {
                if let Some(parent) = self.pending.take() {
                    // The pending node has children: an inner element.
                    let name = parent.name();
                    if !crate::stream::is_xml_name(name) {
                        self.failure = Some(
                            "output has inner symbols that are not XML names; use the term format"
                                .into(),
                        );
                        return Err(io::Error::other("output not XML-serializable"));
                    }
                    self.put("<")?;
                    self.put(name)?;
                    self.put(">")?;
                    if let Some(top) = self.stack.last_mut() {
                        top.1 = false;
                    }
                    self.stack.push((parent, false));
                }
                self.pending = Some(sym);
            }
            TreeEvent::Close => match self.pending.take() {
                Some(leaf) => {
                    let name = leaf.name();
                    if crate::stream::is_xml_name(name) {
                        self.put("<")?;
                        self.put(name)?;
                        self.put("/>")?;
                        if let Some(top) = self.stack.last_mut() {
                            top.1 = false;
                        }
                    } else {
                        // A text token; adjacent text leaves stay
                        // distinct tokens.
                        if self.stack.last().is_some_and(|t| t.1) {
                            self.put(" ")?;
                        }
                        self.put(&crate::stream::escape_text(name))?;
                        if let Some(top) = self.stack.last_mut() {
                            top.1 = true;
                        }
                    }
                }
                None => {
                    let (sym, _) = self
                        .stack
                        .pop()
                        .expect("the evaluator emits balanced events");
                    self.put("</")?;
                    self.put(sym.name())?;
                    self.put(">")?;
                }
            },
        }
        Ok(())
    }
}

/// [`OutputSink`] that decodes the output tree to unranked XML through
/// the codec's incremental [`XmlWriter`], flushing each committed text
/// prefix to the byte writer as it is produced.
struct EncodedByteSink<'w> {
    writer: Option<XmlWriter>,
    out: &'w mut dyn io::Write,
    bytes: u64,
    failure: Option<UnrankedError>,
}

impl<'w> EncodedByteSink<'w> {
    fn new(writer: XmlWriter, out: &'w mut dyn io::Write) -> EncodedByteSink<'w> {
        EncodedByteSink {
            writer: Some(writer),
            out,
            bytes: 0,
            failure: None,
        }
    }

    /// Validates completion and writes the decoder's remainder.
    fn finish(&mut self) -> Result<(), EngineError> {
        let writer = self.writer.take().expect("finished once");
        let rest = writer
            .finish()
            .map_err(|e| EngineError::Encoding(e.to_string()))?;
        if !rest.is_empty() {
            self.out
                .write_all(rest.as_bytes())
                .map_err(|e| EngineError::Write {
                    kind: e.kind(),
                    message: e.to_string(),
                })?;
            self.bytes += rest.len() as u64;
        }
        Ok(())
    }
}

impl OutputSink for EncodedByteSink<'_> {
    fn event(&mut self, ev: TreeEvent) -> io::Result<()> {
        let writer = self.writer.as_mut().expect("sink not finished");
        if let Err(e) = writer.feed(ev) {
            self.failure = Some(e);
            return Err(io::Error::other("output not decodable"));
        }
        let chunk = writer.pending();
        if !chunk.is_empty() {
            self.out.write_all(chunk.as_bytes())?;
            self.bytes += chunk.len() as u64;
        }
        Ok(())
    }
}

/// Enforces [`EngineOptions::max_output_nodes`] on a streamed run by
/// counting output nodes as they pass — the streaming analogue of the
/// batch DAG pre-flight (which needs the whole input up front).
struct CapSink<'s> {
    inner: &'s mut dyn OutputSink,
    nodes: u64,
    limit: u64,
    exceeded: bool,
}

impl CapSink<'_> {
    fn check(&mut self) -> io::Result<()> {
        if self.nodes > self.limit {
            self.exceeded = true;
            return Err(io::Error::other("output bound exceeded"));
        }
        Ok(())
    }
}

impl OutputSink for CapSink<'_> {
    fn event(&mut self, ev: TreeEvent) -> io::Result<()> {
        if matches!(ev, TreeEvent::Open(_)) {
            self.nodes += 1;
            self.check()?;
        }
        self.inner.event(ev)
    }

    fn tree(&mut self, t: &Tree) -> io::Result<()> {
        self.nodes = self.nodes.saturating_add(t.size());
        self.check()?;
        self.inner.tree(t)
    }
}

/// Everything one streamed evaluation produced, before classification.
struct RunOutcome {
    result: io::Result<Option<EmitStats>>,
    violation: Option<TypeError>,
    nodes: u64,
    exceeded: bool,
}

/// The streaming executor behind [`run_stream`]: one evaluator, or a
/// whole pipeline chain — the guard/cap/verdict plumbing is identical.
enum ChainExec<'w> {
    Single(&'w mut StreamEvaluator, &'w CompiledDtop),
    Chain(&'w mut ChainedEvaluator, &'w [&'w CompiledDtop]),
}

impl ChainExec<'_> {
    fn run(
        &mut self,
        source: &mut impl TreeEventSource,
        sink: &mut dyn OutputSink,
    ) -> io::Result<Option<EmitStats>> {
        match self {
            ChainExec::Single(stream, c) => stream.eval_streaming(c, source, sink),
            ChainExec::Chain(chain, stages) => chain.eval_streaming(stages, source, sink),
        }
    }
}

/// Runs one streaming evaluation with the optional lockstep guard and
/// the output-node cap composed in.
fn run_stream<S: TreeEventSource>(
    mut exec: ChainExec<'_>,
    guard: Option<&CompiledDtta>,
    source: &mut S,
    sink: &mut dyn OutputSink,
    limit: Option<u64>,
) -> RunOutcome {
    let mut cap = CapSink {
        inner: sink,
        nodes: 0,
        limit: limit.unwrap_or(u64::MAX),
        exceeded: false,
    };
    let (result, violation) = match guard {
        Some(g) => {
            let mut guarded = GuardedSource::new(g, source);
            let result = exec.run(&mut guarded, &mut cap);
            let violation = guarded.take_violation();
            (result, violation)
        }
        None => (exec.run(source, &mut cap), None),
    };
    RunOutcome {
        result,
        violation,
        nodes: cap.nodes,
        exceeded: cap.exceeded,
    }
}

/// Maps a [`RunOutcome`] onto the engine's error taxonomy. Priority: a
/// guard violation wins (it cut the stream first), then the output-node
/// cap, then the sink's semantic failure, then raw write errors; a clean
/// `None` is a source error if one was recorded, `Undefined` otherwise.
fn stream_verdict(
    run: RunOutcome,
    source_error: Option<EngineError>,
    sink_failure: Option<EngineError>,
) -> Result<EmitStats, EngineError> {
    if let Some(v) = run.violation {
        return Err(EngineError::Type(v));
    }
    match run.result {
        Err(e) => {
            if run.exceeded {
                Err(EngineError::OutputTooLarge(run.nodes))
            } else if let Some(f) = sink_failure {
                Err(f)
            } else {
                Err(EngineError::Write {
                    kind: e.kind(),
                    message: e.to_string(),
                })
            }
        }
        Ok(None) => Err(source_error.unwrap_or(EngineError::Undefined)),
        Ok(Some(stats)) => Ok(stats),
    }
}

fn outcome(stats: EmitStats, bytes: u64, skipped: u64) -> StreamOutcome {
    StreamOutcome {
        bytes_written: bytes,
        events_emitted_early: stats.events_emitted_early,
        events_total: stats.events_total,
        peak_buffered_frames: stats.peak_buffered_frames,
        skipped_subtrees: skipped,
    }
}

/// Stamps a stage boundary on the observer, if one is attached. The
/// `None` path is a single predictable branch — no clock read, no call.
#[inline]
fn stamp<'a, 'b>(obs: &mut Option<&'a mut (dyn EvalObserver + 'b)>, stage: Stage) {
    if let Some(o) = obs.as_deref_mut() {
        o.stage(stage);
    }
}

fn effective_workers(configured: usize, docs: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let w = if configured == 0 { auto } else { configured };
    w.min(docs.max(1))
}

/// Per-thread evaluation state: warm scratches for every mode, plus the
/// DAG arena for [`EvalMode::Dag`]. One per batch worker, recreated after
/// a caught panic (a panic can leave the scratches inconsistent).
struct Worker {
    scratch: EvalScratch<xtt_trees::Tree>,
    stream: StreamEvaluator,
    chain: ChainedEvaluator,
    dag: TreeDag,
    dag_scratch: EvalScratch<DagId>,
}

impl Worker {
    fn new() -> Worker {
        Worker {
            scratch: EvalScratch::new(),
            stream: StreamEvaluator::new(),
            chain: ChainedEvaluator::new(),
            dag: TreeDag::new(),
            dag_scratch: EvalScratch::new(),
        }
    }

    /// The streaming executor for a stage list: the plain evaluator for
    /// a single stage (the existing hot path, untouched), the chained
    /// evaluator for a real pipeline.
    fn exec<'w>(&'w mut self, stages: &'w [&'w CompiledDtop]) -> ChainExec<'w> {
        match stages {
            [single] => ChainExec::Single(&mut self.stream, single),
            _ => ChainExec::Chain(&mut self.chain, stages),
        }
    }

    /// [`Worker::transform`] with panic isolation: a panicking document
    /// yields `Err(EngineError::Internal)` instead of poisoning the whole
    /// batch, and the worker continues with fresh scratch state.
    #[allow(clippy::too_many_arguments)]
    fn transform_caught(
        &mut self,
        compiled: &CompiledDtop,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: &DocFormat,
        limit: Option<u64>,
        guard: Option<&CompiledDtta>,
        skips: &AtomicU64,
        obs: Option<&mut (dyn EvalObserver + '_)>,
    ) -> Result<String, EngineError> {
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.transform(compiled, dtop, doc, mode, format, limit, guard, skips, obs)
        }));
        result.unwrap_or_else(|panic| {
            *self = Worker::new();
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "evaluator panicked".to_owned());
            Err(EngineError::Internal(msg))
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn transform(
        &mut self,
        compiled: &CompiledDtop,
        dtop: &Dtop,
        doc: &str,
        mode: EvalMode,
        format: &DocFormat,
        limit: Option<u64>,
        guard: Option<&CompiledDtta>,
        skips: &AtomicU64,
        mut obs: Option<&mut (dyn EvalObserver + '_)>,
    ) -> Result<String, EngineError> {
        let obs = &mut obs;
        match format {
            DocFormat::Term => {
                let input = parse_tree(doc).map_err(|e| EngineError::Parse(e.to_string()))?;
                stamp(obs, Stage::Tokenize);
                if let Some(g) = guard {
                    if mode == EvalMode::Streaming && limit.is_none() {
                        // Lockstep with the event stream — identical
                        // diagnostics (same DttaRun), exercised here so
                        // term and XML streaming share one guarded path.
                        // Guard and evaluation are fused; the pass is
                        // charged to eval.
                        let output = self.eval_stream_guarded(compiled, g, input.events())?;
                        stamp(obs, Stage::Evaluate);
                        let text = output.to_string();
                        stamp(obs, Stage::Emit);
                        return Ok(text);
                    }
                    g.check_tree(&input).map_err(EngineError::Type)?;
                    stamp(obs, Stage::Guard);
                }
                let preflight = self.check_output_bound(compiled, &input, limit)?;
                let output = self.eval_tree(compiled, dtop, &input, mode, preflight)?;
                stamp(obs, Stage::Evaluate);
                let text = output.to_string();
                stamp(obs, Stage::Emit);
                Ok(text)
            }
            DocFormat::Xml | DocFormat::XmlAttrs => {
                let with_attrs = matches!(format, DocFormat::XmlAttrs);
                let output = match (mode, limit) {
                    // The fully streaming path: the guard (when on) runs
                    // in lockstep with the tokenizer, so an out-of-domain
                    // document stops being tokenized at its first
                    // violating node; deleted subtrees fast-forward the
                    // raw reader (counted on the engine).
                    (EvalMode::Streaming, None) => {
                        // Tokenize, guard, and evaluate run fused in one
                        // pass here; the whole pass is charged to eval.
                        let mut source = XmlRankedEvents::bounded(doc).attributes(with_attrs);
                        let result = match guard {
                            Some(g) => {
                                let mut guarded = GuardedSource::new(g, &mut source);
                                let result = self.stream.eval_source(compiled, &mut guarded);
                                let violation = guarded.take_violation();
                                skips.fetch_add(source.skipped_subtrees(), Ordering::Relaxed);
                                if let Some(v) = violation {
                                    return Err(EngineError::Type(v));
                                }
                                result
                            }
                            None => {
                                let result = self.stream.eval_source(compiled, &mut source);
                                skips.fetch_add(source.skipped_subtrees(), Ordering::Relaxed);
                                result
                            }
                        };
                        if let Some(e) = source.take_error() {
                            return Err(EngineError::Parse(e.to_string()));
                        }
                        let out = result.ok_or(EngineError::Undefined)?;
                        stamp(obs, Stage::Evaluate);
                        out
                    }
                    _ => {
                        let input = XmlRankedEvents::bounded(doc)
                            .attributes(with_attrs)
                            .collect_tree()
                            .map_err(|e| EngineError::Parse(e.to_string()))?;
                        stamp(obs, Stage::Tokenize);
                        if let Some(g) = guard {
                            g.check_tree(&input).map_err(EngineError::Type)?;
                            stamp(obs, Stage::Guard);
                        }
                        let preflight = self.check_output_bound(compiled, &input, limit)?;
                        let out = match mode {
                            EvalMode::Streaming => self
                                .stream
                                .eval_tree(compiled, &input)
                                .ok_or(EngineError::Undefined)?,
                            _ => self.eval_tree(compiled, dtop, &input, mode, preflight)?,
                        };
                        stamp(obs, Stage::Evaluate);
                        out
                    }
                };
                let serializable = if with_attrs {
                    crate::stream::xml_serializable_attrs(&output)
                } else {
                    crate::stream::xml_serializable(&output)
                };
                if !serializable {
                    return Err(EngineError::Parse(
                        "output has inner symbols that are not XML names; use the term format"
                            .into(),
                    ));
                }
                let text = if with_attrs {
                    crate::stream::tree_to_xml_attrs(&output)
                } else {
                    tree_to_xml(&output)
                };
                stamp(obs, Stage::Emit);
                Ok(text)
            }
            DocFormat::Encoded(codec) => {
                let output = match (mode, limit) {
                    // The fully streaming encoded path: tokenizer →
                    // incremental encoder → (lockstep guard) →
                    // evaluator; no intermediate tree of the input. All
                    // fused — charged to eval.
                    (EvalMode::Streaming, None) => {
                        let out = self.eval_encoded_stream(compiled, guard, codec, doc, skips)?;
                        stamp(obs, Stage::Evaluate);
                        out
                    }
                    _ => {
                        // The same streaming encoder, collected — every
                        // mode validates documents identically. Tokenize
                        // and encode are one fused pass, charged to
                        // encode.
                        let input = codec.ranked_tree(doc).map_err(encoded_error)?;
                        stamp(obs, Stage::Encode);
                        if let Some(g) = guard {
                            g.check_tree(&input).map_err(EngineError::Type)?;
                            stamp(obs, Stage::Guard);
                        }
                        let preflight = self.check_output_bound(compiled, &input, limit)?;
                        let out = match mode {
                            EvalMode::Streaming => self
                                .stream
                                .eval_tree(compiled, &input)
                                .ok_or(EngineError::Undefined)?,
                            _ => self.eval_tree(compiled, dtop, &input, mode, preflight)?,
                        };
                        stamp(obs, Stage::Evaluate);
                        out
                    }
                };
                let text = codec
                    .decode_tree(&output)
                    .map_err(|e| EngineError::Encoding(e.to_string()))?;
                stamp(obs, Stage::Emit);
                Ok(text)
            }
        }
    }

    /// Event-driven transformation to a byte writer: the format-specific
    /// serializer runs as an [`OutputSink`] fed straight by the streaming
    /// evaluator, so committed output bytes leave before the input is
    /// fully consumed.
    #[allow(clippy::too_many_arguments)]
    fn transform_streaming(
        &mut self,
        stages: &[&CompiledDtop],
        doc: &str,
        format: &DocFormat,
        guard: Option<&CompiledDtta>,
        limit: Option<u64>,
        out: &mut dyn io::Write,
        skips: &AtomicU64,
        mut obs: Option<&mut (dyn EvalObserver + '_)>,
    ) -> Result<StreamOutcome, EngineError> {
        // Event-driven emission fuses guard/evaluate/emit into one pass
        // over the source; the fused pass is charged to eval, and any
        // work after the run (tail serialization, decoder remainder) to
        // emit.
        let obs = &mut obs;
        match format {
            DocFormat::Term => {
                let input = parse_tree(doc).map_err(|e| EngineError::Parse(e.to_string()))?;
                stamp(obs, Stage::Tokenize);
                let mut source = IterEvents(input.events());
                let mut sink = TermSink::new(out);
                let run = run_stream(self.exec(stages), guard, &mut source, &mut sink, limit);
                let stats = stream_verdict(run, None, None)?;
                stamp(obs, Stage::Evaluate);
                Ok(outcome(stats, sink.bytes, 0))
            }
            DocFormat::Xml => {
                let mut source = XmlRankedEvents::bounded(doc);
                let mut sink = RankedXmlSink::new(out);
                let run = run_stream(self.exec(stages), guard, &mut source, &mut sink, limit);
                let skipped = source.skipped_subtrees();
                skips.fetch_add(skipped, Ordering::Relaxed);
                let source_error = source
                    .take_error()
                    .map(|e| EngineError::Parse(e.to_string()));
                let sink_failure = sink.failure.take().map(EngineError::Parse);
                let stats = stream_verdict(run, source_error, sink_failure)?;
                stamp(obs, Stage::Evaluate);
                Ok(outcome(stats, sink.bytes, skipped))
            }
            DocFormat::XmlAttrs => {
                // The input streams exactly like `Xml` (skip fast path,
                // lockstep guard), but an output start tag cannot commit
                // before its `@attrs` block closes, so the output tree is
                // collected and serialized when the run completes.
                let mut source = XmlRankedEvents::bounded(doc).attributes(true);
                let mut sink = TreeCollector::new();
                let run = run_stream(self.exec(stages), guard, &mut source, &mut sink, limit);
                let skipped = source.skipped_subtrees();
                skips.fetch_add(skipped, Ordering::Relaxed);
                let source_error = source
                    .take_error()
                    .map(|e| EngineError::Parse(e.to_string()));
                let stats = stream_verdict(run, source_error, None)?;
                stamp(obs, Stage::Evaluate);
                let output = sink.into_tree().ok_or(EngineError::Undefined)?;
                if !crate::stream::xml_serializable_attrs(&output) {
                    return Err(EngineError::Parse(
                        "output has inner symbols that are not XML names; use the term format"
                            .into(),
                    ));
                }
                let text = crate::stream::tree_to_xml_attrs(&output);
                out.write_all(text.as_bytes())
                    .map_err(|e| EngineError::Write {
                        kind: e.kind(),
                        message: e.to_string(),
                    })?;
                stamp(obs, Stage::Emit);
                Ok(outcome(stats, text.len() as u64, skipped))
            }
            DocFormat::Encoded(codec) => {
                let mut source = EncodedSource::new(codec.events(doc));
                let mut sink = EncodedByteSink::new(codec.writer(), out);
                let run = run_stream(self.exec(stages), guard, &mut source, &mut sink, limit);
                let skipped = source.inner.skipped_subtrees();
                skips.fetch_add(skipped, Ordering::Relaxed);
                let source_error = source.error.take().map(encoded_error);
                let sink_failure = sink
                    .failure
                    .take()
                    .map(|e| EngineError::Encoding(e.to_string()));
                let stats = stream_verdict(run, source_error, sink_failure)?;
                stamp(obs, Stage::Evaluate);
                sink.finish()?;
                stamp(obs, Stage::Emit);
                Ok(outcome(stats, sink.bytes, skipped))
            }
        }
    }

    /// Streaming evaluation with the domain guard in lockstep: the guard
    /// sees every event first and cuts the stream at the first violation.
    fn eval_stream_guarded(
        &mut self,
        compiled: &CompiledDtop,
        guard: &CompiledDtta,
        events: impl Iterator<Item = xtt_trees::TreeEvent>,
    ) -> Result<xtt_trees::Tree, EngineError> {
        let mut source = GuardedSource::new(guard, IterEvents(events));
        let result = self.stream.eval_source(compiled, &mut source);
        if let Some(violation) = source.take_violation() {
            return Err(EngineError::Type(violation));
        }
        result.ok_or(EngineError::Undefined)
    }

    /// Streaming evaluation over an *encoded* unranked document: ranked
    /// events are produced incrementally by the codec's encoder and fed
    /// straight to the evaluator, with the domain guard composed in
    /// lockstep when validation is on. A guard violation wins over a
    /// later tokenizer/encoding error by construction (the guard cuts
    /// the stream first). Deleted subtrees fast-forward the raw
    /// tokenizer through [`UnrankedEvents::skip_subtree`] — they are
    /// never tokenized, exactly like the raw-XML streaming path.
    fn eval_encoded_stream(
        &mut self,
        compiled: &CompiledDtop,
        guard: Option<&CompiledDtta>,
        codec: &XmlCodec,
        doc: &str,
        skips: &AtomicU64,
    ) -> Result<xtt_trees::Tree, EngineError> {
        let mut source = EncodedSource::new(codec.events(doc));
        let result = match guard {
            Some(g) => {
                let mut guarded = GuardedSource::new(g, &mut source);
                let result = self.stream.eval_source(compiled, &mut guarded);
                let violation = guarded.take_violation();
                skips.fetch_add(source.inner.skipped_subtrees(), Ordering::Relaxed);
                if let Some(v) = violation {
                    return Err(EngineError::Type(v));
                }
                result
            }
            None => {
                let result = self.stream.eval_source(compiled, &mut source);
                skips.fetch_add(source.inner.skipped_subtrees(), Ordering::Relaxed);
                result
            }
        };
        if let Some(e) = source.error {
            return Err(encoded_error(e));
        }
        result.ok_or(EngineError::Undefined)
    }

    /// Enforces [`EngineOptions::max_output_nodes`]: a linear-time DAG
    /// evaluation measures the output-tree size *without materializing
    /// it* (the DAG is small even when the tree is exponential), so an
    /// over-limit document is rejected before any large allocation.
    /// Returns the DAG root id when a bound was evaluated, so Dag mode
    /// can reuse it instead of evaluating twice.
    fn check_output_bound(
        &mut self,
        compiled: &CompiledDtop,
        input: &xtt_trees::Tree,
        limit: Option<u64>,
    ) -> Result<Option<DagId>, EngineError> {
        let Some(limit) = limit else {
            return Ok(None);
        };
        let id = compiled
            .eval_dag(input, &mut self.dag_scratch, &mut self.dag)
            .ok_or(EngineError::Undefined)?;
        let size = self.dag.tree_size(id);
        if size > limit {
            return Err(EngineError::OutputTooLarge(size));
        }
        Ok(Some(id))
    }

    fn eval_tree(
        &mut self,
        compiled: &CompiledDtop,
        dtop: &Dtop,
        input: &xtt_trees::Tree,
        mode: EvalMode,
        preflight: Option<DagId>,
    ) -> Result<xtt_trees::Tree, EngineError> {
        match mode {
            EvalMode::Compiled => compiled.eval(input, &mut self.scratch),
            EvalMode::Streaming => self.stream.eval_tree(compiled, input),
            // The bound pre-flight (if any) already ran this exact DAG
            // evaluation; reuse its root instead of evaluating again.
            EvalMode::Dag => preflight
                .or_else(|| compiled.eval_dag(input, &mut self.dag_scratch, &mut self.dag))
                .map(|id| self.dag.extract(id)),
            EvalMode::TreeWalk => walk_eval(dtop, input),
        }
        .ok_or(EngineError::Undefined)
    }

    /// [`Worker::transform_chain`] with the same panic isolation as
    /// [`Worker::transform_caught`].
    #[allow(clippy::too_many_arguments)]
    fn transform_chain_caught(
        &mut self,
        stages: &[ChainStage],
        doc: &str,
        mode: EvalMode,
        format: &DocFormat,
        limit: Option<u64>,
        guard: Option<&CompiledDtta>,
        skips: &AtomicU64,
        stage_events: Option<&dyn Fn(usize, u64)>,
    ) -> Result<String, EngineError> {
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.transform_chain(stages, doc, mode, format, limit, guard, skips, stage_events)
        }));
        result.unwrap_or_else(|panic| {
            *self = Worker::new();
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "evaluator panicked".to_owned());
            Err(EngineError::Internal(msg))
        })
    }

    /// Executes a pipeline chain on one document, returning text. See
    /// [`Engine::transform_chain`] for the mode semantics; the chain
    /// paths carry no pipeline observer (per-stage event counts go
    /// through `stage_events` instead).
    #[allow(clippy::too_many_arguments)]
    fn transform_chain(
        &mut self,
        stages: &[ChainStage],
        doc: &str,
        mode: EvalMode,
        format: &DocFormat,
        limit: Option<u64>,
        guard: Option<&CompiledDtta>,
        skips: &AtomicU64,
        stage_events: Option<&dyn Fn(usize, u64)>,
    ) -> Result<String, EngineError> {
        assert!(
            !stages.is_empty(),
            "a pipeline chain has at least one stage"
        );
        if mode == EvalMode::Streaming && limit.is_none() {
            // Fused chained streaming: input events cascade through every
            // stage; intermediate trees never materialize outside
            // buffered regions, and deleted subtrees fast-forward the
            // tokenizer exactly like the single-transducer path.
            let output = match format {
                DocFormat::Term => {
                    let input = parse_tree(doc).map_err(|e| EngineError::Parse(e.to_string()))?;
                    self.eval_chain_collect(stages, guard, &mut IterEvents(input.events()))?
                        .ok_or(EngineError::Undefined)?
                }
                DocFormat::Xml | DocFormat::XmlAttrs => {
                    let with_attrs = matches!(format, DocFormat::XmlAttrs);
                    let mut source = XmlRankedEvents::bounded(doc).attributes(with_attrs);
                    let result = self.eval_chain_collect(stages, guard, &mut source);
                    skips.fetch_add(source.skipped_subtrees(), Ordering::Relaxed);
                    if let Some(e) = source.take_error() {
                        return Err(EngineError::Parse(e.to_string()));
                    }
                    result?.ok_or(EngineError::Undefined)?
                }
                DocFormat::Encoded(codec) => {
                    let mut source = EncodedSource::new(codec.events(doc));
                    let result = self.eval_chain_collect(stages, guard, &mut source);
                    skips.fetch_add(source.inner.skipped_subtrees(), Ordering::Relaxed);
                    if let Some(e) = source.error.take() {
                        return Err(encoded_error(e));
                    }
                    result?.ok_or(EngineError::Undefined)?
                }
            };
            if let Some(cb) = stage_events {
                for (i, st) in self.chain.stage_stats().enumerate() {
                    cb(i, st.events_total);
                }
            }
            return render_output(format, &output);
        }
        // Materialized path (tree/dag/walk modes, or a configured output
        // bound): parse the input once, evaluate stage by stage. The
        // output-node bound pre-flights the **final** stage only — the
        // chain's output is what the bound protects; intermediate trees
        // are an execution detail the composed strategy never builds.
        let input = parse_input(format, doc)?;
        if let Some(g) = guard {
            g.check_tree(&input).map_err(EngineError::Type)?;
        }
        let mut current = input;
        for (i, stage) in stages.iter().enumerate() {
            let last = i + 1 == stages.len();
            let preflight = self.check_output_bound(
                &stage.compiled,
                &current,
                if last { limit } else { None },
            )?;
            current = self.eval_tree(&stage.compiled, &stage.dtop, &current, mode, preflight)?;
            if let Some(cb) = stage_events {
                cb(i, 2 * current.size());
            }
        }
        render_output(format, &current)
    }

    /// Runs the chained streaming evaluator over `source` into a
    /// collected tree, with the optional chain guard in lockstep (the
    /// guard cuts the stream at the first violation, so a rejected
    /// document's tail is never produced upstream).
    fn eval_chain_collect(
        &mut self,
        stages: &[ChainStage],
        guard: Option<&CompiledDtta>,
        source: &mut impl TreeEventSource,
    ) -> Result<Option<xtt_trees::Tree>, EngineError> {
        let refs: Vec<&CompiledDtop> = stages.iter().map(|s| &*s.compiled).collect();
        let mut sink = TreeCollector::new();
        let result = match guard {
            Some(g) => {
                let mut guarded = GuardedSource::new(g, source);
                let result = self.chain.eval_streaming(&refs, &mut guarded, &mut sink);
                if let Some(v) = guarded.take_violation() {
                    return Err(EngineError::Type(v));
                }
                result
            }
            None => self.chain.eval_streaming(&refs, source, &mut sink),
        };
        match result {
            Ok(Some(_)) => Ok(sink.into_tree()),
            // A TreeCollector never fails a write; Err is unreachable,
            // and Ok(None) is an out-of-domain input.
            _ => Ok(None),
        }
    }
}

/// Parses one document into a ranked input tree per the format — the
/// materialized half of the chain execution paths (the single-transducer
/// paths keep their fused parse-and-stamp arms).
fn parse_input(format: &DocFormat, doc: &str) -> Result<xtt_trees::Tree, EngineError> {
    match format {
        DocFormat::Term => parse_tree(doc).map_err(|e| EngineError::Parse(e.to_string())),
        DocFormat::Xml | DocFormat::XmlAttrs => XmlRankedEvents::bounded(doc)
            .attributes(matches!(format, DocFormat::XmlAttrs))
            .collect_tree()
            .map_err(|e| EngineError::Parse(e.to_string())),
        DocFormat::Encoded(codec) => codec.ranked_tree(doc).map_err(encoded_error),
    }
}

/// Serializes an output tree per the format, with the same
/// serializability checks as the single-transducer paths.
fn render_output(format: &DocFormat, output: &xtt_trees::Tree) -> Result<String, EngineError> {
    match format {
        DocFormat::Term => Ok(output.to_string()),
        DocFormat::Xml | DocFormat::XmlAttrs => {
            let with_attrs = matches!(format, DocFormat::XmlAttrs);
            let serializable = if with_attrs {
                crate::stream::xml_serializable_attrs(output)
            } else {
                crate::stream::xml_serializable(output)
            };
            if !serializable {
                return Err(EngineError::Parse(
                    "output has inner symbols that are not XML names; use the term format".into(),
                ));
            }
            Ok(if with_attrs {
                crate::stream::tree_to_xml_attrs(output)
            } else {
                tree_to_xml(output)
            })
        }
        DocFormat::Encoded(codec) => codec
            .decode_tree(output)
            .map_err(|e| EngineError::Encoding(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_transducer::examples;

    fn flip_docs(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| examples::flip_input(i % 5 + 1, (i + 2) % 4 + 1).to_string())
            .collect()
    }

    #[test]
    fn batch_results_are_in_input_order() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            workers: 4,
            ..EngineOptions::default()
        });
        let docs = flip_docs(101);
        let results = engine.transform_batch(&fix.dtop, &docs);
        assert_eq!(results.len(), docs.len());
        let mut scratch = EvalScratch::new();
        let compiled = engine.compiled(&fix.dtop).unwrap();
        for (doc, result) in docs.iter().zip(&results) {
            let expected = compiled
                .eval(&parse_tree(doc).unwrap(), &mut scratch)
                .unwrap()
                .to_string();
            assert_eq!(result.as_ref().unwrap(), &expected);
        }
    }

    #[test]
    fn documents_fail_independently() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            workers: 2,
            ..EngineOptions::default()
        });
        let docs = vec![
            "root(a(#,#),b(#,#))".to_owned(),
            "root(b(#,#),#)".to_owned(), // outside the domain
            "((".to_owned(),             // unparseable
            "root(#,#)".to_owned(),
        ];
        let results = engine.transform_batch(&fix.dtop, &docs);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(EngineError::Undefined));
        assert!(matches!(results[2], Err(EngineError::Parse(_))));
        assert_eq!(results[3].as_deref(), Ok("root(#,#)"));
    }

    #[test]
    fn all_modes_agree_on_batches() {
        let fix = examples::flip();
        let docs = flip_docs(40);
        let mut outputs: Vec<Vec<Result<String, EngineError>>> = Vec::new();
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let engine = Engine::new(EngineOptions {
                workers: 3,
                mode,
                ..EngineOptions::default()
            });
            outputs.push(engine.transform_batch(&fix.dtop, &docs));
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
        assert_eq!(outputs[0], outputs[3]);
    }

    /// An attached observer sees the pipeline stages in flow order in
    /// every mode, and the observed result is byte-identical to the
    /// unobserved one.
    #[test]
    fn observer_sees_stage_breakdown_in_all_modes() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions::default());
        let doc = "root(a(#,#),b(#,#))";
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let plain = engine
                .transform_with_validation(&fix.dtop, doc, mode, DocFormat::Term, true)
                .unwrap();
            let mut trace = xtt_obs::Trace::new(1);
            let observed = engine
                .transform_observed(
                    &fix.dtop,
                    doc,
                    mode,
                    DocFormat::Term,
                    true,
                    Some(&mut trace),
                )
                .unwrap();
            assert_eq!(plain, observed);
            let names: Vec<&str> = trace.stages().iter().map(|(n, _)| *n).collect();
            if mode == EvalMode::Streaming {
                // Guard and evaluation run fused in lockstep.
                assert_eq!(names, ["tokenize", "eval", "emit"], "mode {mode:?}");
            } else {
                assert_eq!(
                    names,
                    ["tokenize", "guard", "eval", "emit"],
                    "mode {mode:?}"
                );
            }
        }
    }

    /// The streaming-emission path stamps the observer too, and batch
    /// observation accumulates stages across documents.
    #[test]
    fn observer_covers_streaming_and_batches() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions::default());
        let mut out = Vec::new();
        let mut trace = xtt_obs::Trace::new(2);
        engine
            .transform_streaming_observed(
                &fix.dtop,
                "root(a(#,#),b(#,#))",
                DocFormat::Term,
                false,
                &mut out,
                Some(&mut trace),
            )
            .unwrap();
        let names: Vec<&str> = trace.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["tokenize", "eval"]);

        let docs = flip_docs(8);
        let mut trace = xtt_obs::Trace::new(3);
        let observed = engine.transform_batch_observed(
            &fix.dtop,
            &docs,
            EvalMode::Compiled,
            DocFormat::Term,
            false,
            Some(&mut trace),
        );
        let plain = engine.transform_batch(&fix.dtop, &docs);
        assert_eq!(observed, plain);
        let names: Vec<&str> = trace.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["tokenize", "eval", "emit"], "stages accumulate");
    }

    /// Regression test for the serving contract: a large batch with
    /// malformed and out-of-domain documents sprinkled in reports each
    /// failure *positionally* — no abort on first error, every other
    /// document still transformed, in every mode and at any worker count.
    #[test]
    fn batch_errors_are_positional_not_aborting() {
        let fix = examples::flip();
        let mut docs = flip_docs(100);
        docs[13] = "root(".to_owned(); // malformed
        docs[57] = "root(b(#,#),#)".to_owned(); // outside the domain
        docs[99] = "((".to_owned(); // malformed
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            for workers in [1, 4] {
                let engine = Engine::new(EngineOptions {
                    workers,
                    mode,
                    ..EngineOptions::default()
                });
                let results = engine.transform_batch(&fix.dtop, &docs);
                assert_eq!(results.len(), docs.len());
                assert!(matches!(results[13], Err(EngineError::Parse(_))));
                assert_eq!(results[57], Err(EngineError::Undefined));
                assert!(matches!(results[99], Err(EngineError::Parse(_))));
                let ok = results.iter().filter(|r| r.is_ok()).count();
                assert_eq!(ok, 97, "every well-formed document must succeed");
            }
        }
    }

    /// With a bound configured, a copying transducer cannot be used to
    /// materialize an exponential output — the DAG pre-flight rejects the
    /// document (in every mode) while small documents still succeed.
    #[test]
    fn output_bound_rejects_exponential_outputs_cheaply() {
        let copier = examples::monadic_to_binary().dtop; // output 2^(depth+1)-1 nodes
        let engine = Engine::new(EngineOptions {
            max_output_nodes: Some(10_000),
            workers: 1,
            ..EngineOptions::default()
        });
        let mut deep = String::from("e");
        for _ in 0..200 {
            deep = format!("f({deep})"); // output ~2^201 nodes, saturates u64
        }
        let docs = vec!["f(f(e))".to_owned(), deep, "e".to_owned()];
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let results = engine.transform_batch_with(&copier, &docs, mode, DocFormat::Term);
            assert_eq!(results[0].as_deref(), Ok("g(g(e,e),g(e,e))"), "{mode:?}");
            assert!(
                matches!(results[1], Err(EngineError::OutputTooLarge(n)) if n > 10_000),
                "{mode:?}: {:?}",
                results[1]
            );
            assert_eq!(results[2].as_deref(), Ok("e"), "{mode:?}");
        }
        // Unbounded engines are unaffected.
        let unbounded = Engine::new(EngineOptions::default());
        assert!(unbounded.transform(&copier, "f(f(f(e)))").is_ok());
    }

    #[test]
    fn per_request_mode_and_format_override_engine_defaults() {
        let fix = examples::flip();
        let engine = Engine::shared(EngineOptions::default()); // Term + Compiled
        let out = engine
            .transform_with(
                &fix.dtop,
                "<root><a># #</a><b># #</b></root>",
                EvalMode::Streaming,
                DocFormat::Xml,
            )
            .unwrap();
        assert_eq!(out, "<root><b># #</b><a># #</a></root>");
        let batch = engine.transform_batch_with(
            &fix.dtop,
            &["root(a(#,#),b(#,#))".to_owned()],
            EvalMode::Dag,
            DocFormat::Term,
        );
        assert_eq!(batch[0].as_deref(), Ok("root(b(#,#),a(#,#))"));
    }

    #[test]
    fn xml_format_roundtrips() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            format: DocFormat::Xml,
            mode: EvalMode::Streaming,
            workers: 1,
            ..EngineOptions::default()
        });
        let out = engine
            .transform(&fix.dtop, "<root><a># #</a><b># #</b></root>")
            .unwrap();
        assert_eq!(out, "<root><b># #</b><a># #</a></root>");
    }

    /// Guarded evaluation: the typed diagnostic (with the violation path
    /// of the first undefined node) is bit-identical across all four eval
    /// modes and both validation entry points, and in-domain documents
    /// are unaffected.
    #[test]
    fn validation_diagnostics_identical_across_modes() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            validate: true,
            workers: 1,
            ..EngineOptions::default()
        });
        let bad = "root(a(#,b(#,#)),b(#,#))"; // violation at node 1.2
        let good = "root(a(#,#),b(#,#))";
        let mut rendered: Vec<String> = Vec::new();
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let results = engine.transform_batch_with(
                &fix.dtop,
                &[good.to_owned(), bad.to_owned()],
                mode,
                DocFormat::Term,
            );
            assert_eq!(results[0].as_deref(), Ok("root(b(#,#),a(#,#))"), "{mode:?}");
            match &results[1] {
                Err(EngineError::Type(e)) => {
                    assert_eq!(e.path().to_string(), "1.2", "{mode:?}");
                    rendered.push(e.to_string());
                }
                other => panic!("{mode:?}: expected a type error, got {other:?}"),
            }
        }
        rendered.dedup();
        assert_eq!(rendered.len(), 1, "diagnostics differ across modes");
        // Violation counters: 8 validated, 4 rejected.
        let stats = engine.validation_stats();
        assert_eq!(stats.docs_validated, 8);
        assert_eq!(stats.docs_rejected_pre_eval, 4);
        assert_eq!(stats.guards_compiled, 1, "guard cache must hit");
    }

    /// The guarded XML streaming path rejects with the same diagnostic as
    /// the tree-based modes, without validation only an opaque
    /// `Undefined` surfaces, and per-request validation overrides the
    /// engine default.
    #[test]
    fn validation_overrides_and_xml_streaming() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions::default()); // validate off
        let bad_xml = "<root><a># <b># #</b></a><b># #</b></root>";
        let unguarded = engine
            .transform_with(&fix.dtop, bad_xml, EvalMode::Streaming, DocFormat::Xml)
            .unwrap_err();
        assert_eq!(unguarded, EngineError::Undefined);
        let guarded = engine
            .transform_with_validation(
                &fix.dtop,
                bad_xml,
                EvalMode::Streaming,
                DocFormat::Xml,
                true,
            )
            .unwrap_err();
        let EngineError::Type(e) = &guarded else {
            panic!("expected a type error, got {guarded:?}");
        };
        assert_eq!(e.path().to_string(), "1.2");
        // Same violation through the tree-based XML path.
        let walked = engine
            .transform_with_validation(&fix.dtop, bad_xml, EvalMode::TreeWalk, DocFormat::Xml, true)
            .unwrap_err();
        assert_eq!(walked, guarded);
        // Deleted junk stays accepted under validation (guard ≡ eval).
        let junk_xml = "<root><a>zzz-not-in-alphabet<a># #</a></a><b># #</b></root>";
        for mode in [EvalMode::Streaming, EvalMode::Compiled] {
            let out = engine
                .transform_with_validation(&fix.dtop, junk_xml, mode, DocFormat::Xml, true)
                .unwrap();
            assert_eq!(out, "<root><b># #</b><a>#<a># #</a></a></root>");
        }
    }

    /// Validation composes with the output bound: the guard's typed error
    /// wins on out-of-domain documents, the bound still rejects oversized
    /// in-domain ones.
    #[test]
    fn validation_composes_with_output_bound() {
        let copier = examples::monadic_to_binary().dtop;
        let engine = Engine::new(EngineOptions {
            validate: true,
            max_output_nodes: Some(1_000),
            workers: 1,
            ..EngineOptions::default()
        });
        let mut deep = String::from("e");
        for _ in 0..30 {
            deep = format!("f({deep})");
        }
        let docs = vec![
            "f(f(e))".to_owned(),
            deep,
            "f(zzz)".to_owned(), // out of domain at 1
        ];
        for mode in [EvalMode::Compiled, EvalMode::Streaming, EvalMode::Dag] {
            let results = engine.transform_batch_with(&copier, &docs, mode, DocFormat::Term);
            assert_eq!(results[0].as_deref(), Ok("g(g(e,e),g(e,e))"), "{mode:?}");
            assert!(
                matches!(results[1], Err(EngineError::OutputTooLarge(_))),
                "{mode:?}: {:?}",
                results[1]
            );
            match &results[2] {
                Err(EngineError::Type(e)) => assert_eq!(e.path().to_string(), "1"),
                other => panic!("{mode:?}: expected type error, got {other:?}"),
            }
        }
    }

    /// A dtop over the fc/ns alphabet: drop every `b` element, keep the
    /// rest (used by the encoded-format tests; deletion exercises the
    /// skip fast path through the whole encoded pipeline).
    fn fcns_prune() -> Dtop {
        let alpha =
            xtt_trees::RankedAlphabet::from_pairs([("root", 2), ("a", 2), ("b", 2), ("#", 0)]);
        let mut b = xtt_transducer::DtopBuilder::new(alpha.clone(), alpha);
        b.add_state("q0");
        b.add_state("q");
        b.set_axiom_str("<q0,x0>").unwrap();
        b.add_rule_str("q0", "root", "root(<q,x1>,<q,x2>)").unwrap();
        b.add_rule_str("q", "a", "a(<q,x1>,<q,x2>)").unwrap();
        b.add_rule_str("q", "b", "<q,x2>").unwrap();
        b.add_rule_str("q", "#", "#").unwrap();
        b.build().unwrap()
    }

    /// Genuine unranked XML through the fc/ns codec: all four eval modes
    /// produce byte-identical decoded XML, including under validation
    /// and the output bound.
    #[test]
    fn encoded_fcns_agrees_across_modes() {
        let prune = fcns_prune();
        let format = DocFormat::parse("fcns").unwrap();
        let docs = vec![
            "<root><a><b><a/></b><a/></a><b/></root>".to_owned(),
            "<root/>".to_owned(),
            "<root><b/><b/><a/></root>".to_owned(),
            "<notroot/>".to_owned(), // out of domain (no q0 rule)
        ];
        let mut outputs: Vec<Vec<Result<String, ()>>> = Vec::new();
        for validate in [false, true] {
            for mode in [
                EvalMode::Compiled,
                EvalMode::Streaming,
                EvalMode::Dag,
                EvalMode::TreeWalk,
            ] {
                let engine = Engine::new(EngineOptions {
                    workers: 1,
                    max_output_nodes: if validate { Some(10_000) } else { None },
                    ..EngineOptions::default()
                });
                let results = engine.transform_batch_with_validation(
                    &prune,
                    &docs,
                    mode,
                    format.clone(),
                    validate,
                );
                assert_eq!(
                    results[0].as_deref().unwrap(),
                    "<root><a><a/></a></root>",
                    "{mode:?} validate={validate}"
                );
                assert_eq!(results[1].as_deref().unwrap(), "<root/>");
                assert_eq!(results[2].as_deref().unwrap(), "<root><a/></root>");
                assert!(results[3].is_err(), "{mode:?}: {:?}", results[3]);
                outputs.push(results.iter().map(|r| r.clone().map_err(|_| ())).collect());
            }
        }
        // The Ok outputs are identical everywhere.
        let oks: Vec<_> = outputs
            .iter()
            .map(|rs| {
                rs.iter()
                    .filter_map(|r| r.as_ref().ok())
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(oks.windows(2).all(|w| w[0] == w[1]));
    }

    /// `xml+attrs` end to end: attributes surface as the `@attrs` first
    /// child of the ranked encoding, a transducer can delete or keep
    /// them, and kept attribute blocks decode back to real attribute
    /// syntax — byte-identical across every mode and under validation.
    #[test]
    fn xml_attrs_round_trip_across_modes() {
        // Strip: `root` carries an @attrs block (arity 3 with it); the
        // transducer drops the block (exercising the attribute-queue
        // skip drain) and keeps the element children.
        let in_alpha = xtt_trees::RankedAlphabet::from_pairs([
            ("root", 3),
            ("@attrs", 2),
            ("@a", 2),
            ("@b", 1),
            ("p", 0),
            ("q", 0),
            ("z", 0),
            ("x", 0),
        ]);
        let out_alpha = in_alpha.clone();
        let mut b = xtt_transducer::DtopBuilder::new(in_alpha.clone(), out_alpha.clone());
        b.add_state("q0");
        b.add_state("qx");
        b.set_axiom_str("<q0,x0>").unwrap();
        b.add_rule_str("q0", "root", "root(<qx,x2>,<qx,x3>,z)")
            .unwrap();
        b.add_rule_str("qx", "x", "x").unwrap();
        let strip = b.build().unwrap();

        // Keep: the identity on this fixed shape, @attrs block included.
        let mut b = xtt_transducer::DtopBuilder::new(in_alpha.clone(), out_alpha);
        for s in ["q0", "qat", "qa", "qb", "qt", "qx"] {
            b.add_state(s);
        }
        b.set_axiom_str("<q0,x0>").unwrap();
        b.add_rule_str("q0", "root", "root(<qat,x1>,<qx,x2>,<qx,x3>)")
            .unwrap();
        b.add_rule_str("qat", "@attrs", "@attrs(<qa,x1>,<qb,x2>)")
            .unwrap();
        b.add_rule_str("qa", "@a", "@a(<qt,x1>,<qt,x2>)").unwrap();
        b.add_rule_str("qb", "@b", "@b(<qt,x1>)").unwrap();
        for leaf in ["p", "q", "z"] {
            b.add_rule_str("qt", leaf, leaf).unwrap();
        }
        b.add_rule_str("qx", "x", "x").unwrap();
        let keep = b.build().unwrap();

        let doc = r#"<root a="p q" b="z"><x/><x/></root>"#;
        let format = DocFormat::parse("xml+attrs").unwrap();
        for validate in [false, true] {
            for mode in [
                EvalMode::Compiled,
                EvalMode::Streaming,
                EvalMode::Dag,
                EvalMode::TreeWalk,
            ] {
                let engine = Engine::new(EngineOptions {
                    workers: 1,
                    ..EngineOptions::default()
                });
                let stripped = engine
                    .transform_with_validation(&strip, doc, mode, format.clone(), validate)
                    .unwrap();
                assert_eq!(stripped, "<root><x/><x/><z/></root>", "{mode:?}");
                let kept = engine
                    .transform_with_validation(&keep, doc, mode, format.clone(), validate)
                    .unwrap();
                assert_eq!(kept, doc, "{mode:?} validate={validate}");
            }
        }
        // Plain `xml` never builds the @attrs child: root then has two
        // children and the arity-3 rules leave the document undefined.
        let engine = Engine::new(EngineOptions::default());
        assert_eq!(
            engine.transform_with(&strip, doc, EvalMode::Compiled, DocFormat::Xml),
            Err(EngineError::Undefined)
        );
    }

    /// The DTD-encoded path end to end: the paper's `xmlflip` applied to
    /// real XML — input encoded with the `(a*,b*)` DTD, output decoded
    /// with the `(b*,a*)` DTD, across all four modes.
    #[test]
    fn encoded_dtd_xmlflip_end_to_end() {
        use xtt_xml::xmlflip;
        let m = xmlflip::target_dtop();
        let codec = XmlCodec::dtd_pair(
            std::sync::Arc::new(xmlflip::input_encoding()),
            std::sync::Arc::new(xmlflip::output_encoding()),
        );
        let format = DocFormat::Encoded(codec);
        let engine = Engine::new(EngineOptions {
            workers: 1,
            ..EngineOptions::default()
        });
        for mode in [
            EvalMode::Compiled,
            EvalMode::Streaming,
            EvalMode::Dag,
            EvalMode::TreeWalk,
        ] {
            let out = engine
                .transform_with(&m, "<root><a/><a/><b/></root>", mode, format.clone())
                .unwrap();
            assert_eq!(out, "<root><b/><a/><a/></root>", "{mode:?}");
            // A DTD-invalid document is an encoding error, positionally.
            let bad = engine
                .transform_with(&m, "<root><b/><a/></root>", mode, format.clone())
                .unwrap_err();
            assert!(matches!(bad, EngineError::Encoding(_)), "{mode:?}: {bad:?}");
        }
    }

    /// Encoded + validation: the lockstep guard rejects out-of-domain
    /// encoded documents with the same typed diagnostic in streaming and
    /// pre-flight modes.
    #[test]
    fn encoded_validation_diagnostics_agree() {
        let prune = fcns_prune();
        let format = DocFormat::parse("fcns").unwrap();
        let engine = Engine::new(EngineOptions {
            validate: true,
            workers: 1,
            ..EngineOptions::default()
        });
        // `c` is not in prune's alphabet and sits in an inspected
        // position: a typed violation, not an opaque Undefined.
        let bad = "<root><a/><c/><a/></root>";
        let mut rendered: Vec<String> = Vec::new();
        for mode in [EvalMode::Streaming, EvalMode::Compiled, EvalMode::TreeWalk] {
            match engine.transform_with(&prune, bad, mode, format.clone()) {
                Err(EngineError::Type(e)) => rendered.push(e.to_string()),
                other => panic!("{mode:?}: expected a type error, got {other:?}"),
            }
        }
        rendered.dedup();
        assert_eq!(rendered.len(), 1, "diagnostics differ across modes");
    }

    /// Streamed emission is byte-identical to the batch API in every
    /// format, and on order-preserving transducers the first output
    /// bytes leave before the input ends (events_emitted_early > 0,
    /// nothing buffered).
    #[test]
    fn transform_streaming_matches_batch_output() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions {
            workers: 1,
            ..EngineOptions::default()
        });
        let prune = fcns_prune();
        let cases = [
            (&fix.dtop, DocFormat::Term, "root(a(#,#),b(#,#))"),
            (
                &fix.dtop,
                DocFormat::Xml,
                "<root><a># #</a><b># #</b></root>",
            ),
            (
                &prune,
                DocFormat::parse("fcns").unwrap(),
                "<root><a><a/></a><b/></root>",
            ),
        ];
        for (dtop, format, doc) in cases {
            let batch = engine
                .transform_with(dtop, doc, EvalMode::Streaming, format.clone())
                .unwrap();
            let mut bytes = Vec::new();
            let out = engine
                .transform_streaming_with(dtop, doc, format.clone(), false, &mut bytes)
                .unwrap();
            assert_eq!(String::from_utf8(bytes).unwrap(), batch, "{format:?}");
            assert_eq!(out.bytes_written as usize, batch.len(), "{format:?}");
            assert!(out.events_total > 0, "{format:?}");
        }
        // The prune transducer is order-preserving: everything streams.
        let prune = fcns_prune();
        let doc = "<root><a><a/></a><a/></root>";
        let mut bytes = Vec::new();
        let out = engine
            .transform_streaming_with(
                &prune,
                doc,
                DocFormat::parse("fcns").unwrap(),
                false,
                &mut bytes,
            )
            .unwrap();
        assert_eq!(out.peak_buffered_frames, 0, "order-preserving run buffers");
        assert_eq!(out.events_emitted_early, out.events_total);
    }

    /// The encoded streaming path fast-forwards deleted subtrees at the
    /// raw tokenizer (the PR-5 skip upside, closed for encoded formats),
    /// observable through the engine-wide counter.
    #[test]
    fn encoded_streaming_skips_deleted_subtrees() {
        let prune = fcns_prune();
        let format = DocFormat::parse("fcns").unwrap();
        let engine = Engine::new(EngineOptions {
            workers: 1,
            ..EngineOptions::default()
        });
        // Every `b` content forest is deleted; the inner junk would fail
        // fc/ns encoding if it were tokenized (undeclared depth is fine,
        // but the skip counter is the direct evidence).
        let doc = "<root><b><a><a/><a/></a></b><a/></root>";
        let out = engine
            .transform_with(&prune, doc, EvalMode::Streaming, format.clone())
            .unwrap();
        assert_eq!(out, "<root><a/></root>");
        assert!(
            engine.skipped_subtrees() >= 1,
            "encoded skip fast path must engage"
        );
        // Streamed emission takes the same fast path and reports it.
        let before = engine.skipped_subtrees();
        let mut bytes = Vec::new();
        let streamed = engine
            .transform_streaming_with(&prune, doc, format, false, &mut bytes)
            .unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), "<root><a/></root>");
        assert!(streamed.skipped_subtrees >= 1);
        assert_eq!(
            engine.skipped_subtrees(),
            before + streamed.skipped_subtrees
        );
    }

    /// Writer failures surface as [`EngineError::Write`] with the
    /// [`io::ErrorKind`] preserved (serving layers classify timeouts).
    #[test]
    fn streaming_write_errors_carry_the_kind() {
        struct FailAfter(usize);
        impl io::Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "slow client"));
                }
                self.0 = self.0.saturating_sub(buf.len());
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions::default());
        let err = engine
            .transform_streaming_with(
                &fix.dtop,
                "root(a(#,#),b(#,#))",
                DocFormat::Term,
                false,
                &mut FailAfter(0),
            )
            .unwrap_err();
        assert!(
            matches!(err, EngineError::Write { kind, .. } if kind == io::ErrorKind::TimedOut),
            "{err:?}"
        );
    }

    /// The output-node cap holds on streamed runs too — enforced as the
    /// events pass, without materializing the oversized output.
    #[test]
    fn streaming_enforces_the_output_bound() {
        let copier = examples::monadic_to_binary().dtop;
        let engine = Engine::new(EngineOptions {
            max_output_nodes: Some(1_000),
            ..EngineOptions::default()
        });
        let mut deep = String::from("e");
        for _ in 0..30 {
            deep = format!("f({deep})");
        }
        let mut bytes = Vec::new();
        let err = engine
            .transform_streaming_with(&copier, &deep, DocFormat::Term, false, &mut bytes)
            .unwrap_err();
        assert!(
            matches!(err, EngineError::OutputTooLarge(n) if n > 1_000),
            "{err:?}"
        );
        let mut ok = Vec::new();
        engine
            .transform_streaming_with(&copier, "f(f(e))", DocFormat::Term, false, &mut ok)
            .unwrap();
        assert_eq!(String::from_utf8(ok).unwrap(), "g(g(e,e),g(e,e))");
    }

    /// Streaming validation composes: the lockstep guard rejects with
    /// the same typed diagnostic as the batch paths.
    #[test]
    fn streaming_validation_rejects_with_typed_diagnostics() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions::default());
        let mut bytes = Vec::new();
        let err = engine
            .transform_streaming_with(
                &fix.dtop,
                "root(a(#,b(#,#)),b(#,#))",
                DocFormat::Term,
                true,
                &mut bytes,
            )
            .unwrap_err();
        let EngineError::Type(e) = &err else {
            panic!("expected a type error, got {err:?}");
        };
        assert_eq!(e.path().to_string(), "1.2");
    }

    #[test]
    fn compiled_cache_hits_by_fingerprint() {
        let fix = examples::flip();
        let engine = Engine::new(EngineOptions::default());
        let a = engine.compiled(&fix.dtop).unwrap();
        let b = engine.compiled(&examples::flip().dtop).unwrap(); // rebuilt, same structure
        assert_eq!(a.fingerprint(), b.fingerprint());
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let engine = Engine::new(EngineOptions {
            cache_capacity: 2,
            ..EngineOptions::default()
        });
        let m1 = examples::flip().dtop;
        let m2 = examples::library().dtop;
        let m3 = examples::monadic_to_binary().dtop;
        engine.compiled(&m1).unwrap();
        engine.compiled(&m2).unwrap();
        engine.compiled(&m1).unwrap(); // refresh m1
        engine.compiled(&m3).unwrap(); // evicts m2
        engine.compiled(&m1).unwrap(); // still cached
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        engine.compiled(&m2).unwrap(); // was evicted → miss
        assert_eq!(engine.cache_stats().misses, 4);
    }
}
