//! The streaming front end: run a compiled dtop directly over a pre-order
//! event stream, materializing only the spine the top-down run needs.
//!
//! A dtop run is determined from the root downwards, and pre-order events
//! deliver the root first — so the *set of states* processing every node
//! is known the moment its `Open` event arrives:
//!
//! * on `Open`, the live state set of the new node is derived from its
//!   parent's live states and rules ([`CompiledDtop::states_for_child`]);
//!   if the set is **empty** the subtree is *deleted* by the run and is
//!   skipped wholesale — its events are counted, never stored;
//! * on `Close`, every live state's rule is executed against the already
//!   computed per-child results, and the input node is discarded.
//!
//! Memory is therefore `O(spine · |Q| · |output so far|)` instead of the
//! whole document, and deleted subtrees cost one integer of bookkeeping.
//! Combined with [`crate::xml_ranked_events`], an XML document is
//! transformed while it is being tokenized, without ever building the
//! input tree.
//!
//! Partiality is exact: a live state without a rule for the node's symbol,
//! or a call to a child the node does not have, aborts with `None` — the
//! same inputs are undefined as for `xtt_transducer::eval::eval`.

use std::collections::VecDeque;
use std::io;

use xtt_trees::{tree_from_events, Symbol, Tree, TreeEvent};
use xtt_typecheck::{CompiledDtta, DttaRun, TypeError};
use xtt_xml::{xml_events, XmlError, XmlEvent, XmlEventReader};

use crate::compile::{CompiledDtop, Instr};

/// A pull source of pre-order tree events with an optional fast path for
/// skipping whole subtrees.
///
/// The streaming evaluator discovers, at each `Open`, whether *any*
/// state will inspect the subtree; when none will (a deleted subtree),
/// it calls [`TreeEventSource::skip_subtree`] so the source can discard
/// the subtree at whatever level is cheapest — [`XmlRankedEvents`]
/// fast-forwards the raw SAX reader past the element without tokenizing
/// it. Sources without a fast path return `false` and the evaluator
/// falls back to counting events.
pub trait TreeEventSource {
    /// The next event, or `None` at end of stream (or on a source error
    /// — the source records it for the caller to surface).
    fn next_event(&mut self) -> Option<TreeEvent>;

    /// Called immediately after [`TreeEventSource::next_event`] returned
    /// an `Open`: consume the rest of that node's subtree (descendants
    /// and the matching `Close`) without delivering it. `false` =
    /// unsupported here; the caller consumes the events instead.
    fn skip_subtree(&mut self) -> bool {
        false
    }
}

impl<S: TreeEventSource + ?Sized> TreeEventSource for &mut S {
    fn next_event(&mut self) -> Option<TreeEvent> {
        (**self).next_event()
    }

    fn skip_subtree(&mut self) -> bool {
        (**self).skip_subtree()
    }
}

/// Adapts any plain event iterator into a [`TreeEventSource`] (no skip
/// fast path).
pub struct IterEvents<I>(pub I);

impl<I: Iterator<Item = TreeEvent>> TreeEventSource for IterEvents<I> {
    fn next_event(&mut self) -> Option<TreeEvent> {
        self.0.next()
    }
}

/// What the most recently delivered event was, for
/// [`XmlRankedEvents::skip_subtree`].
enum LastOpen {
    Other,
    /// An element `Start` — skipping fast-forwards the raw reader.
    Element,
    /// A queued `Open` (text token or attribute-block node) whose
    /// balanced remainder sits in the queue.
    Token,
}

/// [`TreeEventSource`] straight off the SAX tokenizer: the owning form
/// of [`xml_ranked_events`] / [`xml_ranked_events_bounded`], with the
/// raw fast-forward ([`XmlEventReader::skip_subtree`]) wired through —
/// deleted subtrees are not tokenized at all.
pub struct XmlRankedEvents<'a> {
    reader: XmlEventReader<'a>,
    queue: VecDeque<TreeEvent>,
    bounded: bool,
    attrs: bool,
    error: Option<XmlError>,
    last: LastOpen,
    skipped_subtrees: u64,
}

impl<'a> XmlRankedEvents<'a> {
    /// Faithful symbol interning (trusted input).
    pub fn new(xml: &'a str) -> XmlRankedEvents<'a> {
        XmlRankedEvents {
            reader: xml_events(xml),
            queue: VecDeque::new(),
            bounded: false,
            attrs: false,
            error: None,
            last: LastOpen::Other,
            skipped_subtrees: 0,
        }
    }

    /// Bounded symbol resolution (serving paths): out-of-vocabulary
    /// names map to [`unknown_symbol`] instead of growing the interner.
    pub fn bounded(xml: &'a str) -> XmlRankedEvents<'a> {
        XmlRankedEvents {
            bounded: true,
            ..XmlRankedEvents::new(xml)
        }
    }

    /// Surface attributes in the ranked encoding (`DocFormat::XmlAttrs`):
    /// an element with attributes gains an `@attrs` **first child**,
    /// holding one `@name` node per attribute whose children are the
    /// whitespace-tokenized value (so transducer rules can finally see
    /// attributes — they address them like any other child subtree).
    /// Attribute-free elements encode exactly as without this option.
    pub fn attributes(mut self, on: bool) -> XmlRankedEvents<'a> {
        self.attrs = on;
        self
    }

    fn resolve(&self, name: &str) -> Symbol {
        if self.bounded {
            Symbol::lookup(name).unwrap_or_else(unknown_symbol)
        } else {
            Symbol::new(name)
        }
    }

    /// The tokenizer (or fast-forward) error, if one ended the stream.
    pub fn take_error(&mut self) -> Option<XmlError> {
        self.error.take()
    }

    /// Subtrees discarded via the fast path (observability and tests).
    pub fn skipped_subtrees(&self) -> u64 {
        self.skipped_subtrees
    }

    /// Drains the source into a ranked tree (the non-streaming eval
    /// modes; same mapping, same bounded/attrs configuration).
    pub fn collect_tree(mut self) -> Result<Tree, XmlError> {
        let mut events = Vec::new();
        while let Some(ev) = self.next_event() {
            events.push(ev);
        }
        if let Some(e) = self.take_error() {
            return Err(e);
        }
        let at = self.reader.byte_pos();
        tree_from_events(events).map_err(|e| XmlError {
            offset: at,
            message: e.to_string(),
        })
    }
}

impl TreeEventSource for XmlRankedEvents<'_> {
    fn next_event(&mut self) -> Option<TreeEvent> {
        if let Some(ev) = self.queue.pop_front() {
            self.last = match ev {
                TreeEvent::Open(_) => LastOpen::Token,
                TreeEvent::Close => LastOpen::Other,
            };
            return Some(ev);
        }
        if self.error.is_some() {
            return None;
        }
        loop {
            match self.reader.next()? {
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
                Ok(XmlEvent::Start { name, attrs }) => {
                    if self.attrs && !attrs.is_empty() {
                        // Queued behind the element's own Open, so a skip
                        // at the element level discards them with it.
                        self.queue
                            .push_back(TreeEvent::Open(self.resolve("@attrs")));
                        for a in &attrs {
                            let slot = self.resolve(&format!("@{}", a.name));
                            self.queue.push_back(TreeEvent::Open(slot));
                            for token in a.value.split_whitespace() {
                                let sym = self.resolve(token);
                                self.queue.push_back(TreeEvent::Open(sym));
                                self.queue.push_back(TreeEvent::Close);
                            }
                            self.queue.push_back(TreeEvent::Close);
                        }
                        self.queue.push_back(TreeEvent::Close);
                    }
                    self.last = LastOpen::Element;
                    return Some(TreeEvent::Open(self.resolve(name)));
                }
                Ok(XmlEvent::End(_)) => {
                    self.last = LastOpen::Other;
                    return Some(TreeEvent::Close);
                }
                Ok(XmlEvent::Text(text)) => {
                    for token in text.split_whitespace() {
                        let sym = self.resolve(token);
                        self.queue.push_back(TreeEvent::Open(sym));
                        self.queue.push_back(TreeEvent::Close);
                    }
                    if let Some(ev) = self.queue.pop_front() {
                        self.last = LastOpen::Token;
                        return Some(ev);
                    }
                }
            }
        }
    }

    fn skip_subtree(&mut self) -> bool {
        match self.last {
            LastOpen::Element => {
                // Fast-forward the raw reader; a structural error inside
                // the skipped region ends the stream like any tokenizer
                // error (the caller surfaces it). Queued events (the
                // element's own attribute block) belong to the skipped
                // subtree and are dropped with it.
                self.queue.clear();
                if let Err(e) = self.reader.skip_subtree() {
                    self.error = Some(e);
                }
                self.skipped_subtrees += 1;
                self.last = LastOpen::Other;
                true
            }
            LastOpen::Token => {
                // A queued Open (text token, or a node of an attribute
                // block): drain its balanced remainder from the queue —
                // one Close for a leaf token, a whole nested run for
                // `@attrs`/`@name` nodes.
                let mut depth = 1usize;
                while depth > 0 {
                    match self.queue.pop_front() {
                        Some(TreeEvent::Open(_)) => depth += 1,
                        Some(TreeEvent::Close) => depth -= 1,
                        None => break, // unreachable: queued runs are balanced
                    }
                }
                self.skipped_subtrees += 1;
                self.last = LastOpen::Other;
                true
            }
            LastOpen::Other => false,
        }
    }
}

/// Runs a compiled domain guard in lockstep with any
/// [`TreeEventSource`], cutting the stream at the first violation; the
/// skip fast path is forwarded only when the guard itself is skipping.
/// For a transducer's own domain guard the `∅`-skip state and the
/// evaluator's empty state set coincide, so every evaluator skip
/// forwards; a pipeline's *chain* guard can be stricter than the
/// composed machine executing it (it checks positions later stages
/// delete), so a skip the guard does not share is declined and the
/// events stream through the run instead. This is the engine's guarded
/// streaming front end; `xtt_typecheck::GuardedEvents` remains the
/// plain-iterator form.
pub struct GuardedSource<'g, S> {
    inner: S,
    run: DttaRun<'g>,
    violation: Option<TypeError>,
}

impl<'g, S: TreeEventSource> GuardedSource<'g, S> {
    pub fn new(guard: &'g CompiledDtta, inner: S) -> GuardedSource<'g, S> {
        GuardedSource {
            inner,
            run: guard.run(),
            violation: None,
        }
    }

    /// Takes the recorded violation out of the adaptor.
    pub fn take_violation(&mut self) -> Option<TypeError> {
        self.violation.take()
    }

    /// The wrapped source (e.g. to read its recorded tokenizer error).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TreeEventSource> TreeEventSource for GuardedSource<'_, S> {
    fn next_event(&mut self) -> Option<TreeEvent> {
        if self.violation.is_some() {
            return None;
        }
        let event = self.inner.next_event()?;
        match self.run.feed(event) {
            Ok(()) => Some(event),
            Err(violation) => {
                self.violation = Some(violation);
                None
            }
        }
    }

    fn skip_subtree(&mut self) -> bool {
        // Decline unless the guard entered a skip state at the Open it
        // just saw: a chain guard still inspects subtrees the executing
        // machine deletes, and must see their real events.
        if !self.run.in_skipped_subtree() || !self.inner.skip_subtree() {
            return false;
        }
        // One synthetic Close rebalances the skipping guard (cannot
        // violate).
        let _ = self.run.feed(TreeEvent::Close);
        true
    }
}

/// Failure of a *guarded* XML streaming evaluation. A violation wins
/// over a tokenizer error by construction: the guard cuts the stream at
/// the first violating node, so the tokenizer never reaches whatever
/// would have failed later.
#[derive(Debug)]
pub enum GuardedXmlError {
    /// The domain guard rejected the document (first violating node).
    Type(TypeError),
    /// The tokenizer failed before the guard saw a violation.
    Xml(XmlError),
}

/// Where the streaming evaluator's output events go.
///
/// Implementations receive the output tree's pre-order events exactly
/// once, in order. [`OutputSink::tree`] delivers a whole completed
/// subtree at the current position — the default replays its events, but
/// tree-building sinks (like [`TreeCollector`]) override it to graft the
/// subtree without a rebuild. Errors use [`io::Error`] so socket-backed
/// sinks (the serving path) surface write failures unchanged.
pub trait OutputSink {
    /// One pre-order event of the output tree.
    fn event(&mut self, ev: TreeEvent) -> io::Result<()>;

    /// A whole completed subtree at the current position (a buffered
    /// region's result). Equivalent to replaying `t.events()`.
    fn tree(&mut self, t: &Tree) -> io::Result<()> {
        for ev in t.events() {
            self.event(ev)?;
        }
        Ok(())
    }
}

impl<T: OutputSink + ?Sized> OutputSink for &mut T {
    fn event(&mut self, ev: TreeEvent) -> io::Result<()> {
        (**self).event(ev)
    }

    fn tree(&mut self, t: &Tree) -> io::Result<()> {
        (**self).tree(t)
    }
}

/// [`OutputSink`] that rebuilds the output tree — the adapter behind the
/// tree-returning evaluation API. Subtrees delivered via
/// [`OutputSink::tree`] are grafted by reference count, not rebuilt.
#[derive(Default)]
pub struct TreeCollector {
    stack: Vec<(Symbol, Vec<Tree>)>,
    done: Option<Tree>,
}

impl TreeCollector {
    pub fn new() -> TreeCollector {
        TreeCollector::default()
    }

    /// The collected tree, if a complete one was emitted.
    pub fn into_tree(self) -> Option<Tree> {
        if self.stack.is_empty() {
            self.done
        } else {
            None
        }
    }
}

impl OutputSink for TreeCollector {
    fn event(&mut self, ev: TreeEvent) -> io::Result<()> {
        match ev {
            TreeEvent::Open(sym) => self.stack.push((sym, Vec::new())),
            TreeEvent::Close => {
                let (sym, children) = self
                    .stack
                    .pop()
                    .expect("the evaluator emits balanced events");
                let t = Tree::new(sym, children);
                match self.stack.last_mut() {
                    Some((_, siblings)) => siblings.push(t),
                    None => self.done = Some(t),
                }
            }
        }
        Ok(())
    }

    fn tree(&mut self, t: &Tree) -> io::Result<()> {
        match self.stack.last_mut() {
            Some((_, siblings)) => siblings.push(t.clone()),
            None => self.done = Some(t.clone()),
        }
        Ok(())
    }
}

/// [`OutputSink`] over a closure — event taps for tests and benches.
pub struct FnSink<F: FnMut(TreeEvent)>(pub F);

impl<F: FnMut(TreeEvent)> OutputSink for FnSink<F> {
    fn event(&mut self, ev: TreeEvent) -> io::Result<()> {
        (self.0)(ev);
        Ok(())
    }
}

/// Emission statistics of one streaming run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EmitStats {
    /// Output events handed to the sink from the streaming (live) path —
    /// emitted the moment their prefix was committed, before the input
    /// was fully consumed.
    pub events_emitted_early: u64,
    /// High-water mark of *buffered* frames on the spine (frames inside
    /// permuting/copying regions, which must materialize their results).
    /// 0 on a fully order-preserving run.
    pub peak_buffered_frames: usize,
    /// Total output events delivered (subtree flushes count theirs).
    pub events_total: u64,
}

/// A live (streaming) frame: its rule body is executed as a coroutine.
/// The output prefix is emitted the moment it is committed; execution
/// parks at each `⟨q, x_i⟩` call until input child `i`'s own output has
/// streamed, then resumes. Only rules whose calls visit strictly
/// increasing children run live — see [`live_shape`].
struct LiveFrame {
    /// Resume point in the instruction arena.
    pos: u32,
    end: u32,
    /// Remaining child slots of output nodes opened but not yet closed.
    opens: Vec<u32>,
    /// The call whose subtree is being awaited: `(state, input child)`.
    pending: Option<(u16, u16)>,
    /// Index of the next input child to arrive.
    next_child: u32,
}

impl LiveFrame {
    fn new(start: u32, end: u32) -> LiveFrame {
        LiveFrame {
            pos: start,
            end,
            opens: Vec::new(),
            pending: None,
            next_child: 0,
        }
    }
}

enum FKind {
    /// Order-preserving region: output streams through the sink.
    Live(LiveFrame),
    /// Permuting/copying region (or multiple live states): per-child
    /// results are materialized and the rule executes at `Close`, as the
    /// pre-refactor evaluator always did.
    Buffered {
        /// For each already-closed child, its `(state, result)` pairs
        /// sorted by state.
        child_results: Vec<Vec<(u16, Tree)>>,
    },
}

/// One open input node on the spine.
struct SFrame {
    /// Dense input symbol of the node.
    sym: u32,
    /// Sorted live states processing this node (always a singleton for
    /// [`FKind::Live`]).
    states: Vec<u16>,
    kind: FKind,
}

/// The context above the root frame: the axiom, run live when it has
/// exactly one call (its prefix is then emitted before the first input
/// event), buffered otherwise.
enum Top {
    Live(LiveFrame),
    Buffered,
}

/// A rule body streams iff its calls visit strictly increasing children:
/// no copying (the same child twice) and no permutation (an earlier
/// child after a later one). Every output prefix is then committed when
/// execution reaches it — no later sibling can precede it.
fn live_shape(c: &CompiledDtop, start: u32, end: u32) -> bool {
    let mut last: i64 = -1;
    for instr in &c.code()[start as usize..end as usize] {
        if let Instr::Call { child, .. } = *instr {
            if i64::from(child) <= last {
                return false;
            }
            last = i64::from(child);
        }
    }
    true
}

fn call_count(c: &CompiledDtop, start: u32, end: u32) -> usize {
    c.code()[start as usize..end as usize]
        .iter()
        .filter(|i| matches!(i, Instr::Call { .. }))
        .count()
}

fn emit<S: OutputSink + ?Sized>(
    sink: &mut S,
    stats: &mut EmitStats,
    ev: TreeEvent,
) -> io::Result<()> {
    stats.events_emitted_early += 1;
    stats.events_total += 1;
    sink.event(ev)
}

/// Flushes a materialized subtree at the current output position.
fn flush_tree<S: OutputSink + ?Sized>(
    sink: &mut S,
    stats: &mut EmitStats,
    t: &Tree,
    early: bool,
) -> io::Result<()> {
    let events = 2 * t.size();
    stats.events_total += events;
    if early {
        stats.events_emitted_early += events;
    }
    sink.tree(t)
}

/// A completed subtree at the live frame's position: close every output
/// node this finishes.
fn close_completed<S: OutputSink + ?Sized>(
    lf: &mut LiveFrame,
    sink: &mut S,
    stats: &mut EmitStats,
) -> io::Result<()> {
    while let Some(last) = lf.opens.last_mut() {
        *last -= 1;
        if *last == 0 {
            lf.opens.pop();
            emit(sink, stats, TreeEvent::Close)?;
        } else {
            break;
        }
    }
    Ok(())
}

/// Executes a live frame's rule body from its resume point until the
/// next call (parking there) or the end of the body.
fn live_step<S: OutputSink + ?Sized>(
    c: &CompiledDtop,
    lf: &mut LiveFrame,
    sink: &mut S,
    stats: &mut EmitStats,
) -> io::Result<()> {
    let code = c.code();
    while lf.pos < lf.end {
        let instr = code[lf.pos as usize];
        lf.pos += 1;
        match instr {
            Instr::Out { sym, arity: 0 } => {
                emit(sink, stats, TreeEvent::Open(sym))?;
                emit(sink, stats, TreeEvent::Close)?;
                close_completed(lf, sink, stats)?;
            }
            Instr::Out { sym, arity } => {
                emit(sink, stats, TreeEvent::Open(sym))?;
                lf.opens.push(arity);
            }
            Instr::Call { q, child } => {
                lf.pending = Some((q, child));
                return Ok(());
            }
        }
    }
    Ok(())
}

/// A live-context child's output just completed: resume the enclosing
/// live frame (the parent on the spine, or the live axiom when the root
/// itself closed — in which case the run is done).
fn resume_after_child<S: OutputSink + ?Sized>(
    c: &CompiledDtop,
    frames: &mut [SFrame],
    top: &mut Top,
    sink: &mut S,
    stats: &mut EmitStats,
    done: &mut bool,
) -> io::Result<()> {
    let at_top = frames.is_empty();
    let lf = match frames.last_mut() {
        Some(SFrame {
            kind: FKind::Live(lf),
            ..
        }) => lf,
        Some(_) => unreachable!("buffered parents collect results, they are not resumed"),
        None => match top {
            Top::Live(lf) => lf,
            Top::Buffered => unreachable!("buffered top collects the root result"),
        },
    };
    debug_assert!(lf.pending.is_some());
    lf.pending = None;
    close_completed(lf, sink, stats)?;
    live_step(c, lf, sink, stats)?;
    if at_top {
        // The axiom has exactly one call, so it now ran to completion.
        debug_assert!(lf.pending.is_none());
        *done = true;
    }
    Ok(())
}

/// What a newly opened input node is to its enclosing context.
enum Ctx {
    /// The pending call child of a live context: evaluate in this state.
    Call(u16),
    /// A live context's uncalled child: its subtree is deleted.
    Skip,
    /// A buffered context: the derived live state set.
    States(Vec<u16>),
}

/// What a [`StreamRun`] asks of its driver after one input event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feed {
    /// Keep feeding events.
    More,
    /// The event opened a subtree no state inspects. The run will count
    /// it out event by event — unless the driver can fast-forward its
    /// source past the subtree, in which case it calls
    /// [`StreamRun::fast_forwarded`] and resumes after the matching
    /// `Close`.
    SkipOpen,
    /// The input is outside the domain (or not exactly one well-nested
    /// tree). The run is dead; every further event returns this too.
    Rejected,
    /// The output is complete. Any further event rejects the run (the
    /// stream would not be exactly one tree).
    Done,
}

/// One incremental streaming evaluation: the push-driven core behind
/// [`StreamEvaluator::eval_streaming`], factored out so a driver that
/// *receives* events — a pipeline stage fed by an upstream evaluator's
/// committed output — can run the same coroutine machinery without
/// owning a pull loop. Feed pre-order input events one at a time;
/// committed output prefixes flow to the sink the moment they commit.
pub struct StreamRun {
    frames: Vec<SFrame>,
    /// Scratch for rule execution (see [`StreamRun::exec_range`]).
    exec_vals: Vec<Tree>,
    exec_frames: Vec<(Symbol, u32, u32)>,
    states_scratch: Vec<u16>,
    stats: EmitStats,
    buffered: usize,
    skip_depth: usize,
    root_skipped: bool,
    root_seen: bool,
    done: bool,
    rejected: bool,
    top: Top,
}

impl Default for StreamRun {
    fn default() -> StreamRun {
        StreamRun {
            frames: Vec::new(),
            exec_vals: Vec::new(),
            exec_frames: Vec::new(),
            states_scratch: Vec::new(),
            stats: EmitStats::default(),
            buffered: 0,
            skip_depth: 0,
            root_skipped: false,
            root_seen: false,
            done: false,
            rejected: false,
            top: Top::Buffered,
        }
    }
}

impl StreamRun {
    pub fn new() -> StreamRun {
        StreamRun::default()
    }

    /// Resets the run for a fresh input and executes the axiom's
    /// committed prefix (emitted before the first input event when the
    /// axiom is live).
    pub fn start<S: OutputSink + ?Sized>(
        &mut self,
        c: &CompiledDtop,
        sink: &mut S,
    ) -> io::Result<()> {
        self.frames.clear();
        self.stats = EmitStats::default();
        self.buffered = 0;
        self.skip_depth = 0;
        self.root_skipped = false;
        self.root_seen = false;
        self.done = false;
        self.rejected = false;
        let (ax_start, ax_end) = c.axiom_range();
        self.top = if call_count(c, ax_start, ax_end) == 1 {
            // Exactly one call (necessarily on the root): the axiom's
            // prefix is committed before the first input event arrives.
            let mut lf = LiveFrame::new(ax_start, ax_end);
            live_step(c, &mut lf, sink, &mut self.stats)?;
            Top::Live(lf)
        } else {
            // A constant axiom (emitted at the end, preserving the
            // pre-streaming behavior on malformed input) or one that
            // copies the root.
            Top::Buffered
        };
        Ok(())
    }

    fn reject(&mut self) -> io::Result<Feed> {
        self.rejected = true;
        Ok(Feed::Rejected)
    }

    /// Feeds one pre-order input event. Must be called between
    /// [`StreamRun::start`] and [`StreamRun::finish`] with the same
    /// compiled dtop and sink.
    pub fn feed<S: OutputSink + ?Sized>(
        &mut self,
        c: &CompiledDtop,
        event: TreeEvent,
        sink: &mut S,
    ) -> io::Result<Feed> {
        if self.rejected {
            return Ok(Feed::Rejected);
        }
        if self.done {
            return self.reject(); // events after the root closed
        }
        if self.skip_depth > 0 {
            match event {
                TreeEvent::Open(_) => self.skip_depth += 1,
                TreeEvent::Close => self.skip_depth -= 1,
            }
            return Ok(Feed::More);
        }
        match event {
            TreeEvent::Open(sym) => {
                let ctx = match self.frames.last_mut() {
                    Some(parent) => match &mut parent.kind {
                        FKind::Live(lf) => {
                            let i = lf.next_child;
                            lf.next_child += 1;
                            match lf.pending {
                                Some((q, child)) if u32::from(child) == i => Ctx::Call(q),
                                _ => Ctx::Skip,
                            }
                        }
                        FKind::Buffered { child_results } => {
                            let child = child_results.len();
                            c.states_for_child(
                                &parent.states,
                                parent.sym,
                                child,
                                &mut self.states_scratch,
                            );
                            Ctx::States(std::mem::take(&mut self.states_scratch))
                        }
                    },
                    None => {
                        if self.root_seen || self.root_skipped {
                            return self.reject(); // more than one root
                        }
                        self.root_seen = true;
                        match &self.top {
                            Top::Live(lf) => match lf.pending {
                                Some((q, 0)) => Ctx::Call(q),
                                _ => Ctx::Skip,
                            },
                            Top::Buffered => Ctx::States(c.axiom_states().to_vec()),
                        }
                    }
                };
                match ctx {
                    Ctx::Skip => {
                        // A live context calls nothing on this child:
                        // deleted subtree.
                        self.skip_depth = 1;
                        return Ok(Feed::SkipOpen);
                    }
                    Ctx::States(states) if states.is_empty() => {
                        // Deleted subtree (or a constant axiom): no
                        // state ever inspects it — skip without
                        // building it, and without tokenizing it when
                        // the source can fast-forward.
                        match self.frames.last_mut() {
                            Some(parent) => match &mut parent.kind {
                                FKind::Buffered { child_results } => child_results.push(Vec::new()),
                                FKind::Live(_) => {
                                    unreachable!("live parents skip without deriving states")
                                }
                            },
                            None => self.root_skipped = true,
                        }
                        self.skip_depth = 1;
                        return Ok(Feed::SkipOpen);
                    }
                    Ctx::Call(q) => {
                        let dense = c.dense_sym(sym);
                        // Undefined as soon as the live state lacks a rule.
                        let Some((start, end)) = c.rule_range(q, dense) else {
                            return self.reject();
                        };
                        let kind = if live_shape(c, start, end) {
                            let mut lf = LiveFrame::new(start, end);
                            live_step(c, &mut lf, sink, &mut self.stats)?;
                            FKind::Live(lf)
                        } else {
                            self.buffered += 1;
                            self.stats.peak_buffered_frames =
                                self.stats.peak_buffered_frames.max(self.buffered);
                            FKind::Buffered {
                                child_results: Vec::new(),
                            }
                        };
                        self.frames.push(SFrame {
                            sym: dense,
                            states: vec![q],
                            kind,
                        });
                    }
                    Ctx::States(states) => {
                        let dense = c.dense_sym(sym);
                        // Undefined as soon as any live state lacks a rule.
                        if states.iter().any(|&q| c.rule_range(q, dense).is_none()) {
                            return self.reject();
                        }
                        self.buffered += 1;
                        self.stats.peak_buffered_frames =
                            self.stats.peak_buffered_frames.max(self.buffered);
                        self.frames.push(SFrame {
                            sym: dense,
                            states,
                            kind: FKind::Buffered {
                                child_results: Vec::new(),
                            },
                        });
                    }
                }
            }
            TreeEvent::Close => {
                let Some(frame) = self.frames.pop() else {
                    return self.reject(); // unbalanced close
                };
                match frame.kind {
                    FKind::Live(lf) => {
                        if lf.pending.is_some() || lf.pos != lf.end {
                            return self.reject(); // call to a child the node does not have
                        }
                        debug_assert!(lf.opens.is_empty());
                        resume_after_child(
                            c,
                            &mut self.frames,
                            &mut self.top,
                            sink,
                            &mut self.stats,
                            &mut self.done,
                        )?;
                    }
                    FKind::Buffered { child_results } => {
                        self.buffered -= 1;
                        let mut results: Vec<(u16, Tree)> = Vec::with_capacity(frame.states.len());
                        for &q in &frame.states {
                            let (start, end) = c
                                .rule_range(q, frame.sym)
                                .expect("checked when the node opened");
                            let Some(v) = self.exec_range(c, start, end, &|q2, child| {
                                lookup(child_results.get(child)?, q2)
                            }) else {
                                return self.reject();
                            };
                            results.push((q, v));
                        }
                        // Where does the materialized result go?
                        let to_live_parent = match self.frames.last_mut() {
                            Some(parent) => match &mut parent.kind {
                                FKind::Buffered { child_results } => {
                                    child_results.push(std::mem::take(&mut results));
                                    false
                                }
                                FKind::Live(_) => true,
                            },
                            None => match &self.top {
                                Top::Live(_) => true,
                                Top::Buffered => {
                                    // Root closed: splice the per-state
                                    // results into the axiom.
                                    let (ax_start, ax_end) = c.axiom_range();
                                    let Some(out) =
                                        self.exec_range(c, ax_start, ax_end, &|q, child| {
                                            if child == 0 {
                                                lookup(&results, q)
                                            } else {
                                                None
                                            }
                                        })
                                    else {
                                        return self.reject();
                                    };
                                    flush_tree(sink, &mut self.stats, &out, false)?;
                                    self.done = true;
                                    false
                                }
                            },
                        };
                        if to_live_parent {
                            // This frame was the pending call child of
                            // a live context: flush its single result
                            // and resume the coroutine.
                            let (_, t) = &results[0];
                            flush_tree(sink, &mut self.stats, t, true)?;
                            resume_after_child(
                                c,
                                &mut self.frames,
                                &mut self.top,
                                sink,
                                &mut self.stats,
                                &mut self.done,
                            )?;
                        }
                    }
                }
            }
        }
        Ok(if self.done { Feed::Done } else { Feed::More })
    }

    /// The driver fast-forwarded its source past the subtree whose
    /// `Open` just returned [`Feed::SkipOpen`] (descendants *and* the
    /// matching `Close` consumed at the source).
    pub fn fast_forwarded(&mut self) {
        debug_assert_eq!(self.skip_depth, 1);
        self.skip_depth = 0;
    }

    /// Ends the input stream: emits a constant axiom if the whole input
    /// was deleted, and delivers the final verdict — `Some(stats)` on a
    /// completed run, `None` if the input was rejected or incomplete.
    pub fn finish<S: OutputSink + ?Sized>(
        &mut self,
        c: &CompiledDtop,
        sink: &mut S,
    ) -> io::Result<Option<EmitStats>> {
        if self.rejected {
            return Ok(None);
        }
        if self.done {
            return Ok(Some(self.stats));
        }
        if self.root_skipped && self.skip_depth == 0 {
            // The whole input was deleted: the axiom calls no state.
            let (ax_start, ax_end) = c.axiom_range();
            if let Some(t) = self.exec_range(c, ax_start, ax_end, &|_, _| None) {
                flush_tree(sink, &mut self.stats, &t, false)?;
                self.done = true;
                return Ok(Some(self.stats));
            }
        }
        self.rejected = true;
        Ok(None) // empty or unterminated stream
    }

    /// Emission statistics so far (complete once the run is done).
    pub fn stats(&self) -> EmitStats {
        self.stats
    }
}

/// Reusable streaming evaluator; create once per worker thread. Owns a
/// [`StreamRun`] and drives it from a [`TreeEventSource`] pull loop.
#[derive(Default)]
pub struct StreamEvaluator {
    run: StreamRun,
}

impl StreamEvaluator {
    pub fn new() -> StreamEvaluator {
        StreamEvaluator::default()
    }

    /// Evaluates `⟦M⟧` over a pre-order event stream. Returns `None` when
    /// the input is outside the domain **or** the stream is not exactly
    /// one well-nested tree.
    pub fn eval<I>(&mut self, c: &CompiledDtop, events: I) -> Option<Tree>
    where
        I: IntoIterator<Item = TreeEvent>,
    {
        self.eval_source(c, &mut IterEvents(events.into_iter()))
    }

    /// [`StreamEvaluator::eval`] over a [`TreeEventSource`]: when a
    /// subtree is deleted by the run (empty live state set), the source's
    /// skip fast path is taken — over XML this fast-forwards the raw
    /// tokenizer, so deleted subtrees are never tokenized, let alone
    /// built.
    pub fn eval_source(
        &mut self,
        c: &CompiledDtop,
        source: &mut impl TreeEventSource,
    ) -> Option<Tree> {
        let mut sink = TreeCollector::new();
        match self.eval_streaming(c, source, &mut sink) {
            Ok(Some(_)) => sink.into_tree(),
            _ => None,
        }
    }

    /// Event-driven evaluation: output flows to `sink` as [`TreeEvent`]s,
    /// with `Open`s emitted the moment their prefix is committed.
    ///
    /// Rule bodies whose calls visit strictly increasing input children
    /// (order-preserving, copy-free regions) execute as coroutines: the
    /// output prefix streams immediately, execution parks at each call
    /// until that child's own output has streamed, then resumes.
    /// Permuting/copying regions — and nodes processed by more than one
    /// state — fall back to the buffered evaluation and flush their
    /// materialized result as one subtree. On a fully order-preserving
    /// run nothing is buffered: output state is O(depth).
    ///
    /// Returns `Ok(Some(stats))` on success, `Ok(None)` when the input is
    /// outside the domain or not exactly one well-nested tree (the sink
    /// may have received a partial prefix by then — inherent to
    /// streaming), and `Err` only when the sink fails.
    pub fn eval_streaming<S: OutputSink + ?Sized>(
        &mut self,
        c: &CompiledDtop,
        source: &mut impl TreeEventSource,
        sink: &mut S,
    ) -> io::Result<Option<EmitStats>> {
        self.run.start(c, sink)?;
        while let Some(event) = source.next_event() {
            match self.run.feed(c, event, sink)? {
                Feed::More | Feed::Done => {}
                Feed::SkipOpen => {
                    if source.skip_subtree() {
                        self.run.fast_forwarded();
                    }
                }
                Feed::Rejected => return Ok(None),
            }
        }
        self.run.finish(c, sink)
    }

    /// Convenience: stream a materialized tree (used by benches and the
    /// differential tests to exercise exactly the streaming code path).
    pub fn eval_tree(&mut self, c: &CompiledDtop, input: &Tree) -> Option<Tree> {
        self.eval(c, input.events())
    }

    /// Transforms an XML document without building the input tree: XML
    /// events are mapped to ranked-tree events
    /// ([`xml_ranked_events_bounded`] — document text never grows the
    /// symbol interner) and fed straight into the streaming run.
    ///
    /// `Err` is a tokenizer error; `Ok(None)` means the (well-formed)
    /// document is outside the transduction's domain.
    pub fn eval_xml(&mut self, c: &CompiledDtop, xml: &str) -> Result<Option<Tree>, XmlError> {
        let mut source = XmlRankedEvents::bounded(xml);
        let result = self.eval_source(c, &mut source);
        match source.take_error() {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }

    /// [`StreamEvaluator::eval_xml`] with a domain guard in lockstep: the
    /// guard sees every event first and cuts the stream at the first
    /// violation, so a rejected document's tail is never tokenized.
    /// `Ok(None)` means the (well-formed, guard-accepted) document is
    /// outside the domain for a non-guard reason (e.g. not exactly one
    /// tree). This is the single implementation behind the engine's
    /// guarded streaming mode and the E11 benchmarks.
    pub fn eval_xml_guarded(
        &mut self,
        c: &CompiledDtop,
        guard: &CompiledDtta,
        xml: &str,
    ) -> Result<Option<Tree>, GuardedXmlError> {
        let mut source = GuardedSource::new(guard, XmlRankedEvents::bounded(xml));
        let result = self.eval_source(c, &mut source);
        if let Some(violation) = source.take_violation() {
            return Err(GuardedXmlError::Type(violation));
        }
        match source.into_inner().take_error() {
            Some(e) => Err(GuardedXmlError::Xml(e)),
            None => Ok(result),
        }
    }
}

impl StreamRun {
    /// Executes the instruction range `[start, end)` with `resolve`
    /// supplying the value of every `⟨q, x_child⟩` call. Iterative; reuses
    /// scratch stacks.
    fn exec_range(
        &mut self,
        c: &CompiledDtop,
        start: u32,
        end: u32,
        resolve: &dyn Fn(u16, usize) -> Option<Tree>,
    ) -> Option<Tree> {
        self.exec_vals.clear();
        self.exec_frames.clear();
        for instr in &c.code()[start as usize..end as usize] {
            match *instr {
                Instr::Out { sym, arity: 0 } => self.exec_vals.push(Tree::leaf(sym)),
                Instr::Out { sym, arity } => {
                    self.exec_frames
                        .push((sym, self.exec_vals.len() as u32, arity))
                }
                Instr::Call { q, child } => self.exec_vals.push(resolve(q, usize::from(child))?),
            }
            while let Some(&(sym, base, arity)) = self.exec_frames.last() {
                if self.exec_vals.len() as u32 != base + arity {
                    break;
                }
                self.exec_frames.pop();
                let children = self.exec_vals.split_off(base as usize);
                self.exec_vals.push(Tree::new(sym, children));
            }
        }
        debug_assert!(self.exec_frames.is_empty());
        debug_assert_eq!(self.exec_vals.len(), 1);
        self.exec_vals.pop()
    }
}

/// [`OutputSink`] that queues events — the relay between chained
/// pipeline stages.
struct QueueSink<'a>(&'a mut VecDeque<TreeEvent>);

impl OutputSink for QueueSink<'_> {
    fn event(&mut self, ev: TreeEvent) -> io::Result<()> {
        self.0.push_back(ev);
        Ok(())
    }
}

/// Chained streaming evaluation of a pipeline τₙ ∘ … ∘ τ₁: stage `i`'s
/// committed output events feed stage `i+1`'s [`StreamRun`] through a
/// relay queue, drained downstream-first so intermediate output is
/// materialized only where a single stage would buffer anyway
/// (permuting/copying regions). Stage 1 is driven from the real source
/// and keeps its skip fast path; the final stage writes to the caller's
/// sink.
///
/// Rejection anywhere rejects the chain (`Ok(None)`), exactly like
/// evaluating the composed transducer: stage `i` rejects at the first
/// event proving its input — stage `i-1`'s committed output — outside
/// its domain.
#[derive(Default)]
pub struct ChainedEvaluator {
    runs: Vec<StreamRun>,
    queues: Vec<VecDeque<TreeEvent>>,
}

impl ChainedEvaluator {
    pub fn new() -> ChainedEvaluator {
        ChainedEvaluator::default()
    }

    /// Per-stage emission statistics of the most recent run (complete
    /// after a successful [`ChainedEvaluator::eval_streaming`]).
    pub fn stage_stats(&self) -> impl Iterator<Item = EmitStats> + '_ {
        self.runs.iter().map(StreamRun::stats)
    }

    /// Drains the relay queues, downstream-first (so queued events move
    /// toward the sink before more are produced); `false` = some stage
    /// rejected its input.
    fn pump<S: OutputSink + ?Sized>(
        &mut self,
        stages: &[&CompiledDtop],
        sink: &mut S,
    ) -> io::Result<bool> {
        loop {
            let Some(i) = (0..self.queues.len()).rfind(|&i| !self.queues[i].is_empty()) else {
                return Ok(true);
            };
            let ev = self.queues[i].pop_front().expect("checked nonempty");
            let stage = i + 1;
            let verdict = if stage + 1 == stages.len() {
                self.runs[stage].feed(stages[stage], ev, sink)?
            } else {
                let mut relay = QueueSink(&mut self.queues[stage]);
                self.runs[stage].feed(stages[stage], ev, &mut relay)?
            };
            if verdict == Feed::Rejected {
                return Ok(false);
            }
        }
    }

    /// Streams `source` through every stage (`stages[0]` first). Returns
    /// the **final** stage's emission stats on success (per-stage stats
    /// via [`ChainedEvaluator::stage_stats`]), `Ok(None)` when any stage
    /// rejects, `Err` only when the sink fails.
    pub fn eval_streaming<S: OutputSink + ?Sized>(
        &mut self,
        stages: &[&CompiledDtop],
        source: &mut impl TreeEventSource,
        sink: &mut S,
    ) -> io::Result<Option<EmitStats>> {
        assert!(!stages.is_empty(), "a pipeline has at least one stage");
        let n = stages.len();
        self.runs.resize_with(n, StreamRun::new);
        self.runs.truncate(n);
        self.queues.resize_with(n - 1, VecDeque::new);
        self.queues.truncate(n - 1);
        for q in &mut self.queues {
            q.clear();
        }
        // Start downstream-first, pumping between: every consumer is
        // live before an upstream axiom prefix reaches it.
        for i in (0..n).rev() {
            if i + 1 == n {
                self.runs[i].start(stages[i], sink)?;
            } else {
                let mut relay = QueueSink(&mut self.queues[i]);
                self.runs[i].start(stages[i], &mut relay)?;
            }
            if !self.pump(stages, sink)? {
                return Ok(None);
            }
        }
        while let Some(event) = source.next_event() {
            let verdict = if n == 1 {
                self.runs[0].feed(stages[0], event, sink)?
            } else {
                let mut relay = QueueSink(&mut self.queues[0]);
                self.runs[0].feed(stages[0], event, &mut relay)?
            };
            match verdict {
                Feed::Rejected => return Ok(None),
                Feed::SkipOpen => {
                    if source.skip_subtree() {
                        self.runs[0].fast_forwarded();
                    }
                }
                Feed::More | Feed::Done => {}
            }
            if !self.pump(stages, sink)? {
                return Ok(None);
            }
        }
        // Finish upstream-first, pumping between: stage i's trailing
        // output (a constant axiom, a whole-input deletion) cascades
        // before stage i+1's own end-of-stream verdict.
        for i in 0..n {
            let fin = if i + 1 == n {
                self.runs[i].finish(stages[i], sink)?
            } else {
                let mut relay = QueueSink(&mut self.queues[i]);
                self.runs[i].finish(stages[i], &mut relay)?
            };
            if fin.is_none() {
                return Ok(None);
            }
            if !self.pump(stages, sink)? {
                return Ok(None);
            }
        }
        Ok(Some(self.runs[n - 1].stats()))
    }
}

fn lookup(results: &[(u16, Tree)], q: u16) -> Option<Tree> {
    results
        .binary_search_by_key(&q, |&(s, _)| s)
        .ok()
        .map(|i| results[i].1.clone())
}

/// Iterator form of [`XmlRankedEvents`] (same mapping, same source;
/// fused after the first error).
struct RankedEventsIter<'a>(XmlRankedEvents<'a>);

impl Iterator for RankedEventsIter<'_> {
    type Item = Result<TreeEvent, XmlError>;

    fn next(&mut self) -> Option<Result<TreeEvent, XmlError>> {
        match self.0.next_event() {
            Some(event) => Some(Ok(event)),
            None => self.0.take_error().map(Err),
        }
    }
}

/// The sentinel every out-of-vocabulary name maps to under the bounded
/// adapters. Starts with a control character, so no declarable alphabet
/// symbol can collide with it.
pub fn unknown_symbol() -> Symbol {
    Symbol::new("\u{1}xtt:unknown")
}

/// Maps an XML event stream to ranked-tree events: elements become
/// symbols of their child count; character data is whitespace-tokenized,
/// one leaf symbol per token (data-centric documents — the only kind the
/// paper's encodings produce — have single-token pcdata, and tokenizing
/// makes adjacent rank-0 symbols like the fc/ns `#` expressible as
/// `# #`). Comments/PIs were already skipped by the lenient tokenizer;
/// attributes are parsed but not surfaced here — use
/// [`XmlRankedEvents::attributes`] (`DocFormat::XmlAttrs`) to map them
/// into the encoding as an `@attrs` first child.
///
/// Every name is **interned** into the process-global symbol table; use
/// this for trusted input only. The serving paths use
/// [`xml_ranked_events_bounded`], which never grows the table.
pub fn xml_ranked_events(xml: &str) -> impl Iterator<Item = Result<TreeEvent, XmlError>> + '_ {
    RankedEventsIter(XmlRankedEvents::new(xml))
}

/// Like [`xml_ranked_events`], but safe for untrusted traffic: names are
/// resolved with [`Symbol::lookup`] and anything never interned before
/// (i.e. not in any transducer alphabet) becomes [`unknown_symbol`].
/// Evaluation is unaffected — an out-of-vocabulary symbol has no rules
/// either way — but a long-running server's memory no longer grows with
/// the input vocabulary.
pub fn xml_ranked_events_bounded(
    xml: &str,
) -> impl Iterator<Item = Result<TreeEvent, XmlError>> + '_ {
    RankedEventsIter(XmlRankedEvents::bounded(xml))
}

/// Builds a ranked tree from an XML document via [`xml_ranked_events`]
/// (faithful symbols; trusted input).
pub fn ranked_tree_from_xml(xml: &str) -> Result<Tree, XmlError> {
    XmlRankedEvents::new(xml).collect_tree()
}

/// Builds a ranked tree via [`xml_ranked_events_bounded`] — what the
/// engine's non-streaming XML paths use, so serving never interns
/// document text.
pub fn ranked_tree_from_xml_bounded(xml: &str) -> Result<Tree, XmlError> {
    XmlRankedEvents::bounded(xml).collect_tree()
}

/// Serializes a ranked tree as XML: symbols with XML-name labels become
/// elements, other leaves (like the paper's `#` or pcdata values) become
/// whitespace-separated text tokens. Inverse of [`ranked_tree_from_xml`]
/// on its image.
///
/// Inner symbols must be XML names (alphabets like the §10 library's
/// `B*` groups are term-syntax-only; serve those in `DocFormat::Term`).
pub fn tree_to_xml(t: &Tree) -> String {
    let mut out = String::new();
    write_ranked(t, &mut out);
    out
}

fn is_text_leaf(t: &Tree) -> bool {
    t.is_leaf() && !is_xml_name(t.symbol().name())
}

/// True iff [`tree_to_xml`] produces well-formed XML for this tree:
/// every inner symbol is a valid XML element name.
pub fn xml_serializable(t: &Tree) -> bool {
    t.preorder()
        .all(|n| n.is_leaf() || is_xml_name(n.symbol().name()))
}

fn write_ranked(t: &Tree, out: &mut String) {
    let name = t.symbol().name();
    if is_text_leaf(t) {
        out.push_str(&escape_text(name));
        return;
    }
    if t.is_leaf() {
        out.push('<');
        out.push_str(name);
        out.push_str("/>");
        return;
    }
    out.push('<');
    out.push_str(name);
    out.push('>');
    for (i, c) in t.children().iter().enumerate() {
        if i > 0 && is_text_leaf(c) && is_text_leaf(&t.children()[i - 1]) {
            out.push(' '); // keep adjacent text leaves distinct tokens
        }
        write_ranked(c, out);
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

/// [`xml_serializable`] for `DocFormat::XmlAttrs` trees: an `@attrs`
/// first child (one `@name` slot per attribute, leaf children = value
/// tokens) decodes back to attribute syntax, so its `@`-prefixed slots
/// are allowed where plain serialization rejects them.
pub fn xml_serializable_attrs(t: &Tree) -> bool {
    if t.is_leaf() {
        return true; // text token or empty element either way
    }
    if !is_xml_name(t.symbol().name()) {
        return false;
    }
    let mut children = t.children();
    if let Some(first) = children.first() {
        if first.symbol().name() == "@attrs" {
            let slots_ok = first.children().iter().all(|slot| {
                slot.symbol()
                    .name()
                    .strip_prefix('@')
                    .is_some_and(is_xml_name)
                    && slot.children().iter().all(Tree::is_leaf)
            });
            if !slots_ok {
                return false;
            }
            children = &children[1..];
        }
    }
    children.iter().all(xml_serializable_attrs)
}

/// [`tree_to_xml`] for `DocFormat::XmlAttrs` trees: an element's
/// `@attrs` first child is written back as real `name="value"`
/// attributes (value tokens space-joined), inverse of
/// [`XmlRankedEvents::attributes`] on its image. The caller checks
/// [`xml_serializable_attrs`] first.
pub fn tree_to_xml_attrs(t: &Tree) -> String {
    let mut out = String::new();
    write_ranked_attrs(t, &mut out);
    out
}

fn write_ranked_attrs(t: &Tree, out: &mut String) {
    let name = t.symbol().name();
    if is_text_leaf(t) {
        out.push_str(&escape_text(name));
        return;
    }
    let mut content = t.children();
    out.push('<');
    out.push_str(name);
    if let Some(first) = content.first() {
        if first.symbol().name() == "@attrs" {
            for slot in first.children() {
                let attr = slot.symbol().name().strip_prefix('@').unwrap_or_default();
                let value = slot
                    .children()
                    .iter()
                    .map(|tok| tok.symbol().name())
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push(' ');
                out.push_str(attr);
                out.push_str("=\"");
                out.push_str(&escape_attr(&value));
                out.push('"');
            }
            content = &content[1..];
        }
    }
    if content.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for (i, c) in content.iter().enumerate() {
        if i > 0 && is_text_leaf(c) && is_text_leaf(&content[i - 1]) {
            out.push(' ');
        }
        write_ranked_attrs(c, out);
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

pub(crate) fn is_xml_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
}

pub(crate) fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn escape_attr(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use xtt_transducer::{eval as walk_eval, examples};
    use xtt_trees::{gen::enumerate_trees, parse_tree};

    #[test]
    fn streaming_agrees_with_tree_walk() {
        for fix in [
            examples::flip(),
            examples::library(),
            examples::monadic_to_binary(),
            examples::flip_k(2),
        ] {
            let c = compile(&fix.dtop).unwrap();
            let mut ev = StreamEvaluator::new();
            for t in enumerate_trees(fix.dtop.input(), 120, 9) {
                assert_eq!(ev.eval_tree(&c, &t), walk_eval(&fix.dtop, &t), "on {t}");
            }
        }
    }

    #[test]
    fn deleted_subtrees_are_skipped_not_inspected() {
        // (q4, a) deletes its first subtree; streaming must accept garbage
        // there exactly like the tree-walk evaluator does.
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        let t = parse_tree("root(a(b(zzz(#,#),#),#),#)").unwrap();
        assert_eq!(
            ev.eval_tree(&c, &t).unwrap().to_string(),
            walk_eval(&fix.dtop, &t).unwrap().to_string()
        );
    }

    #[test]
    fn constant_axiom_streams() {
        let c = compile(&examples::constant_m1().dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        let t = parse_tree("f(a,f(a,a))").unwrap();
        assert_eq!(ev.eval_tree(&c, &t).unwrap().to_string(), "b");
    }

    #[test]
    fn malformed_streams_are_undefined() {
        let c = compile(&examples::flip().dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        use TreeEvent::*;
        let root = Symbol::new("root");
        let hash = Symbol::new("#");
        assert_eq!(ev.eval(&c, []), None);
        assert_eq!(ev.eval(&c, [Open(root)]), None);
        assert_eq!(ev.eval(&c, [Close]), None);
        // trailing events after the root closed: not exactly one tree
        let mut two_roots: Vec<TreeEvent> = parse_tree("root(#,#)").unwrap().events().collect();
        let base = two_roots.clone();
        two_roots.extend([Open(hash), Close]);
        assert_eq!(ev.eval(&c, base), Some(parse_tree("root(#,#)").unwrap()));
        assert_eq!(ev.eval(&c, two_roots), None);
    }

    #[test]
    fn bounded_adapter_never_grows_the_interner() {
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        unknown_symbol(); // pre-intern the sentinel itself
                          // Garbage pcdata sits in the first child of an `a` node, which
                          // (q4, a) deletes; the walk evaluator accepts it, and so must the
                          // bounded streaming path — via the sentinel, without interning.
        let xml = "<root><a>never-interned-token-1<a># #</a></a><b># #</b></root>";
        let out = ev.eval_xml(&c, xml).unwrap().unwrap();
        assert_eq!(out.to_string(), "root(b(#,#),a(#,a(#,#)))");
        assert_eq!(Symbol::lookup("never-interned-token-1"), None);
        // same through the non-streaming bounded tree builder
        let t = ranked_tree_from_xml_bounded(xml).unwrap();
        assert_eq!(
            xtt_transducer::eval(&fix.dtop, &t).unwrap().to_string(),
            "root(b(#,#),a(#,a(#,#)))"
        );
        assert_eq!(Symbol::lookup("never-interned-token-1"), None);
    }

    #[test]
    fn xml_roundtrip_through_engine() {
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        // fc/ns-encoded lists in XML form: '#' leaves are text tokens.
        let xml = "<root><a># <a># #</a></a><b># <b># #</b></b></root>";
        let t = ranked_tree_from_xml(xml).unwrap();
        assert_eq!(t.to_string(), "root(a(#,a(#,#)),b(#,b(#,#)))");
        let streamed = ev.eval_xml(&c, xml).unwrap().unwrap();
        assert_eq!(streamed, walk_eval(&fix.dtop, &t).unwrap());
        // and the output serializes back to parseable XML
        let xml_out = tree_to_xml(&streamed);
        assert_eq!(ranked_tree_from_xml(&xml_out).unwrap(), streamed);
    }

    #[test]
    fn deleted_subtrees_are_not_tokenized() {
        // (q4, a) deletes the first subtree of every `a` node: the
        // streaming XML path must fast-forward the raw reader past it
        // instead of tokenizing it — observable via the skip counter and
        // via junk that only a tokenizer would choke on politely
        // (attributes, comments) sailing through untokenized.
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        let xml = "<root><a><junk depth=\"3\"><x><!-- never parsed --></x></junk><a># #</a></a><b># #</b></root>";
        let mut source = XmlRankedEvents::bounded(xml);
        let out = ev.eval_source(&c, &mut source).unwrap();
        assert_eq!(out.to_string(), "root(b(#,#),a(#,a(#,#)))");
        assert!(source.skipped_subtrees() >= 1, "fast path must engage");
        assert_eq!(Symbol::lookup("junk"), None, "skipped names never interned");
        // The guarded path fast-forwards too (guard ∅-skip ≡ empty state
        // set), with identical output.
        let guard = xtt_typecheck::domain_guard(&fix.dtop).unwrap();
        let guarded = ev.eval_xml_guarded(&c, &guard, xml).unwrap().unwrap();
        assert_eq!(guarded, out);
    }

    #[test]
    fn skip_fast_path_still_surfaces_structural_errors() {
        // Mismatched tags inside a *deleted* subtree are still XML
        // errors — the fast-forward enforces structure, exactly like the
        // event-counting path did.
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        let bad = "<root><a><junk><open></junk></a><b># #</b></root>";
        assert!(ev.eval_xml(&c, bad).is_err());
    }

    #[test]
    fn attributes_map_into_the_ranked_encoding() {
        let xml = "<root a=\"1 2\" b=\"x\"><c k=\"v\"/></root>";
        let t = XmlRankedEvents::new(xml)
            .attributes(true)
            .collect_tree()
            .unwrap();
        assert_eq!(
            t.to_string(),
            "root(@attrs(@a(1,2),@b(x)),c(@attrs(@k(v))))"
        );
        // … and decodes back to attribute syntax.
        assert!(xml_serializable_attrs(&t));
        assert_eq!(tree_to_xml_attrs(&t), xml);
        // Plain serialization rightly refuses the @-slots.
        assert!(!xml_serializable(&t));
        // Without the option, attributes stay invisible (PR-5 behavior).
        assert_eq!(ranked_tree_from_xml(xml).unwrap().to_string(), "root(c)");
    }

    #[test]
    fn attr_values_escape_on_the_way_out() {
        let xml = "<r t=\"a&quot;b &amp; c\"/>";
        let t = XmlRankedEvents::new(xml)
            .attributes(true)
            .collect_tree()
            .unwrap();
        assert_eq!(tree_to_xml_attrs(&t), "<r t=\"a&quot;b &amp; c\"/>");
    }

    #[test]
    fn skip_drains_attribute_blocks() {
        let xml = "<root x=\"1\"><a k=\"aa bb\"><y/></a>tok</root>";
        let mut s = XmlRankedEvents::new(xml).attributes(true);
        let open_name = |s: &mut XmlRankedEvents| match s.next_event() {
            Some(TreeEvent::Open(sym)) => sym.name().to_owned(),
            other => panic!("expected an Open, got {other:?}"),
        };
        assert_eq!(open_name(&mut s), "root");
        // The queued `@attrs` block skips via a depth-balanced drain of
        // the queue (it spans several queued events, not one Close).
        assert_eq!(open_name(&mut s), "@attrs");
        assert!(s.skip_subtree());
        // Skipping the <a> element drops its own queued attribute block
        // along with the raw fast-forward.
        assert_eq!(open_name(&mut s), "a");
        assert!(s.skip_subtree());
        assert_eq!(open_name(&mut s), "tok");
        assert_eq!(s.next_event(), Some(TreeEvent::Close));
        assert_eq!(s.next_event(), Some(TreeEvent::Close));
        assert!(s.next_event().is_none());
        assert!(s.take_error().is_none());
        assert_eq!(s.skipped_subtrees(), 2);
    }

    #[test]
    fn chained_stages_match_the_composed_transducer() {
        // τ₂ ∘ τ₁ executed as a two-stage chain must agree with the
        // statically composed dtop on the chain's domain (τ₁ fully
        // defined, then τ₂); outside it the composed product may accept
        // *more* — it evaluates τ₁ lazily and never checks partiality
        // under positions τ₂ deletes — which is exactly why pipeline
        // plans guard with the chain domain, not dom(composed).
        let library = examples::library().dtop;
        let pairs = [
            (examples::flip().dtop, examples::flip().dtop),
            (library.clone(), xtt_transducer::identity(library.output())),
        ];
        for (m1, m2) in pairs {
            let c1 = compile(&m1).unwrap();
            let c2 = compile(&m2).unwrap();
            let composed = xtt_transducer::compose(&m2, &m1).unwrap();
            let cc = compile(&composed).unwrap();
            let mut chain = ChainedEvaluator::new();
            let mut ev = StreamEvaluator::new();
            for t in enumerate_trees(m1.input(), 120, 8) {
                let mut sink = TreeCollector::new();
                let got = chain
                    .eval_streaming(&[&c1, &c2], &mut IterEvents(t.events()), &mut sink)
                    .unwrap();
                match (got, ev.eval_tree(&cc, &t)) {
                    (Some(_), Some(want)) => {
                        assert_eq!(sink.into_tree().unwrap(), want, "on {t}");
                    }
                    (Some(_), None) => panic!("chain accepted out-of-domain {t}"),
                    // The chain is allowed to reject where the lazy
                    // composed product accepts, never the reverse.
                    (None, _) => {}
                }
            }
        }
    }

    #[test]
    fn chained_keeps_the_stage_one_skip_fast_path() {
        // Stage 1 deletes `a`'s first subtree; the chain must still
        // fast-forward the raw tokenizer past it. Stage 2 is the
        // identity (flip's own output leaves its domain).
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let id = compile(&xtt_transducer::identity(fix.dtop.output())).unwrap();
        let mut chain = ChainedEvaluator::new();
        let xml = "<root><a><junk><x/></junk><a># #</a></a><b># #</b></root>";
        let mut source = XmlRankedEvents::bounded(xml);
        let mut sink = TreeCollector::new();
        let got = chain
            .eval_streaming(&[&c, &id], &mut source, &mut sink)
            .unwrap();
        assert!(got.is_some());
        assert_eq!(
            sink.into_tree().unwrap().to_string(),
            "root(b(#,#),a(#,a(#,#)))"
        );
        assert!(source.skipped_subtrees() >= 1, "fast path must engage");
        assert_eq!(Symbol::lookup("junk"), None, "skipped names never interned");
        assert_eq!(chain.stage_stats().count(), 2);
    }

    #[test]
    fn xml_errors_surface() {
        let c = compile(&examples::flip().dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        assert!(ev.eval_xml(&c, "<root><a></root>").is_err());
        assert_eq!(ev.eval_xml(&c, "<lone/>").unwrap(), None);
    }
}
