//! The streaming front end: run a compiled dtop directly over a pre-order
//! event stream, materializing only the spine the top-down run needs.
//!
//! A dtop run is determined from the root downwards, and pre-order events
//! deliver the root first — so the *set of states* processing every node
//! is known the moment its `Open` event arrives:
//!
//! * on `Open`, the live state set of the new node is derived from its
//!   parent's live states and rules ([`CompiledDtop::states_for_child`]);
//!   if the set is **empty** the subtree is *deleted* by the run and is
//!   skipped wholesale — its events are counted, never stored;
//! * on `Close`, every live state's rule is executed against the already
//!   computed per-child results, and the input node is discarded.
//!
//! Memory is therefore `O(spine · |Q| · |output so far|)` instead of the
//! whole document, and deleted subtrees cost one integer of bookkeeping.
//! Combined with [`crate::xml_ranked_events`], an XML document is
//! transformed while it is being tokenized, without ever building the
//! input tree.
//!
//! Partiality is exact: a live state without a rule for the node's symbol,
//! or a call to a child the node does not have, aborts with `None` — the
//! same inputs are undefined as for `xtt_transducer::eval::eval`.

use std::collections::VecDeque;

use xtt_trees::{tree_from_events, Symbol, Tree, TreeEvent};
use xtt_typecheck::{CompiledDtta, DttaRun, TypeError};
use xtt_xml::{xml_events, XmlError, XmlEvent, XmlEventReader};

use crate::compile::{CompiledDtop, Instr};

/// A pull source of pre-order tree events with an optional fast path for
/// skipping whole subtrees.
///
/// The streaming evaluator discovers, at each `Open`, whether *any*
/// state will inspect the subtree; when none will (a deleted subtree),
/// it calls [`TreeEventSource::skip_subtree`] so the source can discard
/// the subtree at whatever level is cheapest — [`XmlRankedEvents`]
/// fast-forwards the raw SAX reader past the element without tokenizing
/// it. Sources without a fast path return `false` and the evaluator
/// falls back to counting events.
pub trait TreeEventSource {
    /// The next event, or `None` at end of stream (or on a source error
    /// — the source records it for the caller to surface).
    fn next_event(&mut self) -> Option<TreeEvent>;

    /// Called immediately after [`TreeEventSource::next_event`] returned
    /// an `Open`: consume the rest of that node's subtree (descendants
    /// and the matching `Close`) without delivering it. `false` =
    /// unsupported here; the caller consumes the events instead.
    fn skip_subtree(&mut self) -> bool {
        false
    }
}

/// Adapts any plain event iterator into a [`TreeEventSource`] (no skip
/// fast path).
pub struct IterEvents<I>(pub I);

impl<I: Iterator<Item = TreeEvent>> TreeEventSource for IterEvents<I> {
    fn next_event(&mut self) -> Option<TreeEvent> {
        self.0.next()
    }
}

/// What the most recently delivered event was, for
/// [`XmlRankedEvents::skip_subtree`].
enum LastOpen {
    Other,
    /// An element `Start` — skipping fast-forwards the raw reader.
    Element,
    /// A text-token `Open` whose `Close` sits queued.
    Token,
}

/// [`TreeEventSource`] straight off the SAX tokenizer: the owning form
/// of [`xml_ranked_events`] / [`xml_ranked_events_bounded`], with the
/// raw fast-forward ([`XmlEventReader::skip_subtree`]) wired through —
/// deleted subtrees are not tokenized at all.
pub struct XmlRankedEvents<'a> {
    reader: XmlEventReader<'a>,
    queue: VecDeque<TreeEvent>,
    bounded: bool,
    error: Option<XmlError>,
    last: LastOpen,
    skipped_subtrees: u64,
}

impl<'a> XmlRankedEvents<'a> {
    /// Faithful symbol interning (trusted input).
    pub fn new(xml: &'a str) -> XmlRankedEvents<'a> {
        XmlRankedEvents {
            reader: xml_events(xml),
            queue: VecDeque::new(),
            bounded: false,
            error: None,
            last: LastOpen::Other,
            skipped_subtrees: 0,
        }
    }

    /// Bounded symbol resolution (serving paths): out-of-vocabulary
    /// names map to [`unknown_symbol`] instead of growing the interner.
    pub fn bounded(xml: &'a str) -> XmlRankedEvents<'a> {
        XmlRankedEvents {
            bounded: true,
            ..XmlRankedEvents::new(xml)
        }
    }

    fn resolve(&self, name: &str) -> Symbol {
        if self.bounded {
            Symbol::lookup(name).unwrap_or_else(unknown_symbol)
        } else {
            Symbol::new(name)
        }
    }

    /// The tokenizer (or fast-forward) error, if one ended the stream.
    pub fn take_error(&mut self) -> Option<XmlError> {
        self.error.take()
    }

    /// Subtrees discarded via the fast path (observability and tests).
    pub fn skipped_subtrees(&self) -> u64 {
        self.skipped_subtrees
    }
}

impl TreeEventSource for XmlRankedEvents<'_> {
    fn next_event(&mut self) -> Option<TreeEvent> {
        if let Some(ev) = self.queue.pop_front() {
            self.last = match ev {
                TreeEvent::Open(_) => LastOpen::Token,
                TreeEvent::Close => LastOpen::Other,
            };
            return Some(ev);
        }
        if self.error.is_some() {
            return None;
        }
        loop {
            match self.reader.next()? {
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
                Ok(XmlEvent::Start(name)) => {
                    self.last = LastOpen::Element;
                    return Some(TreeEvent::Open(self.resolve(&name)));
                }
                Ok(XmlEvent::End(_)) => {
                    self.last = LastOpen::Other;
                    return Some(TreeEvent::Close);
                }
                Ok(XmlEvent::Text(text)) => {
                    for token in text.split_whitespace() {
                        let sym = self.resolve(token);
                        self.queue.push_back(TreeEvent::Open(sym));
                        self.queue.push_back(TreeEvent::Close);
                    }
                    if let Some(ev) = self.queue.pop_front() {
                        self.last = LastOpen::Token;
                        return Some(ev);
                    }
                }
            }
        }
    }

    fn skip_subtree(&mut self) -> bool {
        match self.last {
            LastOpen::Element => {
                // Fast-forward the raw reader; a structural error inside
                // the skipped region ends the stream like any tokenizer
                // error (the caller surfaces it).
                if let Err(e) = self.reader.skip_subtree() {
                    self.error = Some(e);
                }
                self.skipped_subtrees += 1;
                self.last = LastOpen::Other;
                true
            }
            LastOpen::Token => {
                let close = self.queue.pop_front();
                debug_assert_eq!(close, Some(TreeEvent::Close));
                self.skipped_subtrees += 1;
                self.last = LastOpen::Other;
                true
            }
            LastOpen::Other => false,
        }
    }
}

/// Runs a compiled domain guard in lockstep with any
/// [`TreeEventSource`], cutting the stream at the first violation; the
/// skip fast path is forwarded (the guard's `∅`-skip state and the
/// evaluator's empty state set coincide by construction, so a skipped
/// subtree is one synthetic `Close` to the guard). This is the engine's
/// guarded streaming front end; `xtt_typecheck::GuardedEvents` remains
/// the plain-iterator form.
pub struct GuardedSource<'g, S> {
    inner: S,
    run: DttaRun<'g>,
    violation: Option<TypeError>,
}

impl<'g, S: TreeEventSource> GuardedSource<'g, S> {
    pub fn new(guard: &'g CompiledDtta, inner: S) -> GuardedSource<'g, S> {
        GuardedSource {
            inner,
            run: guard.run(),
            violation: None,
        }
    }

    /// Takes the recorded violation out of the adaptor.
    pub fn take_violation(&mut self) -> Option<TypeError> {
        self.violation.take()
    }

    /// The wrapped source (e.g. to read its recorded tokenizer error).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TreeEventSource> TreeEventSource for GuardedSource<'_, S> {
    fn next_event(&mut self) -> Option<TreeEvent> {
        if self.violation.is_some() {
            return None;
        }
        let event = self.inner.next_event()?;
        match self.run.feed(event) {
            Ok(()) => Some(event),
            Err(violation) => {
                self.violation = Some(violation);
                None
            }
        }
    }

    fn skip_subtree(&mut self) -> bool {
        if !self.inner.skip_subtree() {
            return false;
        }
        // The guard saw the Open and is inside its own skip state; one
        // synthetic Close rebalances it (cannot violate).
        let _ = self.run.feed(TreeEvent::Close);
        true
    }
}

/// Failure of a *guarded* XML streaming evaluation. A violation wins
/// over a tokenizer error by construction: the guard cuts the stream at
/// the first violating node, so the tokenizer never reaches whatever
/// would have failed later.
#[derive(Debug)]
pub enum GuardedXmlError {
    /// The domain guard rejected the document (first violating node).
    Type(TypeError),
    /// The tokenizer failed before the guard saw a violation.
    Xml(XmlError),
}

/// One open input node on the spine.
struct SFrame {
    /// Dense input symbol of the node.
    sym: u32,
    /// Sorted live states processing this node.
    states: Vec<u16>,
    /// For each already-closed child, its `(state, result)` pairs sorted
    /// by state (exactly the states from [`CompiledDtop::states_for_child`]).
    child_results: Vec<Vec<(u16, Tree)>>,
}

/// Reusable streaming evaluator; create once per worker thread.
#[derive(Default)]
pub struct StreamEvaluator {
    frames: Vec<SFrame>,
    /// Scratch for rule execution (see [`StreamEvaluator::exec_range`]).
    exec_vals: Vec<Tree>,
    exec_frames: Vec<(Symbol, u32, u32)>,
    states_scratch: Vec<u16>,
}

impl StreamEvaluator {
    pub fn new() -> StreamEvaluator {
        StreamEvaluator::default()
    }

    /// Evaluates `⟦M⟧` over a pre-order event stream. Returns `None` when
    /// the input is outside the domain **or** the stream is not exactly
    /// one well-nested tree.
    pub fn eval<I>(&mut self, c: &CompiledDtop, events: I) -> Option<Tree>
    where
        I: IntoIterator<Item = TreeEvent>,
    {
        self.eval_source(c, &mut IterEvents(events.into_iter()))
    }

    /// [`StreamEvaluator::eval`] over a [`TreeEventSource`]: when a
    /// subtree is deleted by the run (empty live state set), the source's
    /// skip fast path is taken — over XML this fast-forwards the raw
    /// tokenizer, so deleted subtrees are never tokenized, let alone
    /// built.
    pub fn eval_source(
        &mut self,
        c: &CompiledDtop,
        source: &mut impl TreeEventSource,
    ) -> Option<Tree> {
        self.frames.clear();
        let mut skip_depth = 0usize;
        let mut root_skipped = false;
        let mut done: Option<Tree> = None;
        while let Some(event) = source.next_event() {
            if done.is_some() {
                return None; // events after the root closed
            }
            if skip_depth > 0 {
                match event {
                    TreeEvent::Open(_) => skip_depth += 1,
                    TreeEvent::Close => skip_depth -= 1,
                }
                continue;
            }
            match event {
                TreeEvent::Open(sym) => {
                    let states: Vec<u16> = match self.frames.last() {
                        None => {
                            if root_skipped {
                                return None; // more than one root
                            }
                            c.axiom_states().to_vec()
                        }
                        Some(parent) => {
                            let child = parent.child_results.len();
                            c.states_for_child(
                                &parent.states,
                                parent.sym,
                                child,
                                &mut self.states_scratch,
                            );
                            std::mem::take(&mut self.states_scratch)
                        }
                    };
                    if states.is_empty() {
                        // Deleted subtree (or a constant axiom): no state
                        // ever inspects it — skip without building it,
                        // and without tokenizing it when the source can
                        // fast-forward.
                        match self.frames.last_mut() {
                            Some(parent) => parent.child_results.push(Vec::new()),
                            None => root_skipped = true,
                        }
                        if !source.skip_subtree() {
                            skip_depth = 1;
                        }
                        continue;
                    }
                    let dense = c.dense_sym(sym);
                    // Undefined as soon as any live state lacks a rule.
                    if states.iter().any(|&q| c.rule_range(q, dense).is_none()) {
                        return None;
                    }
                    self.frames.push(SFrame {
                        sym: dense,
                        states,
                        child_results: Vec::new(),
                    });
                }
                TreeEvent::Close => {
                    let frame = self.frames.pop()?; // unbalanced close
                    let mut results: Vec<(u16, Tree)> = Vec::with_capacity(frame.states.len());
                    for &q in &frame.states {
                        let (start, end) = c
                            .rule_range(q, frame.sym)
                            .expect("checked when the node opened");
                        let v = self.exec_range(c, start, end, &|q2, child| {
                            lookup(frame.child_results.get(child)?, q2)
                        })?;
                        results.push((q, v));
                    }
                    match self.frames.last_mut() {
                        Some(parent) => parent.child_results.push(results),
                        None => {
                            // Root closed: splice the per-state results
                            // into the axiom. The stream must end here —
                            // the loop rejects any further event.
                            let (start, end) = c.axiom_range();
                            done = Some(self.exec_range(c, start, end, &|q, child| {
                                if child == 0 {
                                    lookup(&results, q)
                                } else {
                                    None
                                }
                            })?);
                        }
                    }
                }
            }
        }
        if let Some(result) = done {
            return Some(result);
        }
        if root_skipped && skip_depth == 0 {
            // The whole input was deleted: the axiom calls no state.
            let (start, end) = c.axiom_range();
            return self.exec_range(c, start, end, &|_, _| None);
        }
        None // empty or unterminated stream
    }

    /// Convenience: stream a materialized tree (used by benches and the
    /// differential tests to exercise exactly the streaming code path).
    pub fn eval_tree(&mut self, c: &CompiledDtop, input: &Tree) -> Option<Tree> {
        self.eval(c, input.events())
    }

    /// Transforms an XML document without building the input tree: XML
    /// events are mapped to ranked-tree events
    /// ([`xml_ranked_events_bounded`] — document text never grows the
    /// symbol interner) and fed straight into the streaming run.
    ///
    /// `Err` is a tokenizer error; `Ok(None)` means the (well-formed)
    /// document is outside the transduction's domain.
    pub fn eval_xml(&mut self, c: &CompiledDtop, xml: &str) -> Result<Option<Tree>, XmlError> {
        let mut source = XmlRankedEvents::bounded(xml);
        let result = self.eval_source(c, &mut source);
        match source.take_error() {
            Some(e) => Err(e),
            None => Ok(result),
        }
    }

    /// [`StreamEvaluator::eval_xml`] with a domain guard in lockstep: the
    /// guard sees every event first and cuts the stream at the first
    /// violation, so a rejected document's tail is never tokenized.
    /// `Ok(None)` means the (well-formed, guard-accepted) document is
    /// outside the domain for a non-guard reason (e.g. not exactly one
    /// tree). This is the single implementation behind the engine's
    /// guarded streaming mode and the E11 benchmarks.
    pub fn eval_xml_guarded(
        &mut self,
        c: &CompiledDtop,
        guard: &CompiledDtta,
        xml: &str,
    ) -> Result<Option<Tree>, GuardedXmlError> {
        let mut source = GuardedSource::new(guard, XmlRankedEvents::bounded(xml));
        let result = self.eval_source(c, &mut source);
        if let Some(violation) = source.take_violation() {
            return Err(GuardedXmlError::Type(violation));
        }
        match source.into_inner().take_error() {
            Some(e) => Err(GuardedXmlError::Xml(e)),
            None => Ok(result),
        }
    }

    /// Executes the instruction range `[start, end)` with `resolve`
    /// supplying the value of every `⟨q, x_child⟩` call. Iterative; reuses
    /// scratch stacks.
    fn exec_range(
        &mut self,
        c: &CompiledDtop,
        start: u32,
        end: u32,
        resolve: &dyn Fn(u16, usize) -> Option<Tree>,
    ) -> Option<Tree> {
        self.exec_vals.clear();
        self.exec_frames.clear();
        for instr in &c.code()[start as usize..end as usize] {
            match *instr {
                Instr::Out { sym, arity: 0 } => self.exec_vals.push(Tree::leaf(sym)),
                Instr::Out { sym, arity } => {
                    self.exec_frames
                        .push((sym, self.exec_vals.len() as u32, arity))
                }
                Instr::Call { q, child } => self.exec_vals.push(resolve(q, usize::from(child))?),
            }
            while let Some(&(sym, base, arity)) = self.exec_frames.last() {
                if self.exec_vals.len() as u32 != base + arity {
                    break;
                }
                self.exec_frames.pop();
                let children = self.exec_vals.split_off(base as usize);
                self.exec_vals.push(Tree::new(sym, children));
            }
        }
        debug_assert!(self.exec_frames.is_empty());
        debug_assert_eq!(self.exec_vals.len(), 1);
        self.exec_vals.pop()
    }
}

fn lookup(results: &[(u16, Tree)], q: u16) -> Option<Tree> {
    results
        .binary_search_by_key(&q, |&(s, _)| s)
        .ok()
        .map(|i| results[i].1.clone())
}

/// Iterator form of [`XmlRankedEvents`] (same mapping, same source;
/// fused after the first error).
struct RankedEventsIter<'a>(XmlRankedEvents<'a>);

impl Iterator for RankedEventsIter<'_> {
    type Item = Result<TreeEvent, XmlError>;

    fn next(&mut self) -> Option<Result<TreeEvent, XmlError>> {
        match self.0.next_event() {
            Some(event) => Some(Ok(event)),
            None => self.0.take_error().map(Err),
        }
    }
}

/// The sentinel every out-of-vocabulary name maps to under the bounded
/// adapters. Starts with a control character, so no declarable alphabet
/// symbol can collide with it.
pub fn unknown_symbol() -> Symbol {
    Symbol::new("\u{1}xtt:unknown")
}

/// Maps an XML event stream to ranked-tree events: elements become
/// symbols of their child count; character data is whitespace-tokenized,
/// one leaf symbol per token (data-centric documents — the only kind the
/// paper's encodings produce — have single-token pcdata, and tokenizing
/// makes adjacent rank-0 symbols like the fc/ns `#` expressible as
/// `# #`). Attributes/comments/PIs were already skipped by the lenient
/// tokenizer.
///
/// Every name is **interned** into the process-global symbol table; use
/// this for trusted input only. The serving paths use
/// [`xml_ranked_events_bounded`], which never grows the table.
pub fn xml_ranked_events(xml: &str) -> impl Iterator<Item = Result<TreeEvent, XmlError>> + '_ {
    RankedEventsIter(XmlRankedEvents::new(xml))
}

/// Like [`xml_ranked_events`], but safe for untrusted traffic: names are
/// resolved with [`Symbol::lookup`] and anything never interned before
/// (i.e. not in any transducer alphabet) becomes [`unknown_symbol`].
/// Evaluation is unaffected — an out-of-vocabulary symbol has no rules
/// either way — but a long-running server's memory no longer grows with
/// the input vocabulary.
pub fn xml_ranked_events_bounded(
    xml: &str,
) -> impl Iterator<Item = Result<TreeEvent, XmlError>> + '_ {
    RankedEventsIter(XmlRankedEvents::bounded(xml))
}

/// Builds a ranked tree from an XML document via [`xml_ranked_events`]
/// (faithful symbols; trusted input).
pub fn ranked_tree_from_xml(xml: &str) -> Result<Tree, XmlError> {
    collect_tree(xml, xml_ranked_events(xml))
}

/// Builds a ranked tree via [`xml_ranked_events_bounded`] — what the
/// engine's non-streaming XML paths use, so serving never interns
/// document text.
pub fn ranked_tree_from_xml_bounded(xml: &str) -> Result<Tree, XmlError> {
    collect_tree(xml, xml_ranked_events_bounded(xml))
}

fn collect_tree(
    xml: &str,
    events: impl Iterator<Item = Result<TreeEvent, XmlError>>,
) -> Result<Tree, XmlError> {
    let mut collected = Vec::new();
    for event in events {
        collected.push(event?);
    }
    tree_from_events(collected).map_err(|e| XmlError {
        offset: xml.len(),
        message: e.to_string(),
    })
}

/// Serializes a ranked tree as XML: symbols with XML-name labels become
/// elements, other leaves (like the paper's `#` or pcdata values) become
/// whitespace-separated text tokens. Inverse of [`ranked_tree_from_xml`]
/// on its image.
///
/// Inner symbols must be XML names (alphabets like the §10 library's
/// `B*` groups are term-syntax-only; serve those in `DocFormat::Term`).
pub fn tree_to_xml(t: &Tree) -> String {
    let mut out = String::new();
    write_ranked(t, &mut out);
    out
}

fn is_text_leaf(t: &Tree) -> bool {
    t.is_leaf() && !is_xml_name(t.symbol().name())
}

/// True iff [`tree_to_xml`] produces well-formed XML for this tree:
/// every inner symbol is a valid XML element name.
pub fn xml_serializable(t: &Tree) -> bool {
    t.preorder()
        .all(|n| n.is_leaf() || is_xml_name(n.symbol().name()))
}

fn write_ranked(t: &Tree, out: &mut String) {
    let name = t.symbol().name();
    if is_text_leaf(t) {
        out.push_str(&escape_text(name));
        return;
    }
    if t.is_leaf() {
        out.push('<');
        out.push_str(name);
        out.push_str("/>");
        return;
    }
    out.push('<');
    out.push_str(name);
    out.push('>');
    for (i, c) in t.children().iter().enumerate() {
        if i > 0 && is_text_leaf(c) && is_text_leaf(&t.children()[i - 1]) {
            out.push(' '); // keep adjacent text leaves distinct tokens
        }
        write_ranked(c, out);
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

fn is_xml_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
}

fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use xtt_transducer::{eval as walk_eval, examples};
    use xtt_trees::{gen::enumerate_trees, parse_tree};

    #[test]
    fn streaming_agrees_with_tree_walk() {
        for fix in [
            examples::flip(),
            examples::library(),
            examples::monadic_to_binary(),
            examples::flip_k(2),
        ] {
            let c = compile(&fix.dtop).unwrap();
            let mut ev = StreamEvaluator::new();
            for t in enumerate_trees(fix.dtop.input(), 120, 9) {
                assert_eq!(ev.eval_tree(&c, &t), walk_eval(&fix.dtop, &t), "on {t}");
            }
        }
    }

    #[test]
    fn deleted_subtrees_are_skipped_not_inspected() {
        // (q4, a) deletes its first subtree; streaming must accept garbage
        // there exactly like the tree-walk evaluator does.
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        let t = parse_tree("root(a(b(zzz(#,#),#),#),#)").unwrap();
        assert_eq!(
            ev.eval_tree(&c, &t).unwrap().to_string(),
            walk_eval(&fix.dtop, &t).unwrap().to_string()
        );
    }

    #[test]
    fn constant_axiom_streams() {
        let c = compile(&examples::constant_m1().dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        let t = parse_tree("f(a,f(a,a))").unwrap();
        assert_eq!(ev.eval_tree(&c, &t).unwrap().to_string(), "b");
    }

    #[test]
    fn malformed_streams_are_undefined() {
        let c = compile(&examples::flip().dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        use TreeEvent::*;
        let root = Symbol::new("root");
        let hash = Symbol::new("#");
        assert_eq!(ev.eval(&c, []), None);
        assert_eq!(ev.eval(&c, [Open(root)]), None);
        assert_eq!(ev.eval(&c, [Close]), None);
        // trailing events after the root closed: not exactly one tree
        let mut two_roots: Vec<TreeEvent> = parse_tree("root(#,#)").unwrap().events().collect();
        let base = two_roots.clone();
        two_roots.extend([Open(hash), Close]);
        assert_eq!(ev.eval(&c, base), Some(parse_tree("root(#,#)").unwrap()));
        assert_eq!(ev.eval(&c, two_roots), None);
    }

    #[test]
    fn bounded_adapter_never_grows_the_interner() {
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        unknown_symbol(); // pre-intern the sentinel itself
                          // Garbage pcdata sits in the first child of an `a` node, which
                          // (q4, a) deletes; the walk evaluator accepts it, and so must the
                          // bounded streaming path — via the sentinel, without interning.
        let xml = "<root><a>never-interned-token-1<a># #</a></a><b># #</b></root>";
        let out = ev.eval_xml(&c, xml).unwrap().unwrap();
        assert_eq!(out.to_string(), "root(b(#,#),a(#,a(#,#)))");
        assert_eq!(Symbol::lookup("never-interned-token-1"), None);
        // same through the non-streaming bounded tree builder
        let t = ranked_tree_from_xml_bounded(xml).unwrap();
        assert_eq!(
            xtt_transducer::eval(&fix.dtop, &t).unwrap().to_string(),
            "root(b(#,#),a(#,a(#,#)))"
        );
        assert_eq!(Symbol::lookup("never-interned-token-1"), None);
    }

    #[test]
    fn xml_roundtrip_through_engine() {
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        // fc/ns-encoded lists in XML form: '#' leaves are text tokens.
        let xml = "<root><a># <a># #</a></a><b># <b># #</b></b></root>";
        let t = ranked_tree_from_xml(xml).unwrap();
        assert_eq!(t.to_string(), "root(a(#,a(#,#)),b(#,b(#,#)))");
        let streamed = ev.eval_xml(&c, xml).unwrap().unwrap();
        assert_eq!(streamed, walk_eval(&fix.dtop, &t).unwrap());
        // and the output serializes back to parseable XML
        let xml_out = tree_to_xml(&streamed);
        assert_eq!(ranked_tree_from_xml(&xml_out).unwrap(), streamed);
    }

    #[test]
    fn deleted_subtrees_are_not_tokenized() {
        // (q4, a) deletes the first subtree of every `a` node: the
        // streaming XML path must fast-forward the raw reader past it
        // instead of tokenizing it — observable via the skip counter and
        // via junk that only a tokenizer would choke on politely
        // (attributes, comments) sailing through untokenized.
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        let xml = "<root><a><junk depth=\"3\"><x><!-- never parsed --></x></junk><a># #</a></a><b># #</b></root>";
        let mut source = XmlRankedEvents::bounded(xml);
        let out = ev.eval_source(&c, &mut source).unwrap();
        assert_eq!(out.to_string(), "root(b(#,#),a(#,a(#,#)))");
        assert!(source.skipped_subtrees() >= 1, "fast path must engage");
        assert_eq!(Symbol::lookup("junk"), None, "skipped names never interned");
        // The guarded path fast-forwards too (guard ∅-skip ≡ empty state
        // set), with identical output.
        let guard = xtt_typecheck::domain_guard(&fix.dtop).unwrap();
        let guarded = ev.eval_xml_guarded(&c, &guard, xml).unwrap().unwrap();
        assert_eq!(guarded, out);
    }

    #[test]
    fn skip_fast_path_still_surfaces_structural_errors() {
        // Mismatched tags inside a *deleted* subtree are still XML
        // errors — the fast-forward enforces structure, exactly like the
        // event-counting path did.
        let fix = examples::flip();
        let c = compile(&fix.dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        let bad = "<root><a><junk><open></junk></a><b># #</b></root>";
        assert!(ev.eval_xml(&c, bad).is_err());
    }

    #[test]
    fn xml_errors_surface() {
        let c = compile(&examples::flip().dtop).unwrap();
        let mut ev = StreamEvaluator::new();
        assert!(ev.eval_xml(&c, "<root><a></root>").is_err());
        assert_eq!(ev.eval_xml(&c, "<lone/>").unwrap(), None);
    }
}
