//! Property tests for event-driven emission: `eval_streaming` must hand
//! the sink **exactly** the pre-order events of the batch output tree —
//! event for event, in order — across all four input encodings (term
//! events, raw ranked XML, fc/ns, DTD-based) and both pcdata modes; and
//! on deep order-preserving corpora the first output event must leave
//! before the input is 10% consumed (tree-at-root-close pays 100% by
//! definition).

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xtt_engine::{
    compile, tree_to_xml, CompiledDtop, FnSink, IterEvents, StreamEvaluator, TreeEventSource,
    XmlRankedEvents,
};
use xtt_transducer::{parse_dtop, random_partial_dtop, Dtop, RandomDtopConfig};
use xtt_trees::{gen, RankedAlphabet, TreeEvent};
use xtt_unranked::XmlCodec;
use xtt_xml::{write_xml, Dtd, Encoding, PcDataMode, UTree};

/// Runs `eval_streaming` with an event-collecting sink; `None` mirrors
/// the tree API's out-of-domain answer.
fn streamed_events(c: &CompiledDtop, source: &mut impl TreeEventSource) -> Option<Vec<TreeEvent>> {
    let mut events = Vec::new();
    let outcome = {
        let mut sink = FnSink(|e| events.push(e));
        StreamEvaluator::new()
            .eval_streaming(c, source, &mut sink)
            .expect("FnSink cannot fail")
    };
    outcome.map(|_| events)
}

/// The batch reference: materialize the output tree, take its pre-order
/// events.
fn batch_events(c: &CompiledDtop, source: &mut impl TreeEventSource) -> Option<Vec<TreeEvent>> {
    StreamEvaluator::new()
        .eval_source(c, source)
        .map(|t| t.events().collect())
}

fn config() -> RandomDtopConfig {
    RandomDtopConfig {
        n_states: 4,
        max_rhs_depth: 3,
        call_percent: 55,
    }
}

/// Element-only unranked document builder (every symbol is fcns-safe).
fn elem_doc_from_ops(ops: &[u8]) -> UTree {
    let mut stack: Vec<(String, Vec<UTree>)> = vec![("root".to_owned(), Vec::new())];
    for &op in ops {
        match op % 5 {
            0 => stack.push(("a".to_owned(), Vec::new())),
            1 => stack.push(("b".to_owned(), Vec::new())),
            2 => stack.push(("c".to_owned(), Vec::new())),
            3 => {
                if stack.len() > 1 {
                    let (label, children) = stack.pop().unwrap();
                    stack
                        .last_mut()
                        .unwrap()
                        .1
                        .push(UTree::Elem { label, children });
                }
            }
            _ => stack.last_mut().unwrap().1.push(UTree::leaf("d")),
        }
    }
    while stack.len() > 1 {
        let (label, children) = stack.pop().unwrap();
        stack
            .last_mut()
            .unwrap()
            .1
            .push(UTree::Elem { label, children });
    }
    let (label, children) = stack.pop().unwrap();
    UTree::Elem { label, children }
}

/// The golden xmlflip dtop (paper §1/§10) over the DTD encoding of
/// `root → (a*,b*)` / output `root → (b*,a*)`, abstract pcdata.
fn xmlflip() -> Dtop {
    parse_dtop(
        "ax = root(\"(b*,a*)\"(<q1,x0>,<q2,x0>))\n\
         q1(root(x1)) -> <q1g,x1>\n\
         q2(root(x1)) -> <q2g,x1>\n\
         q1g(\"(a*,b*)\"(x1,x2)) -> <qbs,x2>\n\
         q2g(\"(a*,b*)\"(x1,x2)) -> <qas,x1>\n\
         qbs(b*(x1,x2)) -> b*(<qb,x1>,<qbs,x2>)\n\
         qbs(#) -> #\n\
         qb(b) -> b\n\
         qb(#) -> #\n\
         qas(a*(x1,x2)) -> a*(<qa,x1>,<qas,x2>)\n\
         qas(#) -> #\n\
         qa(a) -> a\n\
         qa(#) -> #",
    )
    .expect("xmlflip parses")
}

/// The golden text-swap dtop: valued pcdata `{x,y}`, swaps the A/T
/// fields of `B → (A,T)`.
fn text_swap() -> Dtop {
    parse_dtop(
        "ax = B(\"(T,A)\"(<q1,x0>,<q2,x0>))\n\
         q1(B(x1)) -> <qg1,x1>\n\
         q2(B(x1)) -> <qg2,x1>\n\
         qg1(\"(A,T)\"(x1,x2)) -> <qt,x2>\n\
         qg2(\"(A,T)\"(x1,x2)) -> <qa,x1>\n\
         qt(T(x1)) -> T(<qv,x1>)\n\
         qa(A(x1)) -> A(<qv,x1>)\n\
         qv('x') -> 'x'\n\
         qv('y') -> 'y'",
    )
    .expect("text_swap parses")
}

/// `TreeEventSource` wrapper counting delivered input events (skipped
/// subtrees intentionally count as whatever the inner fast path hides).
struct CountingSource<S> {
    inner: S,
    consumed: Rc<Cell<u64>>,
}

impl<S: TreeEventSource> TreeEventSource for CountingSource<S> {
    fn next_event(&mut self) -> Option<TreeEvent> {
        let ev = self.inner.next_event();
        if ev.is_some() {
            self.consumed.set(self.consumed.get() + 1);
        }
        ev
    }

    fn skip_subtree(&mut self) -> bool {
        self.inner.skip_subtree()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Term events: random partial dtops on random trees — streamed
    /// emission is the batch output's pre-order, and the two agree on
    /// `None` outside the domain.
    #[test]
    fn term_emission_matches_batch_preorder(seed in any::<u64>(), keep in 35u32..95) {
        let input = RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("h", 3), ("a", 0), ("b", 0)]);
        let output = RankedAlphabet::from_pairs([("u", 2), ("v", 1), ("c", 0), ("d", 0)]);
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_partial_dtop(&mut rng, &input, &output, &config(), keep);
        let c = compile(&m).unwrap();
        let mut trees = gen::enumerate_trees(&input, 40, 7);
        for _ in 0..4 {
            trees.push(gen::random_tree(&input, 60, &mut rng));
        }
        for t in trees {
            let streamed = streamed_events(&c, &mut IterEvents(t.events()));
            let batch = batch_events(&c, &mut IterEvents(t.events()));
            prop_assert_eq!(streamed, batch, "on {}", t);
        }
    }

    /// Raw ranked XML: the same property through the SAX tokenizer
    /// (`XmlRankedEvents`), including its skip fast path on deletions.
    #[test]
    fn xml_emission_matches_batch_preorder(seed in any::<u64>(), keep in 35u32..95) {
        let alpha = RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("a", 0), ("b", 0)]);
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_partial_dtop(&mut rng, &alpha, &alpha, &config(), keep);
        let c = compile(&m).unwrap();
        let mut trees = gen::enumerate_trees(&alpha, 40, 7);
        for _ in 0..4 {
            trees.push(gen::random_tree(&alpha, 60, &mut rng));
        }
        for t in trees {
            let xml = tree_to_xml(&t);
            let streamed = streamed_events(&c, &mut XmlRankedEvents::new(&xml));
            let batch = batch_events(&c, &mut XmlRankedEvents::new(&xml));
            prop_assert_eq!(streamed, batch, "on {xml}");
        }
    }

    /// fc/ns encoding: random partial dtops over the encoded alphabet on
    /// random element-only documents, streamed straight off the encoder.
    #[test]
    fn fcns_emission_matches_batch_preorder(
        seed in any::<u64>(), keep in 35u32..95,
        ops in proptest::collection::vec(any::<u8>(), 0..50),
    ) {
        let alpha = RankedAlphabet::from_pairs([
            ("root", 2), ("a", 2), ("b", 2), ("c", 2), ("d", 2), ("#", 0),
        ]);
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_partial_dtop(&mut rng, &alpha, &alpha, &config(), keep);
        let c = compile(&m).unwrap();
        let xml = write_xml(&elem_doc_from_ops(&ops));
        let codec = XmlCodec::fcns();
        let events = || IterEvents(codec.events(&xml).map(|r| r.expect("well-formed XML")));
        prop_assert_eq!(
            streamed_events(&c, &mut events()),
            batch_events(&c, &mut events()),
            "on {}", xml
        );
    }

    /// DTD encoding, abstract pcdata: the paper's xmlflip on random
    /// (and occasionally out-of-domain) documents.
    #[test]
    fn dtd_abstract_emission_matches_batch_preorder(
        n in 0usize..10, m in 0usize..10, rogue in any::<bool>(),
    ) {
        let dtd = Dtd::parse(
            "<!ELEMENT root (a*,b*) >\n<!ELEMENT a EMPTY >\n<!ELEMENT b EMPTY >",
        ).unwrap();
        let enc = Arc::new(Encoding::new(dtd, PcDataMode::Abstract));
        let codec = XmlCodec::dtd(Arc::clone(&enc));
        let c = compile(&xmlflip()).unwrap();
        let mut kids = vec![UTree::leaf("a"); n];
        kids.extend(vec![UTree::leaf("b"); m]);
        if rogue {
            // b before a: still in the DTD's language only when n == 0.
            kids.reverse();
        }
        let xml = write_xml(&UTree::elem("root", kids));
        if enc.encode(&xtt_xml::parse_xml(&xml).unwrap()).is_err() {
            return Ok(()); // outside the DTD: nothing to compare
        }
        let events = || IterEvents(codec.events(&xml).map(|r| r.expect("in DTD language")));
        prop_assert_eq!(
            streamed_events(&c, &mut events()),
            batch_events(&c, &mut events()),
            "on {}", xml
        );
    }

    /// DTD encoding, valued pcdata: the text-swap exemplar over the
    /// `{x,y}` text universe (permuting at the root, so everything
    /// buffers — the equality must hold regardless).
    #[test]
    fn dtd_valued_emission_matches_batch_preorder(a in any::<bool>(), t in any::<bool>()) {
        let dtd = Dtd::parse(
            "<!ELEMENT B (A,T) >\n<!ELEMENT A #PCDATA >\n<!ELEMENT T #PCDATA >",
        ).unwrap();
        let mode = PcDataMode::Valued(vec!["x".into(), "y".into()]);
        let enc = Arc::new(Encoding::new(dtd, mode));
        let codec = XmlCodec::dtd(enc);
        let c = compile(&text_swap()).unwrap();
        let pick = |b: bool| if b { "x" } else { "y" };
        let xml = format!("<B><A>{}</A><T>{}</T></B>", pick(a), pick(t));
        let events = || IterEvents(codec.events(&xml).map(|r| r.expect("in DTD language")));
        prop_assert_eq!(
            streamed_events(&c, &mut events()),
            batch_events(&c, &mut events()),
            "on {}", xml
        );
    }

    /// Deep order-preserving corpora: the first output event leaves
    /// before 10% of the input events have been consumed.
    #[test]
    fn first_event_before_ten_percent_consumed(depth in 100usize..400) {
        let prune = parse_dtop(
            "ax = <q0,x0>\n\
             q0(root(x1,x2)) -> root(<q,x1>,<q,x2>)\n\
             q(a(x1,x2)) -> a(<q,x1>,<q,x2>)\n\
             q(b(x1,x2)) -> <q,x2>\n\
             q(#) -> #",
        ).unwrap();
        let c = compile(&prune).unwrap();
        let mut xml = String::from("<root>");
        for _ in 0..depth {
            xml.push_str("<a>");
        }
        for _ in 0..depth {
            xml.push_str("</a>");
        }
        xml.push_str("</root>");
        let codec = XmlCodec::fcns();
        let total = codec.events(&xml).count() as u64;
        prop_assert!(total >= 2 * depth as u64);

        let consumed = Rc::new(Cell::new(0u64));
        let mut source = CountingSource {
            inner: IterEvents(codec.events(&xml).map(|r| r.expect("well-formed XML"))),
            consumed: Rc::clone(&consumed),
        };
        let at_first = Rc::new(Cell::new(None::<u64>));
        let emitted = {
            let consumed = Rc::clone(&consumed);
            let at_first = Rc::clone(&at_first);
            let mut sink = FnSink(move |_| {
                if at_first.get().is_none() {
                    at_first.set(Some(consumed.get()));
                }
            });
            StreamEvaluator::new()
                .eval_streaming(&c, &mut source, &mut sink)
                .expect("FnSink cannot fail")
        };
        prop_assert!(emitted.is_some(), "prune is defined on the chain");
        let at_first = at_first.get().expect("output was produced");
        prop_assert!(
            at_first * 10 <= total,
            "first output event only after {at_first} of {total} input events"
        );
    }
}
