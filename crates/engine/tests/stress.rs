//! Concurrency stress: one shared [`Engine`] hammered from many threads
//! with interleaved *distinct* transducers, with the fingerprint LRU
//! sized far below the working set so every thread constantly evicts the
//! others' compiled forms. The invariant: under arbitrary interleaving,
//! eviction churn, and mode mixing, every result stays bit-identical to
//! the single-threaded research evaluator `xtt_transducer::eval`.
//!
//! Run in CI under `--release` as well — the interesting interleavings
//! only show up at speed.

use std::sync::Arc;

use xtt_engine::{Engine, EngineOptions, EvalMode};
use xtt_transducer::{eval, examples, Dtop};
use xtt_trees::Tree;

/// A transducer plus inputs in its domain and the ground-truth outputs.
struct Case {
    dtop: Dtop,
    docs: Vec<String>,
    expected: Vec<String>,
}

fn monadic(k: usize) -> Tree {
    let mut t = Tree::leaf_named("e");
    for _ in 0..k {
        t = Tree::node("f", vec![t]);
    }
    t
}

/// `flip_k(k)` inputs: a root over `k` single-letter lists.
fn flip_k_input(k: usize, lens: &[usize]) -> Tree {
    let children = (0..k)
        .map(|i| {
            let mut list = Tree::leaf_named("#");
            for _ in 0..lens[i % lens.len()] {
                list = Tree::node(&format!("c{i}"), vec![Tree::leaf_named("#"), list]);
            }
            list
        })
        .collect();
    Tree::node("root", children)
}

fn build_cases() -> Vec<Case> {
    let mut cases = Vec::new();
    let mut push = |dtop: Dtop, inputs: Vec<Tree>| {
        let docs: Vec<String> = inputs.iter().map(Tree::to_string).collect();
        let expected: Vec<String> = inputs
            .iter()
            .map(|t| {
                eval(&dtop, t)
                    .expect("stress inputs are in the domain")
                    .to_string()
            })
            .collect();
        cases.push(Case {
            dtop,
            docs,
            expected,
        });
    };
    // Twelve structurally distinct transducers — every fingerprint
    // differs, so with an LRU of 4 the cache is always churning.
    for n in 1..=5 {
        push(
            examples::relabel_chain(n).dtop,
            (0..6).map(|k| monadic(k + n)).collect(),
        );
    }
    for k in 1..=4 {
        push(
            examples::flip_k(k).dtop,
            vec![
                flip_k_input(k, &[0, 1, 2]),
                flip_k_input(k, &[3, 0, 1]),
                flip_k_input(k, &[2, 2, 2]),
            ],
        );
    }
    push(
        examples::flip().dtop,
        (0..5).map(|i| examples::flip_input(i, 5 - i)).collect(),
    );
    push(
        examples::monadic_to_binary().dtop,
        (0..8).map(monadic).collect(),
    );
    push(
        examples::library().dtop,
        (1..5).map(examples::library_input).collect(),
    );
    assert_eq!(cases.len(), 12);
    cases
}

#[test]
fn concurrent_distinct_transducers_stay_bit_identical() {
    let cases = Arc::new(build_cases());
    // LRU far below the 12-transducer working set → constant eviction.
    let engine = Arc::new(Engine::new(EngineOptions {
        cache_capacity: 4,
        workers: 1, // callers are the concurrency; no nested pools
        ..EngineOptions::default()
    }));
    let threads = 8;
    let iterations = if cfg!(debug_assertions) { 60 } else { 250 };
    let modes = [EvalMode::Compiled, EvalMode::Streaming, EvalMode::Dag];

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cases = Arc::clone(&cases);
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mode = modes[t % modes.len()];
                for i in 0..iterations {
                    // Each thread walks the cases in a different order so
                    // the LRU sees adversarial interleavings.
                    let case = &cases[(t * 7 + i * 5 + 3) % cases.len()];
                    if i % 3 == 0 {
                        // Whole-batch path (shares one compiled Arc).
                        let results = engine.transform_batch_with(
                            &case.dtop,
                            &case.docs,
                            mode,
                            Default::default(),
                        );
                        for (j, r) in results.iter().enumerate() {
                            assert_eq!(
                                r.as_deref().expect("in-domain input"),
                                case.expected[j],
                                "thread {t} iter {i} doc {j} diverged"
                            );
                        }
                    } else {
                        // Single-document path.
                        let j = i % case.docs.len();
                        let got = engine
                            .transform_with(&case.dtop, &case.docs[j], mode, Default::default())
                            .expect("in-domain input");
                        assert_eq!(
                            got, case.expected[j],
                            "thread {t} iter {i} doc {j} diverged"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("stress thread panicked");
    }

    // The cache must actually have churned: far more misses than the 12
    // distinct transducers could explain without eviction.
    let stats = engine.cache_stats();
    assert!(stats.entries <= 4, "LRU overflowed: {}", stats.entries);
    assert!(
        stats.misses > 12,
        "no eviction churn happened (misses = {})",
        stats.misses
    );
    assert!(stats.hits > 0, "nothing ever hit the cache");
}
