//! Differential property tests: every engine execution layer must agree
//! *exactly* with the research evaluator `xtt_transducer::eval::eval` —
//! same outputs on the domain, same `None` outside it.
//!
//! Transducers are random **partial** dtops (missing rules make random
//! inputs routinely undefined), so the tests exercise the failure
//! propagation paths as hard as the success paths. Inputs mix exhaustive
//! small-tree enumeration with random larger trees.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xtt_engine::{compile, EvalScratch, StreamEvaluator};
use xtt_transducer::{eval as walk_eval, random_partial_dtop, random_total_dtop, RandomDtopConfig};
use xtt_trees::{gen, RankedAlphabet, Tree, TreeDag};

fn alphabets() -> (RankedAlphabet, RankedAlphabet) {
    (
        RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("h", 3), ("a", 0), ("b", 0)]),
        RankedAlphabet::from_pairs([("u", 2), ("v", 1), ("c", 0), ("d", 0)]),
    )
}

fn config() -> RandomDtopConfig {
    RandomDtopConfig {
        n_states: 4,
        max_rhs_depth: 3,
        call_percent: 55,
    }
}

/// Inputs for one case: all small trees plus a few random larger ones.
fn workload(input: &RankedAlphabet, rng: &mut StdRng) -> Vec<Tree> {
    let mut trees = gen::enumerate_trees(input, 50, 7);
    for _ in 0..6 {
        trees.push(gen::random_tree(input, 60, rng));
    }
    trees
}

proptest! {
    /// Compiled tree evaluation ≡ tree-walk evaluation, including `None`.
    #[test]
    fn compiled_eval_agrees(seed in any::<u64>(), keep in 35u32..95) {
        let (input, output) = alphabets();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_partial_dtop(&mut rng, &input, &output, &config(), keep);
        let c = compile(&m).unwrap();
        let mut scratch = EvalScratch::new();
        for t in workload(&input, &mut rng) {
            prop_assert_eq!(c.eval(&t, &mut scratch), walk_eval(&m, &t), "on {}", t);
        }
    }

    /// Streaming evaluation over the event stream agrees as well.
    #[test]
    fn streaming_eval_agrees(seed in any::<u64>(), keep in 35u32..95) {
        let (input, output) = alphabets();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_partial_dtop(&mut rng, &input, &output, &config(), keep);
        let c = compile(&m).unwrap();
        let mut stream = StreamEvaluator::new();
        for t in workload(&input, &mut rng) {
            prop_assert_eq!(stream.eval(&c, t.events()), walk_eval(&m, &t), "on {}", t);
        }
    }

    /// DAG-sink evaluation unfolds to the tree-walk result.
    #[test]
    fn dag_eval_agrees(seed in any::<u64>(), keep in 35u32..95) {
        let (input, output) = alphabets();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_partial_dtop(&mut rng, &input, &output, &config(), keep);
        let c = compile(&m).unwrap();
        let mut scratch = EvalScratch::new();
        let mut dag = TreeDag::new();
        for t in workload(&input, &mut rng) {
            let via_dag = c.eval_dag(&t, &mut scratch, &mut dag).map(|id| dag.extract(id));
            prop_assert_eq!(via_dag, walk_eval(&m, &t), "on {}", t);
        }
    }

    /// Total dtops (universal domain): every layer is defined everywhere
    /// and all four results coincide.
    #[test]
    fn total_dtops_always_defined(seed in any::<u64>()) {
        let (input, output) = alphabets();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_total_dtop(&mut rng, &input, &output, &config());
        let c = compile(&m).unwrap();
        let mut scratch = EvalScratch::new();
        let mut dag_scratch = EvalScratch::new();
        let mut stream = StreamEvaluator::new();
        let mut dag = TreeDag::new();
        for t in workload(&input, &mut rng) {
            let reference = walk_eval(&m, &t);
            prop_assert!(reference.is_some(), "total dtop undefined on {}", t);
            prop_assert_eq!(c.eval(&t, &mut scratch), reference.clone());
            prop_assert_eq!(stream.eval(&c, t.events()), reference.clone());
            let via_dag = c
                .eval_dag(&t, &mut dag_scratch, &mut dag)
                .map(|id| dag.extract(id));
            prop_assert_eq!(via_dag, reference);
        }
    }
}
