//! Output typechecking: decide `dom(τ) ⊆ τ⁻¹(L(S_out))`.
//!
//! Given a transducer `M` and a target output schema `S_out` (a DTTA),
//! every input in the domain must translate into `L(S_out)`. Following
//! Martens & Neven ("On Typechecking Top-Down XML Transformations"), the
//! check is inverse type inference by *precomposition*: explore the
//! product of the trimmed domain automaton with obligation sets of
//! `(transducer state, schema state)` pairs — the schema runs over each
//! rule's output structure, splitting at `⟨q, x_i⟩` calls into per-child
//! obligations. A symbol whose right-hand side the schema cannot process
//! is a **violation**; because the domain is trimmed, every reachable
//! violation is realized by a concrete input tree, assembled from the
//! domain's minimal witnesses (`xtt-automata`'s witness machinery).
//!
//! Soundness and completeness both hinge on the domain being path-closed
//! (Proposition 2): any partial top-down run extends to a full domain
//! tree position-independently, so reachability in the product is exactly
//! realizability by an input.

use std::collections::{BTreeSet, HashMap, VecDeque};

use xtt_automata::{is_empty, minimal_witnesses, Dtta, StateId};
use xtt_transducer::{domain_dtta, eval, Dtop, QId, Rhs};
use xtt_trees::{Symbol, Tree};

/// The result of [`output_typecheck`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypecheckVerdict {
    /// Every input in the domain translates into the schema's language.
    WellTyped,
    /// A concrete input in the domain whose output violates the schema.
    Counterexample {
        input: Tree,
        /// `⟦M⟧(input)` — rejected by the schema.
        output: Tree,
    },
}

impl TypecheckVerdict {
    pub fn is_well_typed(&self) -> bool {
        matches!(self, TypecheckVerdict::WellTyped)
    }
}

/// One discovered product configuration, with enough parent bookkeeping
/// to rebuild a concrete input context when a violation is found.
struct ProductNode {
    domain_state: StateId,
    obligations: BTreeSet<(QId, StateId)>,
    /// `(parent index, parent symbol, child position, parent's domain
    /// successor states)`.
    parent: Option<(usize, Symbol, usize, Vec<StateId>)>,
}

/// Capacity bound on the product exploration, mirroring the domain
/// construction's own limit.
const MAX_PRODUCT_NODES: usize = 1_000_000;

/// Decides whether `M` (restricted by `inspection`, when given) is
/// well-typed for the output schema: `dom(τ) ⊆ τ⁻¹(L(schema))`. When it
/// is not, returns the BFS-first counterexample input together with its
/// (schema-violating) output.
pub fn output_typecheck(m: &Dtop, inspection: Option<&Dtta>, schema: &Dtta) -> TypecheckVerdict {
    let domain = domain_dtta(m, inspection);
    if is_empty(&domain) {
        return TypecheckVerdict::WellTyped; // vacuous: nothing to translate
    }
    let witnesses = minimal_witnesses(&domain);
    let witness = |q: StateId| -> Tree {
        witnesses[q.index()]
            .clone()
            .expect("trimmed domain states have nonempty languages")
    };

    let mut nodes: Vec<ProductNode> = Vec::new();
    let mut seen: HashMap<(StateId, BTreeSet<(QId, StateId)>), usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    // The schema starts on the axiom's output structure; all axiom calls
    // target the root (`x₀`), so its obligations seed the root node.
    let root_obligations = match schema_run_rhs(schema, schema.initial(), m.axiom()) {
        Ok(calls) => calls.into_iter().map(|(_, q, p)| (q, p)).collect(),
        Err(()) => {
            // The axiom's own output already violates the schema: every
            // domain tree is a counterexample.
            let input = witness(domain.initial());
            let output = eval(m, &input).expect("domain witness evaluates");
            return TypecheckVerdict::Counterexample { input, output };
        }
    };
    nodes.push(ProductNode {
        domain_state: domain.initial(),
        obligations: root_obligations,
        parent: None,
    });
    seen.insert((nodes[0].domain_state, nodes[0].obligations.clone()), 0);
    queue.push_back(0);

    while let Some(index) = queue.pop_front() {
        let domain_state = nodes[index].domain_state;
        let obligations = nodes[index].obligations.clone();
        for &f in domain.alphabet().symbols() {
            let Some(domain_children) = domain.transition(domain_state, f) else {
                continue;
            };
            let domain_children = domain_children.to_vec();
            let rank = domain_children.len();
            let mut child_obligations: Vec<BTreeSet<(QId, StateId)>> = vec![BTreeSet::new(); rank];
            let mut violated = false;
            for &(q, p) in &obligations {
                // The domain transition existing implies every obligated
                // transducer state has an f-rule.
                let Some(rhs) = m.rule(q, f) else { continue };
                match schema_run_rhs(schema, p, rhs) {
                    Ok(calls) => {
                        for (child, q2, p2) in calls {
                            child_obligations[child].insert((q2, p2));
                        }
                    }
                    Err(()) => {
                        violated = true;
                        break;
                    }
                }
            }
            if violated {
                // Assemble the concrete input: this node labeled f with
                // minimal domain witnesses below, wrapped in the context
                // recorded by the parent chain.
                let mut input = Tree::new(f, domain_children.iter().map(|&c| witness(c)).collect());
                let mut at = index;
                while let Some((up, sym, pos, ref siblings)) = nodes[at].parent {
                    let kids = siblings
                        .iter()
                        .enumerate()
                        .map(|(k, &c)| if k == pos { input.clone() } else { witness(c) })
                        .collect();
                    input = Tree::new(sym, kids);
                    at = up;
                }
                let output = eval(m, &input).expect("counterexample lies in the domain");
                return TypecheckVerdict::Counterexample { input, output };
            }
            for (pos, obligation) in child_obligations.into_iter().enumerate() {
                let key = (domain_children[pos], obligation);
                if seen.contains_key(&key) {
                    continue;
                }
                let id = nodes.len();
                assert!(
                    id <= MAX_PRODUCT_NODES,
                    "output typecheck product exceeded 1e6 configurations"
                );
                nodes.push(ProductNode {
                    domain_state: key.0,
                    obligations: key.1.clone(),
                    parent: Some((index, f, pos, domain_children.clone())),
                });
                seen.insert(key, id);
                queue.push_back(id);
            }
        }
    }
    TypecheckVerdict::WellTyped
}

/// Runs the schema from `p` over the output structure of `rhs`. Returns
/// the `(input child, called state, schema state)` obligations collected
/// at the calls, or `Err` at the first output symbol the schema rejects
/// (including rank conflicts between the schema's and the transducer's
/// output alphabets).
fn schema_run_rhs(schema: &Dtta, p: StateId, rhs: &Rhs) -> Result<Vec<(usize, QId, StateId)>, ()> {
    let mut obligations = Vec::new();
    schema_walk(schema, p, rhs, &mut obligations)?;
    Ok(obligations)
}

fn schema_walk(
    schema: &Dtta,
    p: StateId,
    rhs: &Rhs,
    out: &mut Vec<(usize, QId, StateId)>,
) -> Result<(), ()> {
    match rhs {
        Rhs::Call { state, child } => {
            out.push((*child, *state, p));
            Ok(())
        }
        Rhs::Out(sym, kids) => {
            let successors = schema.transition(p, *sym).ok_or(())?;
            if successors.len() != kids.len() {
                return Err(()); // schema declares sym with a different rank
            }
            let successors = successors.to_vec();
            for (c, kid) in successors.into_iter().zip(kids) {
                schema_walk(schema, c, kid, out)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_automata::parse_dtta;
    use xtt_transducer::examples;

    /// The exact output type of τflip: root(b-list, a-list).
    fn flip_output_schema() -> Dtta {
        parse_dtta(
            "dtta (initial s)\n\
             s(root(x1,x2)) -> root(<bl,x1>,<al,x2>)\n\
             bl(b(x1,x2)) -> b(<nil,x1>,<bl,x2>)\n\
             bl(#) -> #\n\
             al(a(x1,x2)) -> a(<nil,x1>,<al,x2>)\n\
             al(#) -> #\n\
             nil(#) -> #\n",
        )
        .unwrap()
    }

    #[test]
    fn flip_typechecks_against_its_output_type() {
        let fix = examples::flip();
        let verdict = output_typecheck(&fix.dtop, Some(&fix.domain), &flip_output_schema());
        assert_eq!(verdict, TypecheckVerdict::WellTyped);
        // The universal schema over the output alphabet always passes.
        let universal = Dtta::universal(fix.dtop.output().clone());
        assert!(output_typecheck(&fix.dtop, None, &universal).is_well_typed());
    }

    #[test]
    fn wrong_schema_produces_a_verified_counterexample() {
        // Demand flip's *input* shape of its output: any input with a
        // nonempty list is a counterexample (the lists swap).
        let fix = examples::flip();
        let wrong = parse_dtta(
            "dtta (initial s)\n\
             s(root(x1,x2)) -> root(<al,x1>,<bl,x2>)\n\
             al(a(x1,x2)) -> a(<nil,x1>,<al,x2>)\n\
             al(#) -> #\n\
             bl(b(x1,x2)) -> b(<nil,x1>,<bl,x2>)\n\
             bl(#) -> #\n\
             nil(#) -> #\n",
        )
        .unwrap();
        match output_typecheck(&fix.dtop, Some(&fix.domain), &wrong) {
            TypecheckVerdict::Counterexample { input, output } => {
                assert!(fix.domain.accepts(&input), "counterexample not in domain");
                assert_eq!(eval(&fix.dtop, &input).as_ref(), Some(&output));
                assert!(!wrong.accepts(&output), "output not actually rejected");
            }
            TypecheckVerdict::WellTyped => panic!("wrong schema accepted"),
        }
    }

    #[test]
    fn schema_missing_a_symbol_fails_with_witness() {
        // A schema without `a` at all: flip is ill-typed as soon as the
        // input has an a-node.
        let fix = examples::flip();
        let no_a = parse_dtta(
            "dtta (initial s)\n\
             s(root(x1,x2)) -> root(<bl,x1>,<nil,x2>)\n\
             bl(b(x1,x2)) -> b(<nil,x1>,<bl,x2>)\n\
             bl(#) -> #\n\
             nil(#) -> #\n",
        )
        .unwrap();
        match output_typecheck(&fix.dtop, Some(&fix.domain), &no_a) {
            TypecheckVerdict::Counterexample { input, output } => {
                assert!(fix.domain.accepts(&input));
                assert!(!no_a.accepts(&output));
            }
            TypecheckVerdict::WellTyped => panic!("schema without `a` accepted"),
        }
    }

    #[test]
    fn empty_domain_is_vacuously_well_typed() {
        // q wants `a` and `b` under the same child: dom = ∅.
        let input = xtt_trees::RankedAlphabet::from_pairs([("f", 1), ("a", 0), ("b", 0)]);
        let output = xtt_trees::RankedAlphabet::from_pairs([("g", 2), ("a", 0), ("b", 0)]);
        let mut b = xtt_transducer::DtopBuilder::new(input, output.clone());
        b.add_state("q");
        b.add_state("qa");
        b.add_state("qb");
        b.set_axiom_str("<q,x0>").unwrap();
        b.add_rule_str("q", "f", "g(<qa,x1>,<qb,x1>)").unwrap();
        b.add_rule_str("qa", "a", "a").unwrap();
        b.add_rule_str("qb", "b", "b").unwrap();
        let m = b.build().unwrap();
        // Even an unsatisfiable schema passes on an empty domain.
        let impossible = parse_dtta("s(never(x1)) -> never(<s,x1>)\n").unwrap();
        assert!(output_typecheck(&m, None, &impossible).is_well_typed());
    }

    #[test]
    fn axiom_violation_reports_the_minimal_domain_witness() {
        // Constant axiom `b` against a schema demanding `c`.
        let fix = examples::constant_m1();
        let schema = parse_dtta("s(c) -> c\n").unwrap();
        match output_typecheck(&fix.dtop, Some(&fix.domain), &schema) {
            TypecheckVerdict::Counterexample { input, output } => {
                assert!(fix.domain.accepts(&input));
                assert_eq!(output.to_string(), "b");
            }
            TypecheckVerdict::WellTyped => panic!("mistyped constant accepted"),
        }
    }

    /// Differential ground truth on small inputs: the verdict agrees with
    /// brute-force checking every enumerated domain tree.
    #[test]
    fn verdict_agrees_with_enumeration() {
        let fix = examples::library();
        let universal = Dtta::universal(fix.dtop.output().clone());
        assert!(output_typecheck(&fix.dtop, None, &universal).is_well_typed());
        let inputs = xtt_trees::gen::enumerate_trees(fix.dtop.input(), 150, 12);
        for schema in [universal, flip_output_schema()] {
            let verdict = output_typecheck(&fix.dtop, None, &schema);
            let brute_ok = inputs
                .iter()
                .filter_map(|t| eval(&fix.dtop, t))
                .all(|out| schema.accepts(&out));
            if verdict.is_well_typed() {
                assert!(
                    brute_ok,
                    "verdict WellTyped but enumeration found a violation"
                );
            }
            // (If a counterexample exists it may be larger than the
            // enumeration bound, so only the forward direction is exact;
            // the counterexample itself is verified in the other tests.)
        }
    }
}
