//! # xtt-typecheck
//!
//! The inspection device of *"A Learning Algorithm for Top-Down XML
//! Transformations"* as a first-class, compiled runtime subsystem. The
//! paper's learned objects are dtops *with inspection*: a DTTA `A` with
//! `L(A) = dom(τ)` (domains are path-closed, Proposition 2) travels with
//! the transducer — yet a bare execution engine ignores it, discovering
//! out-of-domain documents only as an opaque `None`. This crate closes
//! that gap, following Martens & Neven's *"On Typechecking Top-Down XML
//! Transformations"*:
//!
//! * [`compiled`] — [`CompiledDtta`]: a DTTA lowered to dense
//!   `(state, symbol-id)` jump tables over the engine's interned symbols,
//!   and [`domain_guard`], which extracts `dom(τ)` of any dtop via
//!   `xtt-transducer`'s subset-construction domain machinery and marks
//!   deleted (`∅`-subset) positions as skip states so guard acceptance
//!   coincides with evaluation *exactly*;
//! * [`run`] — fail-fast streaming validation: [`DttaRun`] consumes
//!   pre-order events and rejects at the **first violating node** with a
//!   typed diagnostic ([`TypeError`] carrying the violation path), and
//!   [`GuardedEvents`] runs the guard in lockstep with a downstream
//!   streaming evaluator, consuming strictly fewer events than the
//!   document contains when it rejects;
//! * [`output`] — output typechecking: [`output_typecheck`] decides
//!   `dom(τ) ⊆ τ⁻¹(L(S_out))` by inverse type inference over the
//!   domain/schema product, returning a concrete counterexample input
//!   (assembled from `xtt-automata`'s minimal witnesses) when it fails.
//!
//! `xtt-engine` consumes this crate for its `validate` mode (guarded
//! evaluation across all four eval modes) and `xtt-serve` for
//! `POST /typecheck/{name}` and per-document positional type errors.

pub mod compiled;
pub mod output;
pub mod run;

pub use compiled::{
    domain_guard, domain_guard_with_schema, guard_from_domain, CompiledDtta, TypeError,
    TypecheckError,
};
pub use output::{output_typecheck, TypecheckVerdict};
pub use run::{DttaRun, GuardedEvents};
