//! Lowering a [`Dtta`] into a flat, cache-friendly compiled form.
//!
//! Mirrors `xtt-engine`'s lowering of transducers: the research
//! representation (`HashMap<(StateId, Symbol), Vec<StateId>>`) is ideal
//! for the automata theory but slow to *run* next to the compiled
//! evaluator. [`CompiledDtta`] turns an automaton into:
//!
//! * a **dense jump table** `delta[state · |F| + f]` over interned
//!   symbol ids — transition lookup is two array reads, no hashing;
//! * a flat **successor arena**: every transition's child states are
//!   contiguous in one `Vec<u32>`;
//! * a `Symbol → dense id` translation indexed by the global interner id.
//!
//! The domain guard of a transducer ([`domain_guard`]) additionally marks
//! **skip states**: subset states where *no* transducer state inspects
//! the node (the `∅` set of the subset construction). A skip state
//! accepts any subtree — including symbols outside the declared alphabet
//! — which is exactly how evaluation treats deleted subtrees, so
//! guard-acceptance coincides with `eval(…).is_some()` on *every* input
//! tree, not just alphabet-correct ones.

use std::fmt;

use xtt_automata::{Dtta, StateId};
use xtt_trees::{NodePath, RankedAlphabet, Symbol, Tree};

use xtt_transducer::{domain_dtta_raw, Dtop, RawDomain};

use crate::run::DttaRun;

/// Sentinel for "no transition" / "not in the alphabet".
pub(crate) const NONE_U32: u32 = u32::MAX;

/// A typed domain violation: the first (pre-order) node of the input at
/// which the transduction is undefined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// The node's symbol has no transition from the guard state — some
    /// transducer state processing the node has no rule for it.
    Symbol {
        /// Node path of the violating node (1-based `Display`, `ε` = root).
        path: NodePath,
        /// Display name of the guard state (for a domain guard, the set
        /// of transducer states processing the node, e.g. `{q3,q4}`).
        state: String,
        /// The offending input symbol.
        symbol: Symbol,
    },
    /// A child required by the guard state is absent (the node has fewer
    /// children than the transducer's rules reference).
    MissingChild {
        /// Node path of the *missing* child.
        path: NodePath,
        /// Guard state that would have processed the missing child.
        state: String,
        /// Symbol of the parent node.
        parent: Symbol,
    },
}

impl TypeError {
    /// The violating node's path.
    pub fn path(&self) -> &NodePath {
        match self {
            TypeError::Symbol { path, .. } | TypeError::MissingChild { path, .. } => path,
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Symbol {
                path,
                state,
                symbol,
            } => {
                write!(f, "at {path}: symbol {symbol} not allowed in state {state}")
            }
            TypeError::MissingChild {
                path,
                state,
                parent,
            } => write!(
                f,
                "at {path}: missing child of {parent} required by state {state}"
            ),
        }
    }
}

impl std::error::Error for TypeError {}

/// Errors from compiling or constructing a guard; capacity limits only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypecheckError {
    TooManyStates(usize),
}

impl fmt::Display for TypecheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypecheckError::TooManyStates(n) => {
                write!(f, "{n} automaton states exceed the compiled-form limit")
            }
        }
    }
}

impl std::error::Error for TypecheckError {}

/// A [`Dtta`] lowered for execution; see the module docs.
#[derive(Debug, Clone)]
pub struct CompiledDtta {
    alphabet: RankedAlphabet,
    n_states: u32,
    n_syms: u32,
    /// Global interner id → dense symbol id ([`NONE_U32`] if absent).
    sym_map: Vec<u32>,
    /// Rank of each dense symbol.
    sym_rank: Vec<u32>,
    /// `(state · n_syms + dense_sym)` → start of the successor range in
    /// `successors` ([`NONE_U32`] = undefined). The range length is the
    /// symbol's rank.
    delta: Vec<u32>,
    /// Flat successor-state arena.
    successors: Vec<u32>,
    /// States that accept any subtree without inspecting it.
    skip: Vec<bool>,
    state_names: Vec<String>,
    initial: u32,
}

/// Capacity bound: compiled automata (and domain guards) are capped well
/// below anything a real transducer produces, so a pathological upload
/// cannot eat the server's memory.
const MAX_STATES: usize = 1 << 20;

impl CompiledDtta {
    /// Lowers an explicit automaton (an inspection device or an output
    /// schema). No skip states: symbols outside the alphabet are rejected
    /// wherever they occur, exactly like [`Dtta::accepts`].
    pub fn from_dtta(a: &Dtta) -> Result<CompiledDtta, TypecheckError> {
        Self::build(a, None)
    }

    fn build(a: &Dtta, skip_state: Option<StateId>) -> Result<CompiledDtta, TypecheckError> {
        let n_states = a.state_count();
        if n_states >= MAX_STATES {
            return Err(TypecheckError::TooManyStates(n_states));
        }
        let alphabet = a.alphabet().clone();
        let n_syms = alphabet.len() as u32;
        let max_gid = alphabet
            .symbols()
            .iter()
            .map(|s| s.id() as usize)
            .max()
            .map_or(0, |m| m + 1);
        let mut sym_map = vec![NONE_U32; max_gid];
        let mut sym_rank = vec![0u32; n_syms as usize];
        for (dense, &sym) in alphabet.symbols().iter().enumerate() {
            sym_map[sym.id() as usize] = dense as u32;
            sym_rank[dense] = alphabet.rank(sym).unwrap() as u32;
        }
        let mut delta = vec![NONE_U32; n_states * n_syms as usize];
        let mut successors = Vec::new();
        for (q, f, children) in a.transitions() {
            let dense = sym_map[f.id() as usize];
            debug_assert_ne!(dense, NONE_U32);
            delta[q.index() * n_syms as usize + dense as usize] = successors.len() as u32;
            successors.extend(children.iter().map(|c| c.index() as u32));
        }
        let mut skip = vec![false; n_states];
        if let Some(s) = skip_state {
            skip[s.index()] = true;
        }
        Ok(CompiledDtta {
            alphabet,
            n_states: n_states as u32,
            n_syms,
            sym_map,
            sym_rank,
            delta,
            successors,
            skip,
            state_names: a.states().map(|q| a.state_name(q).to_owned()).collect(),
            initial: a.initial().index() as u32,
        })
    }

    /// The alphabet the automaton was compiled against.
    pub fn alphabet(&self) -> &RankedAlphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.n_states as usize
    }

    /// The initial state.
    #[inline]
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// Display name of a state.
    pub fn state_name(&self, state: u32) -> &str {
        &self.state_names[state as usize]
    }

    /// True if the state accepts any subtree without inspecting it.
    #[inline]
    pub fn is_skip(&self, state: u32) -> bool {
        self.skip[state as usize]
    }

    /// Dense id of a symbol, or [`NONE_U32`] if it is not in the alphabet.
    #[inline]
    pub fn dense_sym(&self, sym: Symbol) -> u32 {
        self.sym_map
            .get(sym.id() as usize)
            .copied()
            .unwrap_or(NONE_U32)
    }

    /// `δ(state, f)` for a dense symbol id, if defined.
    #[inline]
    pub fn transition(&self, state: u32, dense_sym: u32) -> Option<&[u32]> {
        let (start, len) = self.transition_range(state, dense_sym)?;
        Some(&self.successors[start as usize..(start + len) as usize])
    }

    /// `δ(state, f)` as `(arena start, rank)` — the form [`DttaRun`]
    /// frames store.
    ///
    /// [`DttaRun`]: crate::run::DttaRun
    #[inline]
    pub(crate) fn transition_range(&self, state: u32, dense_sym: u32) -> Option<(u32, u32)> {
        if dense_sym >= self.n_syms {
            return None;
        }
        let start = self.delta[state as usize * self.n_syms as usize + dense_sym as usize];
        if start == NONE_U32 {
            return None;
        }
        Some((start, self.sym_rank[dense_sym as usize]))
    }

    /// The `i`-th successor of a transition range.
    #[inline]
    pub(crate) fn successor(&self, start: u32, i: u32) -> u32 {
        self.successors[(start + i) as usize]
    }

    /// Starts an incremental run; feed it [`xtt_trees::TreeEvent`]s.
    pub fn run(&self) -> DttaRun<'_> {
        DttaRun::new(self)
    }

    /// Checks a materialized tree, returning the first (pre-order)
    /// violation. This is the pre-flight used by the engine's tree / dag /
    /// walk modes; it runs the same [`DttaRun`] as the streaming lockstep
    /// guard, so diagnostics are bit-identical across all modes.
    pub fn check_tree(&self, t: &Tree) -> Result<(), TypeError> {
        let mut run = self.run();
        for event in t.events() {
            run.feed(event)?;
        }
        Ok(())
    }

    /// True iff the automaton accepts `t` (skip states accept blindly).
    pub fn accepts(&self, t: &Tree) -> bool {
        self.check_tree(t).is_ok()
    }
}

/// The compiled domain guard of a transducer: the (untrimmed) subset
/// automaton of `dom(⟦M⟧)` with the `∅` subset marked as a skip state,
/// lowered to jump tables. Guard acceptance coincides exactly with
/// `xtt_transducer::eval(m, t).is_some()`, and a failing run reports the
/// first pre-order node at which evaluation is undefined.
pub fn domain_guard(m: &Dtop) -> Result<CompiledDtta, TypecheckError> {
    let raw = domain_dtta_raw(m, None);
    CompiledDtta::build(&raw.dtta, raw.skip_state)
}

/// Like [`domain_guard`] but with an input schema intersected in: accepts
/// `dom(⟦M⟧) ∩ L(schema)` and fails at the first pre-order node violating
/// either. With a schema present there is no `∅` skip state — subtrees the
/// transducer deletes must still satisfy the schema, so the guard keeps
/// reading them. `schema == None` degenerates to [`domain_guard`].
pub fn domain_guard_with_schema(
    m: &Dtop,
    schema: Option<&Dtta>,
) -> Result<CompiledDtta, TypecheckError> {
    let raw = domain_dtta_raw(m, schema);
    CompiledDtta::build(&raw.dtta, raw.skip_state)
}

/// Compiles a fail-fast guard from a prebuilt raw domain automaton —
/// e.g. [`xtt_transducer::chain_domain_raw`] over a pipeline's composed
/// prefixes, whose intersection is the exact domain of stage-by-stage
/// execution (see its docs for why the final composed machine alone
/// over-accepts when stages delete).
pub fn guard_from_domain(raw: &RawDomain) -> Result<CompiledDtta, TypecheckError> {
    CompiledDtta::build(&raw.dtta, raw.skip_state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtt_trees::parse_tree;

    #[test]
    fn compiled_dtta_matches_research_acceptance() {
        let fix = xtt_transducer::examples::flip();
        let c = CompiledDtta::from_dtta(&fix.domain).unwrap();
        for t in xtt_trees::gen::enumerate_trees(fix.dtop.input(), 300, 9) {
            assert_eq!(c.accepts(&t), fix.domain.accepts(&t), "on {t}");
        }
    }

    #[test]
    fn domain_guard_accepts_deleted_junk_like_eval() {
        // (q4, a) deletes its first subtree: junk there — even symbols
        // outside the alphabet — is accepted, exactly like eval.
        let fix = xtt_transducer::examples::flip();
        let g = domain_guard(&fix.dtop).unwrap();
        let junk = parse_tree("root(a(zzz9(#,#,#),#),#)").unwrap();
        assert!(g.accepts(&junk));
        assert!(xtt_transducer::eval(&fix.dtop, &junk).is_some());
        // ...but the same junk in an inspected position is a violation.
        let bad = parse_tree("root(zzz9(#),#)").unwrap();
        let err = g.check_tree(&bad).unwrap_err();
        assert!(xtt_transducer::eval(&fix.dtop, &bad).is_none());
        assert_eq!(err.path().to_string(), "1");
    }

    #[test]
    fn guard_reports_first_preorder_violation() {
        let fix = xtt_transducer::examples::flip();
        let g = domain_guard(&fix.dtop).unwrap();
        // b inside the a-list: the violating node is root.1.2, and the
        // (also bad) second subtree is never reached.
        let t = parse_tree("root(a(#,b(#,#)),a(#,#))").unwrap();
        match g.check_tree(&t).unwrap_err() {
            TypeError::Symbol {
                path,
                state,
                symbol,
            } => {
                assert_eq!(path.to_string(), "1.2");
                assert_eq!(state, "{q4}");
                assert_eq!(symbol.name(), "b");
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn missing_child_is_reported_at_its_path() {
        // q(f(x1,x2)) -> g(<q,x2>) requires the second child; a 1-child f
        // node (rank-breaking input) is undefined for eval and the guard.
        let input = RankedAlphabet::from_pairs([("f", 2), ("e", 0)]);
        let output = RankedAlphabet::from_pairs([("g", 1), ("e", 0)]);
        let mut b = xtt_transducer::DtopBuilder::new(input, output);
        b.add_state("q");
        b.set_axiom_str("<q,x0>").unwrap();
        b.add_rule_str("q", "f", "g(<q,x2>)").unwrap();
        b.add_rule_str("q", "e", "e").unwrap();
        let m = b.build().unwrap();
        let g = domain_guard(&m).unwrap();
        let lopsided = Tree::node("f", vec![Tree::leaf_named("e")]);
        assert!(xtt_transducer::eval(&m, &lopsided).is_none());
        match g.check_tree(&lopsided).unwrap_err() {
            TypeError::MissingChild { path, parent, .. } => {
                assert_eq!(path.to_string(), "2");
                assert_eq!(parent.name(), "f");
            }
            other => panic!("unexpected violation {other:?}"),
        }
        // An f node with an *extra* child is fine for both.
        let wide = parse_tree("f(e,e,e)").unwrap();
        assert!(xtt_transducer::eval(&m, &wide).is_some());
        assert!(g.accepts(&wide));
    }
}
