//! Event-driven execution of a [`CompiledDtta`]: the fail-fast streaming
//! guard.
//!
//! A DTTA run is determined top-down, and pre-order events deliver each
//! node before its subtree — so the guard state of every node is known
//! the moment its `Open` event arrives, and an out-of-domain document is
//! rejected at the **first violating node**, after consuming strictly
//! fewer events than the document contains. [`DttaRun`] is the single
//! implementation behind both the pre-flight tree check
//! ([`CompiledDtta::check_tree`]) and the lockstep streaming guard
//! ([`GuardedEvents`]), which is what makes the reported diagnostics
//! bit-identical across the engine's tree / stream / dag / walk modes.
//!
//! Memory is `O(depth)`: one frame per open node, one path index per
//! level, and skipped (deleted) subtrees cost a single integer.

use xtt_trees::{NodePath, TreeEvent};

use crate::compiled::{CompiledDtta, TypeError, NONE_U32};

/// One open node of the run.
struct Frame {
    /// Start of the successor range in the automaton's arena
    /// ([`NONE_U32`] when the node is in a skip state).
    successors: u32,
    /// Number of successor states (= rank of the node's symbol).
    rank: u32,
    /// Children opened so far.
    next: u32,
    /// The node's symbol (for missing-child diagnostics).
    symbol: xtt_trees::Symbol,
}

/// An incremental run of a [`CompiledDtta`] over pre-order events.
pub struct DttaRun<'a> {
    c: &'a CompiledDtta,
    frames: Vec<Frame>,
    /// Child indices of the currently open non-root nodes.
    path: Vec<u32>,
    /// When > 0, the run is inside a skipped (never-inspected) subtree.
    skip_depth: usize,
    /// Whether the skipped subtree contributed an entry to `path`.
    skip_on_path: bool,
    /// Events consumed so far (the fail-fast accounting).
    consumed: u64,
    /// The root has closed; later events are outside the tree and are
    /// ignored (the evaluator rejects such streams on its own).
    done: bool,
}

impl<'a> DttaRun<'a> {
    pub fn new(c: &'a CompiledDtta) -> DttaRun<'a> {
        DttaRun {
            c,
            frames: Vec::new(),
            path: Vec::new(),
            skip_depth: 0,
            skip_on_path: false,
            consumed: 0,
            done: false,
        }
    }

    /// Events consumed so far. On a rejected document this is strictly
    /// smaller than the document's event count: everything after the
    /// first violating node is never consumed.
    pub fn events_consumed(&self) -> u64 {
        self.consumed
    }

    /// Whether the run is inside a subtree it never inspects (a skip
    /// state, or junk past the root). While true, any balanced event run
    /// is accepted without looking — so an event-source fast-forward may
    /// replace the subtree with one synthetic `Close`. While false, the
    /// run still needs the real events: a guard can be stricter than the
    /// machine driving it (a pipeline's chain guard inspects positions
    /// the composed product deletes), so fast paths must check this.
    pub fn in_skipped_subtree(&self) -> bool {
        self.skip_depth > 0
    }

    /// Feeds one event; `Err` is the first violation, after which the run
    /// must not be fed further.
    pub fn feed(&mut self, event: TreeEvent) -> Result<(), TypeError> {
        self.consumed += 1;
        if self.skip_depth > 0 {
            match event {
                TreeEvent::Open(_) => self.skip_depth += 1,
                TreeEvent::Close => {
                    self.skip_depth -= 1;
                    if self.skip_depth == 0 {
                        if self.skip_on_path {
                            self.path.pop();
                        } else {
                            self.done = true; // the skipped subtree was the root
                        }
                    }
                }
            }
            return Ok(());
        }
        match event {
            TreeEvent::Open(sym) => self.open(sym),
            TreeEvent::Close => self.close(),
        }
    }

    fn open(&mut self, sym: xtt_trees::Symbol) -> Result<(), TypeError> {
        let (state, on_path) = match self.frames.last_mut() {
            Some(frame) => {
                let i = frame.next;
                frame.next += 1;
                self.path.push(i);
                // A child beyond every rule's reach is never inspected.
                let state = if i < frame.rank {
                    self.c.successor(frame.successors, i)
                } else {
                    NONE_U32
                };
                (state, true)
            }
            None => {
                if self.done {
                    (NONE_U32, false) // trailing junk; the evaluator rejects
                } else {
                    (self.c.initial(), false)
                }
            }
        };
        if state == NONE_U32 || self.c.is_skip(state) {
            self.skip_depth = 1;
            self.skip_on_path = on_path;
            return Ok(());
        }
        let dense = self.c.dense_sym(sym);
        match self.c.transition_range(state, dense) {
            Some((successors, rank)) => {
                self.frames.push(Frame {
                    successors,
                    rank,
                    next: 0,
                    symbol: sym,
                });
                Ok(())
            }
            None => Err(TypeError::Symbol {
                path: NodePath::from_indices(&self.path),
                state: self.c.state_name(state).to_owned(),
                symbol: sym,
            }),
        }
    }

    fn close(&mut self) -> Result<(), TypeError> {
        let Some(frame) = self.frames.pop() else {
            self.done = true; // unbalanced close; the evaluator rejects
            return Ok(());
        };
        // Children the rules still reference but the node does not have.
        for i in frame.next..frame.rank {
            let state = self.c.successor(frame.successors, i);
            if state != NONE_U32 && !self.c.is_skip(state) {
                let mut indices = self.path.clone();
                indices.push(i);
                return Err(TypeError::MissingChild {
                    path: NodePath::from_indices(&indices),
                    state: self.c.state_name(state).to_owned(),
                    parent: frame.symbol,
                });
            }
        }
        if self.frames.is_empty() {
            self.done = true;
        } else {
            self.path.pop();
        }
        Ok(())
    }
}

/// Wraps a pre-order event stream, running the guard in lockstep: events
/// pass through until the first violation, at which point the stream ends
/// (so a downstream [`StreamEvaluator`] stops immediately) and the
/// violation is recorded for the caller.
///
/// [`StreamEvaluator`]: https://docs.rs/xtt-engine
pub struct GuardedEvents<'a, I> {
    inner: I,
    run: DttaRun<'a>,
    violation: Option<TypeError>,
}

impl<'a, I> GuardedEvents<'a, I>
where
    I: Iterator<Item = TreeEvent>,
{
    pub fn new(guard: &'a CompiledDtta, inner: I) -> GuardedEvents<'a, I> {
        GuardedEvents {
            inner,
            run: guard.run(),
            violation: None,
        }
    }

    /// The recorded violation, if the guard rejected the stream.
    pub fn violation(&self) -> Option<&TypeError> {
        self.violation.as_ref()
    }

    /// Takes the recorded violation out of the adaptor.
    pub fn take_violation(&mut self) -> Option<TypeError> {
        self.violation.take()
    }

    /// Events consumed before acceptance ended or the violation hit.
    pub fn events_consumed(&self) -> u64 {
        self.run.events_consumed()
    }
}

impl<I> Iterator for GuardedEvents<'_, I>
where
    I: Iterator<Item = TreeEvent>,
{
    type Item = TreeEvent;

    fn next(&mut self) -> Option<TreeEvent> {
        if self.violation.is_some() {
            return None;
        }
        let event = self.inner.next()?;
        match self.run.feed(event) {
            Ok(()) => Some(event),
            Err(e) => {
                self.violation = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::domain_guard;
    use xtt_trees::parse_tree;

    #[test]
    fn guarded_events_stop_strictly_early_on_rejection() {
        let fix = xtt_transducer::examples::flip();
        let g = domain_guard(&fix.dtop).unwrap();
        // Violation at node 1.2 of a document with a long tail.
        let t = parse_tree("root(a(#,b(#,#)),b(#,b(#,b(#,#))))").unwrap();
        let total = 2 * t.size();
        let mut guarded = GuardedEvents::new(&g, t.events());
        let passed = (&mut guarded).count() as u64;
        let violation = guarded.take_violation().expect("out of domain");
        assert_eq!(violation.path().to_string(), "1.2");
        assert!(guarded.events_consumed() < total);
        // The violating event itself is consumed but not passed through.
        assert_eq!(passed + 1, guarded.events_consumed());
    }

    #[test]
    fn guarded_events_pass_everything_in_domain() {
        let fix = xtt_transducer::examples::flip();
        let g = domain_guard(&fix.dtop).unwrap();
        let t = parse_tree("root(a(#,a(#,#)),b(#,#))").unwrap();
        let total = 2 * t.size();
        let mut guarded = GuardedEvents::new(&g, t.events());
        let passed = (&mut guarded).count() as u64;
        assert_eq!(passed, total);
        assert!(guarded.violation().is_none());
    }

    #[test]
    fn constant_axiom_guard_skips_the_whole_document() {
        let fix = xtt_transducer::examples::constant_m1();
        let g = domain_guard(&fix.dtop).unwrap();
        // No state inspects anything: every tree is accepted wholesale.
        assert!(g.accepts(&parse_tree("f(a,f(a,a))").unwrap()));
        assert!(g.accepts(&parse_tree("unknown-symbol").unwrap()));
    }
}
