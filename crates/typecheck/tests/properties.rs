//! Differential property tests for the typecheck subsystem.
//!
//! Transducers are random **partial** dtops, so random inputs routinely
//! fall outside the domain. The inferred domain automaton
//! (`domain_dtta`), the compiled guard (`domain_guard`), and the research
//! evaluator must agree *exactly* on definedness; the guard's diagnostic
//! must point at the first (pre-order) undefined node of the tree-walk
//! run; and on rejection the streaming guard must consume strictly fewer
//! events than the document contains.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use xtt_transducer::{
    domain_dtta, eval as walk_eval, random_partial_dtop, Dtop, QId, RandomDtopConfig,
};
use xtt_trees::{gen, NodePath, RankedAlphabet, Tree};
use xtt_typecheck::{domain_guard, output_typecheck, GuardedEvents, TypecheckVerdict};

fn alphabets() -> (RankedAlphabet, RankedAlphabet) {
    (
        RankedAlphabet::from_pairs([("f", 2), ("g", 1), ("h", 3), ("a", 0), ("b", 0)]),
        RankedAlphabet::from_pairs([("u", 2), ("v", 1), ("c", 0), ("d", 0)]),
    )
}

fn config() -> RandomDtopConfig {
    RandomDtopConfig {
        n_states: 4,
        max_rhs_depth: 3,
        call_percent: 55,
    }
}

fn workload(input: &RankedAlphabet, rng: &mut StdRng) -> Vec<Tree> {
    let mut trees = gen::enumerate_trees(input, 50, 7);
    for _ in 0..6 {
        trees.push(gen::random_tree(input, 60, rng));
    }
    trees
}

/// Reference: the pre-order-first node at which the tree-walk run is
/// undefined — some transducer state processing the node has no rule for
/// its symbol (or a referenced child is absent). `None` when defined.
fn first_undefined(m: &Dtop, t: &Tree) -> Option<NodePath> {
    fn go(m: &Dtop, states: &BTreeSet<QId>, t: &Tree, path: &NodePath) -> Option<NodePath> {
        if states.is_empty() {
            return None; // deleted subtree: never inspected
        }
        let mut child_states: Vec<BTreeSet<QId>> = vec![BTreeSet::new(); t.arity()];
        for &q in states {
            let Some(rhs) = m.rule(q, t.symbol()) else {
                return Some(path.clone());
            };
            for (_, q2, child) in rhs.calls() {
                match child_states.get_mut(child) {
                    Some(set) => {
                        set.insert(q2);
                    }
                    None => return Some(path.child(child as u32)), // missing child
                }
            }
        }
        for (i, (set, sub)) in child_states.iter().zip(t.children()).enumerate() {
            if let Some(found) = go(m, set, sub, &path.child(i as u32)) {
                return Some(found);
            }
        }
        None
    }
    let states: BTreeSet<QId> = m.axiom().called_states().into_iter().collect();
    go(m, &states, t, &NodePath::root())
}

proptest! {
    /// The inferred domain DTTA accepts exactly the inputs on which eval
    /// is defined, and the compiled guard agrees — with the streaming
    /// guard consuming strictly fewer events than the document on
    /// rejection, and its violation path matching the tree-walk run's
    /// first undefined node.
    #[test]
    fn inferred_domain_matches_eval_exactly(seed in any::<u64>(), keep in 35u32..95) {
        let (input, output) = alphabets();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_partial_dtop(&mut rng, &input, &output, &config(), keep);
        let domain = domain_dtta(&m, None);
        let guard = domain_guard(&m).unwrap();
        for t in workload(&input, &mut rng) {
            let defined = walk_eval(&m, &t).is_some();
            prop_assert_eq!(domain.accepts(&t), defined, "domain_dtta differs on {}", t);

            let total_events = 2 * t.size();
            let mut guarded = GuardedEvents::new(&guard, t.events());
            (&mut guarded).for_each(drop);
            match guarded.take_violation() {
                None => {
                    prop_assert!(defined, "guard accepted undefined input {}", t);
                    prop_assert_eq!(guarded.events_consumed(), total_events);
                }
                Some(violation) => {
                    prop_assert!(!defined, "guard rejected defined input {}", t);
                    prop_assert!(
                        guarded.events_consumed() < total_events,
                        "guard must stop early on {} ({} of {} events)",
                        t, guarded.events_consumed(), total_events
                    );
                    // The pre-flight tree check reports the same violation...
                    prop_assert_eq!(guard.check_tree(&t), Err(violation.clone()));
                    // ...and it is the tree-walk run's first undefined node.
                    let reference = first_undefined(&m, &t).expect("undefined input");
                    prop_assert_eq!(violation.path(), &reference, "on {}", t);
                }
            }
        }
    }

    /// Output typechecking against the universal schema always passes,
    /// and any counterexample against a random partial schema is real:
    /// in the domain, evaluating, and rejected by the schema.
    #[test]
    fn output_typecheck_counterexamples_are_real(seed in any::<u64>(), keep in 35u32..95) {
        let (input, output) = alphabets();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_partial_dtop(&mut rng, &input, &output, &config(), keep);
        let universal = xtt_automata::Dtta::universal(output.clone());
        prop_assert!(output_typecheck(&m, None, &universal).is_well_typed());

        // A schema that forbids one output constant: counterexamples must
        // verify end to end whenever the checker reports one.
        let restricted = {
            let mut b = xtt_automata::DttaBuilder::new(output.clone());
            let s = b.add_state("s");
            for &sym in output.symbols() {
                if sym.name() == "d" {
                    continue;
                }
                let rank = output.rank(sym).unwrap();
                b.add_transition(s, sym, vec![s; rank]).unwrap();
            }
            b.build().unwrap()
        };
        match output_typecheck(&m, None, &restricted) {
            TypecheckVerdict::WellTyped => {}
            TypecheckVerdict::Counterexample { input: t, output: out } => {
                let evaluated = walk_eval(&m, &t);
                prop_assert_eq!(evaluated.as_ref(), Some(&out));
                prop_assert!(!restricted.accepts(&out));
            }
        }
    }
}
